//! Visitor-style state persistence for checkpoint/restore.
//!
//! Every piece of mutable simulation state implements [`Persist`]: a single
//! `persist` method that either writes the state into a [`Saver`] or
//! overwrites it from a [`Loader`], depending on which [`StateIo`] it is
//! handed. One function for both directions means the save and load paths
//! cannot drift apart — the classic source of "restores but diverges"
//! checkpoint bugs.
//!
//! The wire format is deliberately primitive: every value is one
//! little-endian `u64` word. Floats travel as IEEE-754 bit patterns
//! ([`f64::to_bits`]), so a round trip is bit-exact; enums travel as integer
//! tags chosen by their defining crate. Config-derived state (sizing
//! constants, precomputed tables) is *not* persisted — a restore first
//! reconstructs it from the same configuration, then overlays the mutable
//! state recorded here.
//!
//! Containers follow the lint-rule-D001 discipline: ordered maps and sets
//! serialize in key order, so a checkpoint's bytes are as deterministic as
//! the simulation that produced them.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The I/O direction a [`Persist::persist`] call runs in: a [`Saver`]
/// serializing state out, or a [`Loader`] overwriting state from a
/// checkpoint.
pub trait StateIo {
    /// `true` when this visitor is serializing (a [`Saver`]).
    fn saving(&self) -> bool;

    /// Saves or loads one 64-bit word — the only primitive of the format.
    fn word(&mut self, v: &mut u64);
}

/// State that can round-trip through a checkpoint.
pub trait Persist {
    /// Visits every mutable field in a fixed order, writing it to or
    /// reading it from `io`.
    fn persist(&mut self, io: &mut dyn StateIo);
}

/// Serializes state into an in-memory byte buffer.
#[derive(Default)]
pub struct Saver {
    buf: Vec<u8>,
}

impl Saver {
    /// An empty saver.
    #[must_use]
    pub fn new() -> Self {
        Saver::default()
    }

    /// The serialized bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl StateIo for Saver {
    fn saving(&self) -> bool {
        true
    }

    fn word(&mut self, v: &mut u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Deserializes state from a byte buffer.
///
/// A short read poisons the loader (subsequent words read as zero) instead
/// of panicking; callers check [`Loader::finish`] after the visit, which
/// also rejects trailing bytes — a stream that is too long or too short
/// means the checkpoint was produced by a different state layout.
pub struct Loader<'a> {
    buf: &'a [u8],
    pos: usize,
    underflow: bool,
}

impl<'a> Loader<'a> {
    /// A loader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Loader {
            buf: bytes,
            pos: 0,
            underflow: false,
        }
    }

    /// Validates that the visit consumed the buffer exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch (short read or trailing
    /// bytes).
    pub fn finish(self) -> Result<(), String> {
        if self.underflow {
            return Err(format!(
                "checkpoint stream too short: needed more than {} bytes",
                self.buf.len()
            ));
        }
        if self.pos != self.buf.len() {
            return Err(format!(
                "checkpoint stream too long: {} of {} bytes consumed",
                self.pos,
                self.buf.len()
            ));
        }
        Ok(())
    }
}

impl StateIo for Loader<'_> {
    fn saving(&self) -> bool {
        false
    }

    fn word(&mut self, v: &mut u64) {
        match self.buf.get(self.pos..self.pos + 8) {
            Some(chunk) => {
                *v = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                self.pos += 8;
            }
            None => {
                self.underflow = true;
                *v = 0;
            }
        }
    }
}

macro_rules! persist_as_word {
    ($($t:ty),+) => {$(
        impl Persist for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn persist(&mut self, io: &mut dyn StateIo) {
                let mut w = *self as u64;
                io.word(&mut w);
                *self = w as $t;
            }
        }
    )+};
}

persist_as_word!(u64, u32, u16, u8, usize, i64, i32);

impl Persist for bool {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut w = u64::from(*self);
        io.word(&mut w);
        *self = w != 0;
    }
}

impl Persist for f64 {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut w = self.to_bits();
        io.word(&mut w);
        *self = f64::from_bits(w);
    }
}

impl Persist for SimTime {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut w = self.as_nanos();
        io.word(&mut w);
        *self = SimTime::from_nanos(w);
    }
}

impl Persist for SimDuration {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut w = self.as_nanos();
        io.word(&mut w);
        *self = SimDuration::from_nanos(w);
    }
}

impl Persist for Rng {
    // jas-lint: allow(D009, reason = "the full RNG state s is visited through the state_mut() accessor")
    fn persist(&mut self, io: &mut dyn StateIo) {
        for w in self.state_mut() {
            io.word(w);
        }
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.0.persist(io);
        self.1.persist(io);
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.0.persist(io);
        self.1.persist(io);
        self.2.persist(io);
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn persist(&mut self, io: &mut dyn StateIo) {
        for item in self.iter_mut() {
            item.persist(io);
        }
    }
}

impl<T: Persist + Default> Persist for Vec<T> {
    fn persist(&mut self, io: &mut dyn StateIo) {
        persist_vec(io, self);
    }
}

impl<T: Persist + Default> Persist for VecDeque<T> {
    fn persist(&mut self, io: &mut dyn StateIo) {
        persist_deque(io, self);
    }
}

impl<T: Persist + Default> Persist for Option<T> {
    fn persist(&mut self, io: &mut dyn StateIo) {
        persist_opt(io, self);
    }
}

/// Persists a growable vector whose elements need a constructor (state
/// that cannot be `Default`-built without configuration).
pub fn persist_vec_with<T: Persist>(
    io: &mut dyn StateIo,
    v: &mut Vec<T>,
    mut make: impl FnMut() -> T,
) {
    let mut len = v.len() as u64;
    io.word(&mut len);
    if !io.saving() {
        v.clear();
        for _ in 0..len {
            v.push(make());
        }
    }
    for item in v.iter_mut() {
        item.persist(io);
    }
}

/// Persists a growable vector of default-constructible elements.
pub fn persist_vec<T: Persist + Default>(io: &mut dyn StateIo, v: &mut Vec<T>) {
    persist_vec_with(io, v, T::default);
}

/// Persists a double-ended queue of default-constructible elements.
pub fn persist_deque<T: Persist + Default>(io: &mut dyn StateIo, v: &mut VecDeque<T>) {
    let mut len = v.len() as u64;
    io.word(&mut len);
    if !io.saving() {
        v.clear();
        for _ in 0..len {
            v.push_back(T::default());
        }
    }
    for item in v.iter_mut() {
        item.persist(io);
    }
}

/// Persists a fixed-size slice whose length is config-derived: the length
/// is recorded for validation but never resizes the slice.
///
/// # Panics
///
/// Panics when a loaded checkpoint disagrees with the slice length — the
/// checkpoint was taken under a different configuration, which the
/// container-level fingerprint should have rejected first.
pub fn persist_slice<T: Persist>(io: &mut dyn StateIo, v: &mut [T]) {
    let mut len = v.len() as u64;
    io.word(&mut len);
    assert_eq!(
        len as usize,
        v.len(),
        "checkpoint slice length mismatch (configuration drift)"
    );
    for item in v.iter_mut() {
        item.persist(io);
    }
}

/// Persists an optional value needing a constructor.
pub fn persist_opt_with<T: Persist>(
    io: &mut dyn StateIo,
    v: &mut Option<T>,
    make: impl FnOnce() -> T,
) {
    let mut present = u64::from(v.is_some());
    io.word(&mut present);
    if !io.saving() {
        *v = if present != 0 { Some(make()) } else { None };
    }
    if let Some(inner) = v.as_mut() {
        inner.persist(io);
    }
}

/// Persists an optional default-constructible value.
pub fn persist_opt<T: Persist + Default>(io: &mut dyn StateIo, v: &mut Option<T>) {
    persist_opt_with(io, v, T::default);
}

/// Persists an ordered map in key order (lint rule D001 guarantees the
/// iteration order is deterministic, so the serialized bytes are too).
pub fn persist_map<K, V>(io: &mut dyn StateIo, m: &mut BTreeMap<K, V>)
where
    K: Persist + Default + Ord + Copy,
    V: Persist + Default,
{
    let mut len = m.len() as u64;
    io.word(&mut len);
    if io.saving() {
        for (k, v) in m.iter_mut() {
            let mut key = *k;
            key.persist(io);
            v.persist(io);
        }
    } else {
        m.clear();
        for _ in 0..len {
            let mut k = K::default();
            k.persist(io);
            let mut v = V::default();
            v.persist(io);
            m.insert(k, v);
        }
    }
}

/// Persists an ordered set in element order.
pub fn persist_set<K>(io: &mut dyn StateIo, s: &mut BTreeSet<K>)
where
    K: Persist + Default + Ord + Copy,
{
    let mut len = s.len() as u64;
    io.word(&mut len);
    if io.saving() {
        for k in s.iter() {
            let mut key = *k;
            key.persist(io);
        }
    } else {
        s.clear();
        for _ in 0..len {
            let mut k = K::default();
            k.persist(io);
            s.insert(k);
        }
    }
}

/// FNV-1a over a byte slice — the digest primitive the `.jckpt` container
/// and the engine's probe digest share with the trace/fault digests.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Incremental FNV-1a over 64-bit words, for cheap structural digests
/// (the engine's divergence probe).
#[derive(Clone, Copy, Debug)]
pub struct WordDigest {
    hash: u64,
}

impl Default for WordDigest {
    fn default() -> Self {
        WordDigest {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl WordDigest {
    /// A fresh digest at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        WordDigest::default()
    }

    /// Mixes one word.
    pub fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.hash
    }
}

impl StateIo for WordDigest {
    fn saving(&self) -> bool {
        true
    }

    fn word(&mut self, v: &mut u64) {
        self.mix(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, PartialEq, Debug, Clone)]
    struct Demo {
        a: u64,
        b: f64,
        c: Vec<u32>,
        d: Option<(u64, bool)>,
        e: BTreeMap<u32, u64>,
    }

    impl Persist for Demo {
        fn persist(&mut self, io: &mut dyn StateIo) {
            self.a.persist(io);
            self.b.persist(io);
            persist_vec(io, &mut self.c);
            persist_opt(io, &mut self.d);
            persist_map(io, &mut self.e);
        }
    }

    #[test]
    fn round_trip_restores_bitwise() {
        let mut d = Demo {
            a: 42,
            b: -0.125,
            c: vec![1, 2, 3],
            d: Some((7, true)),
            e: [(3, 30), (1, 10)].into_iter().collect(),
        };
        let mut saver = Saver::new();
        d.persist(&mut saver);
        let bytes = saver.into_bytes();
        let mut fresh = Demo::default();
        let mut loader = Loader::new(&bytes);
        fresh.persist(&mut loader);
        loader.finish().expect("exact stream");
        assert_eq!(fresh, d);
    }

    #[test]
    fn nan_and_negative_zero_round_trip_bit_exact() {
        for v in [f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut x = v;
            let mut saver = Saver::new();
            x.persist(&mut saver);
            let bytes = saver.into_bytes();
            let mut y = 0.0;
            let mut loader = Loader::new(&bytes);
            y.persist(&mut loader);
            loader.finish().expect("exact stream");
            assert_eq!(y.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn rng_round_trip_preserves_the_stream() {
        let mut src = Rng::new(99);
        src.next_u64();
        let mut saver = Saver::new();
        src.clone().persist(&mut saver);
        let bytes = saver.into_bytes();
        let mut restored = Rng::new(0);
        let mut loader = Loader::new(&bytes);
        restored.persist(&mut loader);
        loader.finish().expect("exact stream");
        for _ in 0..16 {
            assert_eq!(src.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn short_and_long_streams_are_rejected() {
        let mut d = Demo {
            c: vec![5],
            ..Demo::default()
        };
        let mut saver = Saver::new();
        d.persist(&mut saver);
        let bytes = saver.into_bytes();

        let mut short = Demo::default();
        let mut loader = Loader::new(&bytes[..bytes.len() - 8]);
        short.persist(&mut loader);
        assert!(loader.finish().is_err(), "short stream must be rejected");

        let mut long = bytes.clone();
        long.extend_from_slice(&0u64.to_le_bytes());
        let mut trailing = Demo::default();
        let mut loader = Loader::new(&long);
        trailing.persist(&mut loader);
        assert!(loader.finish().is_err(), "trailing bytes must be rejected");
    }

    #[test]
    fn word_digest_matches_byte_fnv() {
        let mut d = WordDigest::new();
        d.mix(0xDEAD_BEEF);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        assert_eq!(d.value(), fnv1a(&bytes));
    }
}
