//! Discrete-event simulation kernel used by every layer of the `jas2004`
//! full-system simulator.
//!
//! The kernel provides six things and nothing else:
//!
//! * **Simulated time** ([`SimTime`], [`SimDuration`]) — nanosecond-resolution
//!   newtypes so wall-clock and simulated time can never be confused.
//! * **An event queue** ([`EventQueue`], [`Scheduler`]) — a monotonic
//!   priority queue of closures with deterministic FIFO tie-breaking.
//! * **A wake-up heap** ([`WakeHeap`]) — the event-driven engine scheduler's
//!   deterministic min-heap of `(tick, component, seq)` wake-ups, with lazy
//!   invalidation and a canonical checkpoint form.
//! * **Deterministic randomness** ([`Rng`]) and the distributions the
//!   workload model needs ([`dist`]).
//! * **Time-series recording** ([`SeriesRecorder`]) — fixed-interval sampling
//!   used by the measurement tools to mimic `hpmstat`-style output.
//! * **Deterministic containers** ([`DetMap`], [`DetSet`]) — key-ordered
//!   replacements for `HashMap`/`HashSet` in simulation state, so iteration
//!   order can never leak into counters (lint rule D001).
//!
//! Everything is single-threaded and bit-reproducible: the same seed and
//! configuration always produce the same simulation, which is what lets the
//! figure-reproduction tests assert quantitative bands.
//!
//! # Example
//!
//! ```
//! use jas_simkernel::{Scheduler, SimTime, SimDuration};
//!
//! let mut sched = Scheduler::new();
//! sched.schedule(SimTime::ZERO + SimDuration::from_millis(5), |s| {
//!     // events may schedule further events
//!     let now = s.now();
//!     s.schedule(now + SimDuration::from_millis(5), |_| {});
//! });
//! sched.run_until(SimTime::from_secs(1));
//! assert_eq!(sched.now(), SimTime::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod det;
pub mod dist;
mod event;
#[cfg(test)]
mod proptests;
mod rng;
mod series;
pub mod snapshot;
mod time;
mod wake;

pub use det::{DetMap, DetSet};
pub use event::{EventQueue, Scheduler};
pub use rng::Rng;
pub use series::{SeriesRecorder, SeriesSample};
pub use snapshot::{Loader, Persist, Saver, StateIo};
pub use time::{SimDuration, SimTime};
pub use wake::{ComponentId, WakeHeap};
