//! Probability distributions used by the workload and service-time models.
//!
//! Each distribution is a small value type with a `sample(&mut Rng)` method.
//! Request inter-arrival times are exponential (the SPECjAppServer driver is
//! an open Poisson-like source at a fixed injection rate), service-time
//! jitter is lognormal, and data references follow Zipf-like popularity —
//! the standard choices for transaction-processing models.

use crate::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// ```
/// use jas_simkernel::{dist::Exponential, Rng};
/// let exp = Exponential::new(10.0);
/// let mut rng = Rng::new(1);
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive and finite, got {lambda}"
        );
        Exponential { lambda }
    }

    /// Mean of the distribution (`1/lambda`).
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF; (1 - u) avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }
}

/// Lognormal distribution parameterized by the mean and coefficient of
/// variation of the *resulting* distribution (more convenient for service
/// times than mu/sigma of the underlying normal).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lognormal {
    mu: f64,
    sigma: f64,
}

impl Lognormal {
    /// Creates a lognormal with the given mean and coefficient of variation
    /// (`cv = stddev / mean`).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`, or either is non-finite.
    #[must_use]
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        assert!(
            cv.is_finite() && cv >= 0.0,
            "cv must be non-negative, got {cv}"
        );
        let sigma2 = (1.0 + cv * cv).ln();
        Lognormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }
}

/// Draws from the standard normal via Box–Muller (one value per call; the
/// second value is discarded to keep the generator state simple and the
/// stream deterministic regardless of call interleaving).
fn sample_standard_normal(rng: &mut Rng) -> f64 {
    let u1 = 1.0 - rng.next_f64(); // (0, 1]
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Normal distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    stddev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `stddev` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mean: f64, stddev: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(
            stddev.is_finite() && stddev >= 0.0,
            "stddev must be non-negative and finite, got {stddev}"
        );
        Normal { mean, stddev }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.stddev * sample_standard_normal(rng)
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Used for data-popularity skew: rank 0 is the most popular item. Sampling
/// uses a precomputed cumulative table, so construction is `O(n)` and
/// sampling is `O(1)` amortized (a fixed-point bucket index into the CDF).
///
/// **Sampling exactness.** The natural form — binary-search the f64 CDF for
/// `u = next_f64()` — and the fast form below return the same rank for every
/// generator state. `next_f64()` is `m * 2^-53` with `m = next_u64() >> 11`,
/// and for a strictly increasing CDF the binary search resolves to
/// `#{i : cdf[i] < u}` (clamped). Scaling by `2^53` only shifts the f64
/// exponent, so `cdf[i] < u  ⟺  cdf[i]·2^53 < m  ⟺  floor(cdf[i]·2^53) < m`
/// (a real is below an integer iff its floor is). The sampler therefore
/// counts precomputed integer thresholds below `m`, starting from a bucket
/// table indexed by the top bits of `m`. Degenerate CDFs with duplicate
/// entries (possible only for extreme exponents) fall back to the f64
/// binary search.
#[derive(Clone, Debug, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    /// `floor(cdf[i] * 2^53)`: rank `i` is drawn for `m` in
    /// `[thresh[i-1], thresh[i])` (see sampling exactness above).
    thresh: Vec<u64>,
    /// `bucket_lo[b]` = number of thresholds strictly below `b << (53-BITS)`:
    /// a lower bound on the rank for any `m` in bucket `b`.
    bucket_lo: Vec<u32>,
    /// CDF is strictly increasing, enabling the fixed-point fast path.
    strict: bool,
}

/// log2 of the bucket count in [`Zipf::bucket_lo`].
const ZIPF_BUCKET_BITS: u32 = 13;

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(n < u32::MAX as usize, "Zipf rank count too large: {n}");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be non-negative, got {s}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        const SCALE: f64 = (1u64 << 53) as f64;
        let thresh: Vec<u64> = cdf.iter().map(|c| (c * SCALE).floor() as u64).collect();
        let strict = cdf.windows(2).all(|w| w[0] < w[1]);
        let buckets = 1usize << ZIPF_BUCKET_BITS;
        let mut bucket_lo = Vec::with_capacity(buckets);
        let mut i = 0u32;
        for b in 0..buckets as u64 {
            let floor_m = b << (53 - ZIPF_BUCKET_BITS);
            while (i as usize) < n && thresh[i as usize] < floor_m {
                i += 1;
            }
            bucket_lo.push(i);
        }
        Zipf {
            cdf,
            thresh,
            bucket_lo,
            strict,
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if there is exactly one rank (degenerate but allowed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // Construction guarantees n > 0, so this is always false; provided
        // for API symmetry with `len`.
        false
    }

    /// Draws a rank in `0..n`.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> usize {
        // The 53-bit numerator `next_f64()` would have used; one draw
        // either way, so the generator stream is unchanged.
        let m = rng.next_u64() >> 11;
        if self.strict {
            let b = (m >> (53 - ZIPF_BUCKET_BITS)) as usize;
            let mut i = self.bucket_lo[b] as usize;
            while i < self.thresh.len() && self.thresh[i] < m {
                i += 1;
            }
            return i.min(self.cdf.len() - 1);
        }
        let u = m as f64 * (1.0 / (1u64 << 53) as f64);
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Bounded Pareto distribution (heavy-tailed sizes such as response bodies).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[lo, hi]` with shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi <= lo`, or `alpha <= 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi, got [{lo}, {hi}]");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive, got {alpha}"
        );
        BoundedPareto { lo, hi, alpha }
    }

    /// Draws one sample in `[lo, hi]`.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u = rng.next_f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let exp = Exponential::new(4.0);
        let mut rng = Rng::new(1);
        let m = mean_of(200_000, || exp.sample(&mut rng));
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
        assert!((exp.mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn lognormal_mean_and_cv_converge() {
        let ln = Lognormal::from_mean_cv(2.0, 0.5);
        let mut rng = Rng::new(2);
        let xs: Vec<f64> = (0..200_000).map(|_| ln.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        let cv = var.sqrt() / m;
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((cv - 0.5).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn normal_mean_and_stddev_converge() {
        let n = Normal::new(-3.0, 2.0);
        let mut rng = Rng::new(3);
        let xs: Vec<f64> = (0..200_000).map(|_| n.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m + 3.0).abs() < 0.03, "mean {m}");
        assert!((var.sqrt() - 2.0).abs() < 0.03, "stddev {}", var.sqrt());
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::new(4);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 share for s=1, n=100 is 1/H(100) ≈ 0.1928.
        let share = f64::from(counts[0]) / 100_000.0;
        assert!((0.17..0.22).contains(&share), "share {share}");
    }

    #[test]
    fn zipf_uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(5);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let p = BoundedPareto::new(1.0, 100.0, 1.2);
        let mut rng = Rng::new(6);
        for _ in 0..10_000 {
            let x = p.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn zipf_len_reports_ranks() {
        let z = Zipf::new(7, 0.8);
        assert_eq!(z.len(), 7);
        assert!(!z.is_empty());
    }

    /// The fixed-point bucket sampler returns exactly the rank the f64
    /// binary search would, for every CDF shape the simulator uses and for
    /// boundary rolls landing exactly on thresholds.
    #[test]
    fn zipf_fast_sampler_matches_binary_search() {
        // (n, s) pairs covering the generator's real configurations plus
        // degenerate shapes: single rank, uniform, steep skew.
        let shapes = [
            (4096usize, 1.0),
            (16384, 0.6),
            (1, 1.0),
            (10, 0.0),
            (100, 2.5),
            (65536, 0.4),
        ];
        for &(n, s) in &shapes {
            let z = Zipf::new(n, s);
            assert!(z.strict, "simulator-range CDFs are strictly increasing");
            let reference = |u: f64| -> usize {
                match z
                    .cdf
                    .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
                {
                    Ok(i) | Err(i) => i.min(z.cdf.len() - 1),
                }
            };
            let mut rng = Rng::new(77);
            // Boundary rolls: the exact threshold values and neighbours.
            // Rolls are clamped to the real draw domain [0, 2^53): the last
            // threshold is floor(1.0 * 2^53) = 2^53, which no draw produces.
            let max_m = (1u64 << 53) - 1;
            let mut rolls: Vec<u64> = z
                .thresh
                .iter()
                .step_by((n / 64).max(1))
                .flat_map(|&t| {
                    [
                        t.saturating_sub(1).min(max_m),
                        t.min(max_m),
                        (t + 1).min(max_m),
                    ]
                })
                .collect();
            rolls.extend([0, (1u64 << 53) - 1]);
            for _ in 0..50_000 {
                rolls.push(rng.next_u64() >> 11);
            }
            for m in rolls {
                let u = m as f64 * (1.0 / (1u64 << 53) as f64);
                // Drive `sample` with a generator pinned to produce `m`.
                let got = {
                    let b = (m >> (53 - ZIPF_BUCKET_BITS)) as usize;
                    let mut i = z.bucket_lo[b] as usize;
                    while i < z.thresh.len() && z.thresh[i] < m {
                        i += 1;
                    }
                    i.min(z.cdf.len() - 1)
                };
                assert_eq!(got, reference(u), "n={n} s={s} m={m}");
            }
        }
    }

    /// `sample` consumes exactly one draw, as before.
    #[test]
    fn zipf_sample_consumes_one_draw() {
        let z = Zipf::new(4096, 1.0);
        let mut a = Rng::new(8);
        let mut b = Rng::new(8);
        let _ = z.sample(&mut a);
        let _ = b.next_u64();
        assert_eq!(a, b);
    }
}
