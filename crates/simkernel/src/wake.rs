//! The event-driven scheduler's wake-up heap.
//!
//! Components (the arrival stream, blocked tasks, fault windows, the HPM
//! sampler) register the next quantum index at which something observable
//! happens to them; the engine sleeps — skips whole quanta in O(1) host
//! time — until the earliest registered wake-up. Determinism rests on the
//! heap key: entries order on the full `(tick, component, seq)` triple, and
//! because a component holds at most one *live* registration at a time, pop
//! order among live entries depends only on `(tick, component)` — never on
//! insertion history or thread count.
//!
//! Re-registering a component with a new tick does not search the heap:
//! the old entry is left in place and invalidated lazily (an entry is live
//! only while it matches the component's currently registered tick). A
//! registration for the already-registered tick is a no-op, so the heap
//! never holds duplicate live keys.

use crate::det::DetMap;
use crate::snapshot::{self as snap, Persist, StateIo};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies the component a wake-up belongs to. The id doubles as the
/// deterministic tie-breaker for wake-ups sharing a tick, so components
/// must use stable, configuration-derived ids (see the registration
/// contract in DESIGN.md §12).
pub type ComponentId = u64;

/// A deterministic min-heap of `(tick, component, seq)` wake-ups.
#[derive(Clone, Debug, Default)]
pub struct WakeHeap {
    heap: BinaryHeap<Reverse<(u64, ComponentId, u64)>>,
    /// The single live registration per component; heap entries that
    /// disagree with this map are stale and discarded on pop.
    registered: DetMap<ComponentId, u64>,
    next_seq: u64,
    high_water: u64,
}

impl WakeHeap {
    /// An empty heap.
    #[must_use]
    pub fn new() -> Self {
        WakeHeap::default()
    }

    /// Registers (or moves) `comp`'s next wake-up to `tick`. Registering
    /// the tick the component already holds is a no-op; a different tick
    /// supersedes the old registration, whose heap entry goes stale.
    pub fn register(&mut self, comp: ComponentId, tick: u64) {
        if self.registered.get(&comp) == Some(&tick) {
            return;
        }
        self.registered.insert(comp, tick);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((tick, comp, seq)));
        self.high_water = self.high_water.max(self.heap.len() as u64);
    }

    /// Withdraws `comp`'s registration, if any. The heap entry is
    /// invalidated lazily.
    pub fn cancel(&mut self, comp: ComponentId) {
        self.registered.remove(&comp);
    }

    /// The earliest live wake-up tick, discarding stale entries met on the
    /// way. `None` when nothing is registered.
    pub fn next_wake(&mut self) -> Option<u64> {
        loop {
            // jas-lint: allow(D008, reason = "key is (tick, component, seq); one live entry per component makes pop order a pure function of (tick, component)")
            let &Reverse((tick, comp, _)) = self.heap.peek()?;
            if self.registered.get(&comp) == Some(&tick) {
                return Some(tick);
            }
            // jas-lint: allow(D008, reason = "discarding an entry already superseded by a later register(); live ordering is unaffected")
            self.heap.pop();
        }
    }

    /// Consumes every live wake-up due at or before `tick` (stale entries
    /// in the same range are discarded). Returns how many live wake-ups
    /// fired.
    pub fn take_due(&mut self, tick: u64) -> u64 {
        let mut fired = 0;
        loop {
            // jas-lint: allow(D008, reason = "key is (tick, component, seq); one live entry per component makes pop order a pure function of (tick, component)")
            match self.heap.peek() {
                Some(&Reverse((t, comp, _))) if t <= tick => {
                    let live = self.registered.get(&comp) == Some(&t);
                    // jas-lint: allow(D008, reason = "entry is consumed (live) or stale; either way it is no longer orderable against future wakes")
                    self.heap.pop();
                    if live {
                        self.registered.remove(&comp);
                        fired += 1;
                    }
                }
                _ => return fired,
            }
        }
    }

    /// Number of live registrations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// `true` when no component is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// The most entries (live + stale) the heap has ever held — the
    /// scheduler-occupancy high-water mark surfaced by `--figure sched`.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }
}

impl Persist for WakeHeap {
    // Canonical form: the live registrations in component order (stale
    // heap entries are dropped by construction — they are not in the map).
    // The heap itself is rebuilt on load with fresh sequence numbers,
    // which is behavior-identical because live pop order never depends on
    // `seq` (one live entry per component).
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_map(io, &mut self.registered);
        self.high_water.persist(io);
        if !io.saving() {
            self.heap.clear();
            self.next_seq = 0;
            let entries: Vec<(ComponentId, u64)> =
                self.registered.iter().map(|(&c, &t)| (c, t)).collect();
            for (comp, tick) in entries {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(Reverse((tick, comp, seq)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Loader, Saver};

    #[test]
    fn wakes_pop_in_tick_then_component_order() {
        let mut h = WakeHeap::new();
        h.register(9, 5);
        h.register(2, 5);
        h.register(7, 3);
        assert_eq!(h.next_wake(), Some(3));
        assert_eq!(h.take_due(3), 1);
        assert_eq!(h.next_wake(), Some(5));
        assert_eq!(h.take_due(5), 2, "both tick-5 wakes fire together");
        assert!(h.is_empty());
        assert_eq!(h.next_wake(), None);
    }

    #[test]
    fn reregistering_supersedes_and_duplicates_are_noops() {
        let mut h = WakeHeap::new();
        h.register(1, 10);
        h.register(1, 10); // no-op
        assert_eq!(h.len(), 1);
        h.register(1, 4); // supersedes; tick-10 entry goes stale
        assert_eq!(h.next_wake(), Some(4));
        assert_eq!(h.take_due(4), 1);
        assert_eq!(h.next_wake(), None, "stale tick-10 entry never fires");
        assert_eq!(h.take_due(u64::MAX), 0);
    }

    #[test]
    fn cancel_invalidates_lazily() {
        let mut h = WakeHeap::new();
        h.register(3, 7);
        h.register(4, 9);
        h.cancel(3);
        assert_eq!(h.len(), 1);
        assert_eq!(h.next_wake(), Some(9));
    }

    #[test]
    fn take_due_skips_earlier_stale_entries() {
        let mut h = WakeHeap::new();
        h.register(1, 2);
        h.register(1, 20); // tick-2 entry is now stale
        h.register(5, 6);
        assert_eq!(h.take_due(10), 1, "only the live tick-6 wake fires");
        assert_eq!(h.next_wake(), Some(20));
    }

    #[test]
    fn high_water_tracks_heap_occupancy() {
        let mut h = WakeHeap::new();
        for comp in 0..8 {
            h.register(comp, comp + 1);
        }
        assert_eq!(h.high_water(), 8);
        h.take_due(u64::MAX);
        assert_eq!(h.high_water(), 8, "high-water is monotone");
    }

    #[test]
    fn persist_round_trip_is_canonical() {
        let mut h = WakeHeap::new();
        h.register(10, 50);
        h.register(10, 40); // leaves a stale entry behind
        h.register(3, 40);
        h.register(8, 90);

        let mut saver = Saver::new();
        h.persist(&mut saver);
        let bytes = saver.into_bytes();

        // A logically identical heap built without the stale entry
        // serializes to the same bytes: the canonical form is the live
        // registration map.
        let mut clean = WakeHeap::new();
        clean.register(10, 40);
        clean.register(3, 40);
        clean.register(8, 90);
        clean.high_water = h.high_water;
        let mut saver2 = Saver::new();
        clean.persist(&mut saver2);
        assert_eq!(bytes, saver2.into_bytes());

        let mut restored = WakeHeap::new();
        let mut loader = Loader::new(&bytes);
        restored.persist(&mut loader);
        loader.finish().expect("exact stream");
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.high_water(), h.high_water());
        assert_eq!(restored.next_wake(), Some(40));
        assert_eq!(restored.take_due(40), 2, "components 3 and 10");
        assert_eq!(restored.next_wake(), Some(90));
    }
}
