//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible across runs and platforms, so it
//! owns its generator instead of depending on an external crate whose stream
//! might change between versions. The generator is `xoshiro256**`, seeded
//! through SplitMix64 (the reference seeding procedure), which has excellent
//! statistical quality for simulation purposes and is trivially portable.

/// A deterministic `xoshiro256**` pseudo-random number generator.
///
/// Two generators created with the same seed produce identical streams.
/// Use [`Rng::fork`] to derive statistically independent sub-streams for
/// simulation components so that adding draws in one component does not
/// perturb another.
///
/// ```
/// use jas_simkernel::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent generator for a named sub-component.
    ///
    /// The `label` is hashed into the fork so that distinct components get
    /// distinct streams even when forked from the same parent state.
    #[must_use]
    pub fn fork(&mut self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Rng::new(self.next_u64() ^ h)
    }

    /// Mutable access to the raw generator state, for checkpoint
    /// persistence only — overwriting it mid-stream changes every
    /// subsequent draw.
    pub(crate) fn state_mut(&mut self) -> &mut [u64; 4] {
        &mut self.s
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method (unbiased).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` when the slice is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.next_below(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// Weights need not be normalized. Returns `None` if all weights are
    /// non-positive or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_label() {
        let mut parent1 = Rng::new(99);
        let mut parent2 = Rng::new(99);
        let mut f1 = parent1.fork("cache");
        let mut f2 = parent2.fork("branch");
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow generous slack.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn next_range_hits_endpoints() {
        let mut r = Rng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            match r.next_range(4, 6) {
                4 => saw_lo = true,
                6 => saw_hi = true,
                5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Rng::new(13);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut r = Rng::new(17);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pick_weighted_empty_and_zero() {
        let mut r = Rng::new(19);
        assert_eq!(r.pick_weighted(&[]), None);
        assert_eq!(r.pick_weighted(&[0.0, -1.0]), None);
    }

    #[test]
    fn pick_handles_empty_slice() {
        let mut r = Rng::new(23);
        let empty: [u8; 0] = [];
        assert_eq!(r.pick(&empty), None);
        assert_eq!(r.pick(&[42]), Some(&42));
    }
}
