//! Deterministic associative containers for simulation state.
//!
//! `std::collections::HashMap`/`HashSet` seed their hasher per *instance*:
//! two maps with identical contents iterate in different orders, and that
//! order varies run to run. Any fold over such a map — a GC scanning a
//! remembered set, an LRU picking a victim, a profiler summing ticks — can
//! leak the order into HPM counters and break the simulator's
//! bit-reproducibility contract (lint rule D001).
//!
//! [`DetMap`] and [`DetSet`] are thin newtypes over `BTreeMap`/`BTreeSet`:
//! iteration order is the key order, always, everywhere. They deref to the
//! underlying collection, so the full `BTreeMap`/`BTreeSet` API is
//! available; the newtype exists so simulation state *names* its ordering
//! guarantee and so the linter can tell sanctioned containers from
//! hazardous ones. The only API difference worth noting: `with_capacity`
//! accepts and ignores its hint (B-trees do not preallocate).
//!
//! B-tree versus seeded-hasher trade-off: a `HashMap` with a fixed seed
//! would also iterate deterministically *per build*, but its order would
//! still depend on insertion history and capacity growth, which makes
//! digest comparisons across code versions fragile. Key order is the
//! strongest, simplest contract, and the map sizes in simulation state
//! (lock tables, remembered sets, tick profiles) are far off any path hot
//! enough for the O(log n) to show up in the profile.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Deref, DerefMut};

/// An ordered map with deterministic (key-order) iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetMap<K: Ord, V>(BTreeMap<K, V>);

/// An ordered set with deterministic (key-order) iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetSet<K: Ord>(BTreeSet<K>);

impl<K: Ord, V> DetMap<K, V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        DetMap(BTreeMap::new())
    }

    /// Creates an empty map; the capacity hint is accepted for drop-in
    /// compatibility with `HashMap::with_capacity` and ignored.
    #[must_use]
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::new()
    }
}

impl<K: Ord> DetSet<K> {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        DetSet(BTreeSet::new())
    }

    /// Creates an empty set; the capacity hint is accepted for drop-in
    /// compatibility with `HashSet::with_capacity` and ignored.
    #[must_use]
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::new()
    }
}

impl<K: Ord, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord> Default for DetSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> Deref for DetMap<K, V> {
    type Target = BTreeMap<K, V>;
    fn deref(&self) -> &BTreeMap<K, V> {
        &self.0
    }
}

impl<K: Ord, V> DerefMut for DetMap<K, V> {
    fn deref_mut(&mut self) -> &mut BTreeMap<K, V> {
        &mut self.0
    }
}

impl<K: Ord> Deref for DetSet<K> {
    type Target = BTreeSet<K>;
    fn deref(&self) -> &BTreeSet<K> {
        &self.0
    }
}

impl<K: Ord> DerefMut for DetSet<K> {
    fn deref_mut(&mut self) -> &mut BTreeSet<K> {
        &mut self.0
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetMap(BTreeMap::from_iter(iter))
    }
}

impl<K: Ord> FromIterator<K> for DetSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        DetSet(BTreeSet::from_iter(iter))
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::collections::btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl<K: Ord, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::collections::btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a, K: Ord> IntoIterator for &'a DetSet<K> {
    type Item = &'a K;
    type IntoIter = std::collections::btree_set::Iter<'a, K>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl<K: Ord> IntoIterator for DetSet<K> {
    type Item = K;
    type IntoIter = std::collections::btree_set::IntoIter<K>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_iterates_in_key_order_regardless_of_insertion_order() {
        let mut a = DetMap::new();
        for k in [5u64, 1, 9, 3] {
            a.insert(k, k * 10);
        }
        let mut b = DetMap::new();
        for k in [9u64, 3, 5, 1] {
            b.insert(k, k * 10);
        }
        let ka: Vec<u64> = a.keys().copied().collect();
        let kb: Vec<u64> = b.keys().copied().collect();
        assert_eq!(ka, [1, 3, 5, 9]);
        assert_eq!(ka, kb, "iteration order is insertion-independent");
        assert_eq!(a, b);
    }

    #[test]
    fn set_iterates_in_key_order() {
        let s: DetSet<u32> = [4u32, 2, 7, 1].into_iter().collect();
        let v: Vec<u32> = s.iter().copied().collect();
        assert_eq!(v, [1, 2, 4, 7]);
    }

    #[test]
    fn deref_exposes_the_full_map_api() {
        let mut m: DetMap<u32, u64> = DetMap::with_capacity(16);
        *m.entry(3).or_default() += 7;
        *m.entry(3).or_default() += 1;
        assert_eq!(m.get(&3), Some(&8));
        assert!(m.contains_key(&3));
        m.retain(|&k, _| k != 3);
        assert!(m.is_empty());
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s: DetSet<u64> = DetSet::with_capacity(8);
        assert!(s.insert(11));
        assert!(!s.insert(11), "second insert reports already-present");
        assert!(s.contains(&11));
        assert!(s.remove(&11));
        assert!(s.is_empty());
        s.insert(1);
        s.clear();
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn owned_iteration_consumes_in_order() {
        let m: DetMap<u32, u32> = [(3u32, 30u32), (1, 10), (2, 20)].into_iter().collect();
        let pairs: Vec<(u32, u32)> = m.into_iter().collect();
        assert_eq!(pairs, [(1, 10), (2, 20), (3, 30)]);
    }
}
