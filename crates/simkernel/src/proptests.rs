//! Property-based tests for the simulation kernel: scheduler ordering and
//! series-recorder conservation under arbitrary inputs.

use crate::{Rng, Scheduler, SeriesRecorder, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events fire in non-decreasing time order with FIFO tie-breaking,
    /// regardless of scheduling order.
    #[test]
    fn scheduler_fires_in_order(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut s = Scheduler::new();
        for (seq, &ms) in delays.iter().enumerate() {
            let log = log.clone();
            s.schedule(SimTime::from_millis(ms), move |_| {
                log.borrow_mut().push((ms, seq));
            });
        }
        s.run_to_completion();
        let fired = log.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        for pair in fired.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// The clock after run_until is exactly the deadline, and no event with
    /// a later firing time has run.
    #[test]
    fn run_until_respects_the_deadline(
        delays in proptest::collection::vec(1u64..1_000, 1..50),
        deadline in 0u64..1_000,
    ) {
        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let mut s = Scheduler::new();
        for &ms in &delays {
            let fired = fired.clone();
            s.schedule(SimTime::from_millis(ms), move |_| fired.borrow_mut().push(ms));
        }
        s.run_until(SimTime::from_millis(deadline));
        prop_assert_eq!(s.now(), SimTime::from_millis(deadline));
        for &ms in fired.borrow().iter() {
            prop_assert!(ms <= deadline);
        }
        let expected = delays.iter().filter(|&&ms| ms <= deadline).count();
        prop_assert_eq!(fired.borrow().len(), expected);
    }

    /// The series recorder conserves the cumulative total: the sum of all
    /// window deltas equals the final cumulative value.
    #[test]
    fn series_recorder_conserves_totals(
        increments in proptest::collection::vec((1u64..500, 0.0..100.0f64), 1..100),
        period_ms in 1u64..50,
    ) {
        let mut rec = SeriesRecorder::new(SimDuration::from_millis(period_ms));
        let mut t = SimTime::ZERO;
        let mut cumulative = 0.0;
        for (gap_ms, inc) in increments {
            t += SimDuration::from_millis(gap_ms);
            cumulative += inc;
            rec.observe(t, cumulative);
        }
        rec.finish(t);
        let total: f64 = rec.samples().iter().map(|s| s.value).sum();
        // The final window may be partial; conservation holds up to the last
        // observation's accumulation.
        prop_assert!(
            (total - cumulative).abs() <= cumulative.max(1.0) * 1e-9,
            "total {total} vs cumulative {cumulative}"
        );
    }

    /// Uniform draws stay in range for arbitrary bounds.
    #[test]
    fn rng_next_range_in_bounds(seed in any::<u64>(), lo in 0u64..1_000, span in 0u64..1_000) {
        let hi = lo + span;
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let x = rng.next_range(lo, hi);
            prop_assert!((lo..=hi).contains(&x));
        }
    }

    /// Forked streams never coincide with their parent's subsequent output.
    #[test]
    fn rng_forks_diverge(seed in any::<u64>()) {
        let mut parent = Rng::new(seed);
        let mut fork = parent.fork("child");
        let matches = (0..64).filter(|_| parent.next_u64() == fork.next_u64()).count();
        prop_assert!(matches <= 1, "fork tracked parent ({matches} matches)");
    }
}
