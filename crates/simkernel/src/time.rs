//! Simulated-time newtypes.
//!
//! [`SimTime`] is an absolute instant on the simulation clock and
//! [`SimDuration`] is a span between instants. Both are nanosecond-resolution
//! `u64` wrappers; a `u64` of nanoseconds covers ~584 years, far beyond any
//! benchmark run.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// ```
/// use jas_simkernel::{SimTime, SimDuration};
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_nanos(), 2_500_000_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time.
///
/// ```
/// use jas_simkernel::SimDuration;
/// assert_eq!(SimDuration::from_millis(1) * 3, SimDuration::from_micros(3000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy; for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is later than `self`, mirroring
    /// `std::time::Instant::saturating_duration_since`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds (rounded to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Duration in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in fractional milliseconds (for reporting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in fractional seconds (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs(1),
            SimDuration::from_nanos(1_000_000_000)
        );
    }

    #[test]
    fn arithmetic_round_trips() {
        let t0 = SimTime::from_secs(3);
        let d = SimDuration::from_millis(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(300).to_string(), "300.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    fn scalar_mul_div() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 4, SimDuration::from_millis(40));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }
}
