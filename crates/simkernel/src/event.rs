//! The discrete-event queue and scheduler.
//!
//! Events are boxed closures ordered by firing time with a monotonically
//! increasing sequence number as the tie-breaker, so two events scheduled
//! for the same instant fire in scheduling order. That FIFO guarantee is
//! what makes the whole simulation deterministic.

use crate::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type BoxedEvent = Box<dyn FnOnce(&mut Scheduler)>;

struct Entry {
    at: SimTime,
    seq: u64,
    run: BoxedEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events.
///
/// This is the storage layer underneath [`Scheduler`]; most code uses the
/// scheduler directly. It is exposed for tests and for callers that need to
/// drive event dispatch themselves.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl std::fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Firing time of the earliest pending event, if any.
    #[must_use]
    pub fn next_time(&self) -> Option<SimTime> {
        // jas-lint: allow(D008, reason = "Entry orders on (at, seq); the seq counter is a FIFO tie-breaker for simultaneous events")
        self.heap.peek().map(|e| e.at)
    }

    fn push(&mut self, at: SimTime, run: BoxedEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, run });
    }

    fn pop(&mut self) -> Option<(SimTime, BoxedEvent)> {
        // jas-lint: allow(D008, reason = "Entry orders on (at, seq); the seq counter is a FIFO tie-breaker for simultaneous events")
        self.heap.pop().map(|e| (e.at, e.run))
    }
}

/// The simulation scheduler: a clock plus an event queue.
///
/// Events receive `&mut Scheduler` so they can read the clock and schedule
/// follow-up events. State shared between events lives outside the
/// scheduler (typically in `Rc<RefCell<_>>` or captured by the closures).
///
/// # Example
///
/// ```
/// use jas_simkernel::{Scheduler, SimTime, SimDuration};
/// use std::{cell::Cell, rc::Rc};
///
/// let fired = Rc::new(Cell::new(0u32));
/// let mut sched = Scheduler::new();
/// let f = fired.clone();
/// sched.schedule_in(SimDuration::from_millis(1), move |_| f.set(f.get() + 1));
/// sched.run_until(SimTime::from_secs(1));
/// assert_eq!(fired.get(), 1);
/// ```
#[derive(Debug)]
pub struct Scheduler {
    now: SimTime,
    queue: EventQueue,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — the simulation clock is monotonic.
    pub fn schedule(&mut self, at: SimTime, event: impl FnOnce(&mut Scheduler) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, Box::new(event));
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Scheduler) + 'static,
    ) {
        let at = self.now + delay;
        self.queue.push(at, Box::new(event));
    }

    /// Fires the next event, advancing the clock to its firing time.
    ///
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, run)) => {
                debug_assert!(at >= self.now);
                self.now = at;
                run(self);
                true
            }
            None => false,
        }
    }

    /// Runs all events with firing time `<= deadline`, then advances the
    /// clock to exactly `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.next_time() {
            if t > deadline {
                break;
            }
            let fired = self.step();
            debug_assert!(fired);
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Runs until the event queue drains completely.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut s = Scheduler::new();
        for &ms in &[30u64, 10, 20] {
            let log = log.clone();
            s.schedule(SimTime::from_millis(ms), move |_| log.borrow_mut().push(ms));
        }
        s.run_to_completion();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(s.now(), SimTime::from_millis(30));
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut s = Scheduler::new();
        for i in 0..5 {
            let log = log.clone();
            s.schedule(SimTime::from_millis(1), move |_| log.borrow_mut().push(i));
        }
        s.run_to_completion();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let count = Rc::new(RefCell::new(0u32));
        let mut s = Scheduler::new();
        fn tick(s: &mut Scheduler, count: Rc<RefCell<u32>>) {
            *count.borrow_mut() += 1;
            if *count.borrow() < 10 {
                let c = count.clone();
                s.schedule_in(SimDuration::from_millis(10), move |s| tick(s, c));
            }
        }
        let c = count.clone();
        s.schedule(SimTime::ZERO, move |s| tick(s, c));
        s.run_to_completion();
        assert_eq!(*count.borrow(), 10);
        assert_eq!(s.now(), SimTime::from_millis(90));
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(10), |_| {});
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.now(), SimTime::from_secs(1));
        assert_eq!(s.pending(), 1);
        s.run_until(SimTime::from_secs(20));
        assert_eq!(s.pending(), 0);
        assert_eq!(s.now(), SimTime::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(1), |_| {});
        s.run_to_completion();
        s.schedule(SimTime::from_millis(1), |_| {});
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut s = Scheduler::new();
        assert!(!s.step());
    }

    #[test]
    fn queue_debug_is_nonempty() {
        let q = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
