//! Fixed-interval time-series recording.
//!
//! The paper's measurement tools (`hpmstat` in particular) sample counters
//! on a fixed period (0.1 s). [`SeriesRecorder`] reproduces that pattern: a
//! caller feeds it cumulative counter values tagged with simulated time, and
//! the recorder emits one [`SeriesSample`] per elapsed interval containing
//! the *delta* over that interval.

use crate::{SimDuration, SimTime};

/// One sample of a recorded series: the interval it covers and the value
/// accumulated within it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeriesSample {
    /// Start of the sampling interval.
    pub start: SimTime,
    /// Value accumulated during the interval (delta, not cumulative).
    pub value: f64,
}

/// Records deltas of a cumulative quantity on a fixed sampling period.
///
/// ```
/// use jas_simkernel::{SeriesRecorder, SimDuration, SimTime};
///
/// let mut rec = SeriesRecorder::new(SimDuration::from_millis(100));
/// rec.observe(SimTime::from_millis(50), 10.0);
/// rec.observe(SimTime::from_millis(150), 25.0);
/// rec.finish(SimTime::from_millis(200));
/// let samples = rec.samples();
/// assert_eq!(samples.len(), 2);
/// assert_eq!(samples[0].value, 10.0); // delta in [0, 100ms)
/// assert_eq!(samples[1].value, 15.0); // delta in [100ms, 200ms)
/// ```
#[derive(Clone, Debug)]
pub struct SeriesRecorder {
    period: SimDuration,
    window_start: SimTime,
    last_cumulative: f64,
    window_base: f64,
    samples: Vec<SeriesSample>,
    finished: bool,
}

impl SeriesRecorder {
    /// Creates a recorder with the given sampling period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sampling period must be positive");
        SeriesRecorder {
            period,
            window_start: SimTime::ZERO,
            last_cumulative: 0.0,
            window_base: 0.0,
            samples: Vec::new(),
            finished: false,
        }
    }

    /// Sampling period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Feeds the recorder a new cumulative value observed at `now`.
    ///
    /// Observations must be fed in non-decreasing time order. Whenever `now`
    /// crosses one or more period boundaries the recorder closes the
    /// intervening windows (attributing the whole delta since the last
    /// observation to the window in which `now` falls — adequate because the
    /// simulator observes counters far more often than the sampling period).
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards or the recorder is already finished.
    pub fn observe(&mut self, now: SimTime, cumulative: f64) {
        assert!(!self.finished, "recorder already finished");
        assert!(
            now >= self.window_start,
            "observations must move forward in time"
        );
        while now >= self.window_start + self.period {
            self.close_window();
        }
        self.last_cumulative = cumulative;
    }

    fn close_window(&mut self) {
        self.samples.push(SeriesSample {
            start: self.window_start,
            value: self.last_cumulative - self.window_base,
        });
        self.window_base = self.last_cumulative;
        self.window_start += self.period;
    }

    /// Closes any window in progress at `end` and stops recording.
    pub fn finish(&mut self, end: SimTime) {
        if self.finished {
            return;
        }
        while end >= self.window_start + self.period {
            self.close_window();
        }
        // Emit a final partial window only if it saw any accumulation.
        if (self.last_cumulative - self.window_base).abs() > 0.0 {
            self.samples.push(SeriesSample {
                start: self.window_start,
                value: self.last_cumulative - self.window_base,
            });
        }
        self.finished = true;
    }

    /// The recorded samples.
    #[must_use]
    pub fn samples(&self) -> &[SeriesSample] {
        &self.samples
    }

    /// Consumes the recorder and returns just the per-interval values.
    #[must_use]
    pub fn into_values(self) -> Vec<f64> {
        self.samples.into_iter().map(|s| s.value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_per_window() {
        let mut rec = SeriesRecorder::new(SimDuration::from_millis(100));
        rec.observe(SimTime::from_millis(10), 1.0);
        rec.observe(SimTime::from_millis(90), 4.0);
        rec.observe(SimTime::from_millis(110), 9.0);
        rec.observe(SimTime::from_millis(210), 10.0);
        rec.finish(SimTime::from_millis(300));
        let v: Vec<f64> = rec.samples().iter().map(|s| s.value).collect();
        assert_eq!(v, vec![4.0, 5.0, 1.0]);
    }

    #[test]
    fn empty_windows_emit_zero() {
        let mut rec = SeriesRecorder::new(SimDuration::from_millis(10));
        rec.observe(SimTime::from_millis(35), 7.0);
        rec.finish(SimTime::from_millis(40));
        let v: Vec<f64> = rec.samples().iter().map(|s| s.value).collect();
        // Windows [0,10), [10,20), [20,30) closed with zero until the
        // observation lands in [30,40).
        assert_eq!(v, vec![0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut rec = SeriesRecorder::new(SimDuration::from_millis(10));
        rec.observe(SimTime::from_millis(5), 2.0);
        rec.finish(SimTime::from_millis(10));
        let n = rec.samples().len();
        rec.finish(SimTime::from_millis(50));
        assert_eq!(rec.samples().len(), n);
    }

    #[test]
    fn sample_starts_are_aligned() {
        let mut rec = SeriesRecorder::new(SimDuration::from_millis(100));
        rec.observe(SimTime::from_millis(250), 1.0);
        rec.finish(SimTime::from_millis(300));
        let starts: Vec<u64> = rec
            .samples()
            .iter()
            .map(|s| s.start.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(starts, vec![0, 100, 200]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_rejected() {
        let _ = SeriesRecorder::new(SimDuration::ZERO);
    }

    #[test]
    fn into_values_returns_all() {
        let mut rec = SeriesRecorder::new(SimDuration::from_millis(10));
        rec.observe(SimTime::from_millis(5), 3.0);
        rec.observe(SimTime::from_millis(15), 5.0);
        rec.finish(SimTime::from_millis(20));
        assert_eq!(rec.into_values(), vec![3.0, 2.0]);
    }
}
