//! Plan-fragment builders for the J2EE containers: HTTP front end, servlet
//! (web) container, EJB container with container-managed persistence, RMI
//! marshalling, and the JTA transaction coordinator.
//!
//! Cost constants are full-scale instruction estimates in line with
//! published middleware path lengths (tens of thousands of instructions per
//! container traversal, hundreds of thousands per complete request) — it is
//! exactly this layering that buries the benchmark's own code at ~2% of CPU
//! time in the paper's Figure 4.

use jas_db::{Query, TableId};
use jas_jvm::{Component, MonitorId, ObjectClass};

use crate::mq::QueueId;
use crate::plan::PlanStep;

/// Instruction cost of the native web server handling one HTTP request of
/// `body_bytes` (parse, connection handling, response write).
#[must_use]
pub fn http_frontend(body_bytes: u32) -> Vec<PlanStep> {
    vec![PlanStep::Compute {
        component: Component::WebServer,
        instructions: 130_000.0 + f64::from(body_bytes) * 10.0,
    }]
}

/// Servlet-container dispatch: request parsing, session lookup, servlet
/// service method, and view rendering.
#[must_use]
pub fn servlet_dispatch(render_bytes: u32) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::AppServer,
            instructions: 180_000.0,
        },
        PlanStep::Allocate {
            class: ObjectClass::CharArray,
            count: 6,
        },
        PlanStep::SessionTouch,
        PlanStep::Lock {
            monitor: MonitorId(1), // session registry monitor
        },
        PlanStep::Compute {
            component: Component::AppServer,
            instructions: 90_000.0 + f64::from(render_bytes) * 4.0,
        },
        PlanStep::Allocate {
            class: ObjectClass::Buffer,
            count: 1,
        },
    ]
}

/// A session-bean business method invocation (EJB container interposition).
#[must_use]
pub fn session_bean_call(app_logic_instructions: f64) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::EnterpriseServices,
            instructions: 70_000.0,
        },
        PlanStep::Allocate {
            class: ObjectClass::Small,
            count: 4,
        },
        // The benchmark's own business logic — deliberately thin.
        PlanStep::Compute {
            component: Component::Application,
            instructions: app_logic_instructions,
        },
    ]
}

/// Container-managed entity find: EJB plumbing + JDBC + the query itself +
/// bean hydration.
#[must_use]
pub fn entity_find(table: TableId, key: u64) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::EnterpriseServices,
            instructions: 40_000.0,
        },
        PlanStep::Lock {
            monitor: MonitorId(2), // connection-pool monitor
        },
        PlanStep::Db {
            query: Query::SelectByKey { table, key },
        },
        PlanStep::Allocate {
            class: ObjectClass::Bean,
            count: 1,
        },
        PlanStep::Compute {
            component: Component::JavaLibrary,
            instructions: 25_000.0,
        },
    ]
}

/// Container-managed entity update.
#[must_use]
pub fn entity_update(table: TableId, key: u64) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::EnterpriseServices,
            instructions: 45_000.0,
        },
        PlanStep::Lock {
            monitor: MonitorId(2),
        },
        PlanStep::Db {
            query: Query::Update { table, key },
        },
        PlanStep::Compute {
            component: Component::JavaLibrary,
            instructions: 18_000.0,
        },
    ]
}

/// Container-managed entity creation.
#[must_use]
pub fn entity_create(table: TableId, key: u64) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::EnterpriseServices,
            instructions: 55_000.0,
        },
        PlanStep::Lock {
            monitor: MonitorId(2),
        },
        PlanStep::Db {
            query: Query::Insert { table, key },
        },
        PlanStep::Allocate {
            class: ObjectClass::Bean,
            count: 1,
        },
        PlanStep::Compute {
            component: Component::JavaLibrary,
            instructions: 20_000.0,
        },
    ]
}

/// Container-managed entity removal.
#[must_use]
pub fn entity_delete(table: TableId, key: u64) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::EnterpriseServices,
            instructions: 48_000.0,
        },
        PlanStep::Lock {
            monitor: MonitorId(2),
        },
        PlanStep::Db {
            query: Query::Delete { table, key },
        },
        PlanStep::Compute {
            component: Component::JavaLibrary,
            instructions: 15_000.0,
        },
    ]
}

/// Finder over a key range (order status pages, inventory views).
#[must_use]
pub fn entity_find_range(table: TableId, lo: u64, hi: u64) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::EnterpriseServices,
            instructions: 50_000.0,
        },
        PlanStep::Lock {
            monitor: MonitorId(2),
        },
        PlanStep::Db {
            query: Query::RangeScan { table, lo, hi },
        },
        PlanStep::Allocate {
            class: ObjectClass::Array,
            count: 1,
        },
        PlanStep::Compute {
            component: Component::JavaLibrary,
            instructions: 30_000.0,
        },
    ]
}

/// RMI/IIOP unmarshal + dispatch + marshal for a call with `payload_bytes`.
#[must_use]
pub fn rmi_call(payload_bytes: u32) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::AppServer,
            instructions: 110_000.0 + f64::from(payload_bytes) * 12.0,
        },
        PlanStep::Allocate {
            class: ObjectClass::CharArray,
            count: 4,
        },
        PlanStep::Lock {
            monitor: MonitorId(3), // ORB registry
        },
    ]
}

/// JMS send through the MQ library.
#[must_use]
pub fn jms_send(queue: QueueId, payload_bytes: u32) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::MessageQueue,
            instructions: 50_000.0 + f64::from(payload_bytes) * 6.0,
        },
        PlanStep::MqSend {
            queue,
            payload_bytes,
        },
    ]
}

/// JMS receive + onMessage dispatch.
#[must_use]
pub fn jms_receive(queue: QueueId) -> Vec<PlanStep> {
    vec![
        PlanStep::Compute {
            component: Component::MessageQueue,
            instructions: 45_000.0,
        },
        PlanStep::MqReceive { queue },
    ]
}

/// JTA two-phase commit across `resources` enlisted resource managers.
#[must_use]
pub fn jta_commit(resources: u32) -> Vec<PlanStep> {
    vec![
        PlanStep::Lock {
            monitor: MonitorId(4), // transaction-table monitor
        },
        PlanStep::Compute {
            component: Component::EnterpriseServices,
            instructions: 30_000.0 + f64::from(resources) * 22_000.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TxPlan;

    #[test]
    fn fragments_compose_into_plans() {
        let mut plan = TxPlan::new();
        plan.extend(http_frontend(800));
        plan.extend(servlet_dispatch(4000));
        plan.extend(session_bean_call(15_000.0));
        plan.extend(entity_find(TableId(0), 42));
        plan.extend(jta_commit(1));
        assert!(plan.steps.len() > 10);
        assert!(plan.compute_instructions() > 400_000.0);
        assert_eq!(plan.db_steps(), 1);
    }

    #[test]
    fn application_code_is_a_small_fraction() {
        // The paper's headline: ~2% of CPU in benchmark code. Verify the
        // container fragments keep application logic a small share.
        let mut plan = TxPlan::new();
        plan.extend(http_frontend(800));
        plan.extend(servlet_dispatch(4000));
        plan.extend(session_bean_call(15_000.0));
        plan.extend(entity_find(TableId(0), 1));
        plan.extend(entity_update(TableId(0), 1));
        plan.extend(jta_commit(2));
        let app: f64 = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Compute {
                    component: jas_jvm::Component::Application,
                    instructions,
                } => Some(*instructions),
                _ => None,
            })
            .sum();
        let share = app / plan.compute_instructions();
        assert!(share < 0.05, "application share {share}");
    }

    #[test]
    fn rmi_cost_scales_with_payload() {
        let small = rmi_call(100);
        let large = rmi_call(10_000);
        let instr = |steps: &[PlanStep]| -> f64 {
            steps
                .iter()
                .filter_map(|s| match s {
                    PlanStep::Compute { instructions, .. } => Some(*instructions),
                    _ => None,
                })
                .sum()
        };
        assert!(instr(&large) > instr(&small));
    }

    #[test]
    fn jta_cost_scales_with_resources() {
        let one = jta_commit(1);
        let two = jta_commit(2);
        let cost = |steps: &[PlanStep]| match steps[1] {
            PlanStep::Compute { instructions, .. } => instructions,
            _ => 0.0,
        };
        assert!(cost(&two) > cost(&one));
    }
}
