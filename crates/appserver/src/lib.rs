//! A J2EE application-server substrate: the WebSphere-like tier of the
//! ISPASS 2007 J2EE characterization study.
//!
//! The crate provides:
//!
//! * bounded resource [`pool`]s (web-container threads, ORB threads, JDBC
//!   connections, JMS sessions) with FIFO admission,
//! * a FIFO message [`Broker`] driving the asynchronous manufacturing leg,
//! * the [`TxPlan`]/[`PlanStep`] vocabulary that containers compile
//!   requests into, and
//! * [`containers`] — plan-fragment builders for the HTTP front end,
//!   servlet dispatch, EJB session/entity beans (container-managed
//!   persistence over `jas-db` queries), RMI marshalling, JMS, and JTA
//!   two-phase commit.
//!
//! The heavy container path lengths are what make the benchmark's own code
//! a ~2% sliver of CPU time in the paper's Figure 4.
//!
//! # Example
//!
//! ```
//! use jas_appserver::{containers, AppServer, AppServerConfig, TxPlan};
//! use jas_db::TableId;
//!
//! let server = AppServer::new(AppServerConfig::default());
//! let mut plan = TxPlan::new();
//! plan.extend(containers::http_frontend(512));
//! plan.extend(containers::servlet_dispatch(2048));
//! plan.extend(containers::entity_find(TableId(0), 42));
//! plan.extend(containers::jta_commit(1));
//! assert!(plan.db_steps() == 1);
//! # let _ = server;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod containers;
mod mq;
mod plan;
mod pool;
#[cfg(test)]
mod proptests;
mod resilience;
mod server;

pub use mq::{Broker, BrokerStats, Message, QueueId};
pub use plan::{PlanStep, TxPlan};
pub use pool::{Admission, BoundedPool, PoolUsage};
pub use resilience::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use server::{AppServer, AppServerConfig, PoolKind};
