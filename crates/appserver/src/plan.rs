//! Transaction plans: the vocabulary connecting the J2EE containers to the
//! execution engine.
//!
//! A business request is translated by the containers into a [`TxPlan`] — a
//! sequence of [`PlanStep`]s. The execution layer (crate `jas2004`) plays a
//! plan on a simulated core: `Compute` steps burn component CPU time (and
//! thus produce that component's instruction stream), `Db` steps run real
//! queries, `Allocate` steps create real heap objects, `Lock` steps hit the
//! monitor table, `MqSend`/`MqReceive` steps move real messages.

use jas_db::Query;
use jas_jvm::{Component, MonitorId, ObjectClass};

use crate::mq::QueueId;

/// One step of a transaction plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum PlanStep {
    /// Burn `instructions` of full-scale CPU work in `component`'s code.
    Compute {
        /// The software component whose code runs.
        component: Component,
        /// Full-scale instruction count.
        instructions: f64,
    },
    /// Allocate `count` heap objects of `class`.
    Allocate {
        /// Object class to allocate.
        class: ObjectClass,
        /// Number of instances.
        count: u32,
    },
    /// Execute a database query (inside the plan's DB transaction).
    Db {
        /// The query.
        query: Query,
    },
    /// Send a message of `payload_bytes` to `queue`.
    MqSend {
        /// Destination queue.
        queue: QueueId,
        /// Payload size (drives marshalling cost).
        payload_bytes: u32,
    },
    /// Receive one message from `queue` (no-op when empty).
    MqReceive {
        /// Source queue.
        queue: QueueId,
    },
    /// Acquire a Java monitor.
    Lock {
        /// The monitor.
        monitor: MonitorId,
    },
    /// Touch (or create) long-lived session state.
    #[default]
    SessionTouch,
}

/// A complete plan for one request.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TxPlan {
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
}

impl TxPlan {
    /// Creates an empty plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: PlanStep) -> &mut Self {
        self.steps.push(step);
        self
    }

    /// Appends all steps of `other`.
    pub fn extend(&mut self, other: impl IntoIterator<Item = PlanStep>) -> &mut Self {
        self.steps.extend(other);
        self
    }

    /// Total full-scale instructions of all `Compute` steps.
    #[must_use]
    pub fn compute_instructions(&self) -> f64 {
        self.steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Compute { instructions, .. } => Some(*instructions),
                _ => None,
            })
            .sum()
    }

    /// Number of `Db` steps.
    #[must_use]
    pub fn db_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Db { .. }))
            .count()
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for PlanStep {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag: u64 = match self {
            PlanStep::Compute { .. } => 0,
            PlanStep::Allocate { .. } => 1,
            PlanStep::Db { .. } => 2,
            PlanStep::MqSend { .. } => 3,
            PlanStep::MqReceive { .. } => 4,
            PlanStep::Lock { .. } => 5,
            PlanStep::SessionTouch => 6,
        };
        io.word(&mut tag);
        if !io.saving() {
            *self = match tag {
                0 => PlanStep::Compute {
                    component: jas_jvm::Component::default(),
                    instructions: 0.0,
                },
                1 => PlanStep::Allocate {
                    class: jas_jvm::ObjectClass::default(),
                    count: 0,
                },
                2 => PlanStep::Db {
                    query: jas_db::Query::default(),
                },
                3 => PlanStep::MqSend {
                    queue: QueueId(0),
                    payload_bytes: 0,
                },
                4 => PlanStep::MqReceive { queue: QueueId(0) },
                5 => PlanStep::Lock {
                    monitor: jas_jvm::MonitorId::default(),
                },
                _ => PlanStep::SessionTouch,
            };
        }
        match self {
            PlanStep::Compute {
                component,
                instructions,
            } => {
                component.persist(io);
                instructions.persist(io);
            }
            PlanStep::Allocate { class, count } => {
                class.persist(io);
                count.persist(io);
            }
            PlanStep::Db { query } => query.persist(io),
            PlanStep::MqSend {
                queue,
                payload_bytes,
            } => {
                queue.0.persist(io);
                payload_bytes.persist(io);
            }
            PlanStep::MqReceive { queue } => queue.0.persist(io),
            PlanStep::Lock { monitor } => monitor.persist(io),
            PlanStep::SessionTouch => {}
        }
    }
}

impl Persist for TxPlan {
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_vec(io, &mut self.steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_extend_build_plans() {
        let mut p = TxPlan::new();
        p.push(PlanStep::Compute {
            component: Component::AppServer,
            instructions: 1000.0,
        })
        .push(PlanStep::SessionTouch);
        p.extend([PlanStep::Compute {
            component: Component::JavaLibrary,
            instructions: 500.0,
        }]);
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.compute_instructions(), 1500.0);
        assert_eq!(p.db_steps(), 0);
    }
}
