//! Resilience policies: bounded retry with deterministic exponential
//! backoff + jitter, and a circuit breaker guarding the database.
//!
//! Both are pure state machines over sim time — no wall-clock, no global
//! RNG. Backoff jitter comes from a SplitMix64 hash of `(seed, attempt)`,
//! so a retry schedule is a function of the run seed alone and a faulted
//! run stays bit-identical at any `--threads` count.

use jas_simkernel::{SimDuration, SimTime};

/// Bounded-retry policy with exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first failure before the request fails
    /// permanently.
    pub max_retries: u32,
    /// First-attempt backoff; doubles per attempt.
    pub base: SimDuration,
    /// Backoff ceiling.
    pub cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: SimDuration::from_millis(2),
            cap: SimDuration::from_millis(64),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based): equal-jitter exponential,
    /// `[e/2, e)` for envelope `e = base * 2^(attempt-1)`, clamped to
    /// exactly `cap` once the envelope reaches it.
    ///
    /// The schedule is monotone non-decreasing in `attempt` for any seed:
    /// each uncapped draw lies below its envelope, which is the floor of
    /// the next attempt's jitter window.
    #[must_use]
    pub fn delay(&self, seed: u64, attempt: u32) -> SimDuration {
        debug_assert!(attempt >= 1, "attempts are 1-based");
        let envelope = self.base.as_nanos().saturating_mul(
            1u64.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u64::MAX),
        );
        if envelope >= self.cap.as_nanos() {
            return self.cap;
        }
        let half = envelope / 2;
        let jitter = if half == 0 {
            0
        } else {
            splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % half
        };
        SimDuration::from_nanos(half + jitter)
    }
}

/// SplitMix64 finalizer: a cheap, high-quality pure hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Circuit-breaker tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing.
    pub open_for: SimDuration,
    /// Probe requests admitted in the half-open state.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_for: SimDuration::from_millis(250),
            half_open_probes: 2,
        }
    }
}

/// Circuit-breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Tripped: requests fail fast without touching the resource.
    Open,
    /// Probing: a bounded number of requests are admitted to test
    /// recovery.
    HalfOpen,
}

/// A closed/open/half-open circuit breaker over sim time.
///
/// The caller brackets each guarded operation with
/// [`CircuitBreaker::try_acquire`] and then exactly one of
/// [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`].
#[derive(Clone, Copy, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    probes_admitted: u32,
    last_probe_at: SimTime,
}

impl CircuitBreaker {
    /// A closed breaker with `cfg` tuning.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            probes_admitted: 0,
            last_probe_at: SimTime::ZERO,
        }
    }

    /// Current state (after any timed open → half-open transition would
    /// apply on the next [`CircuitBreaker::try_acquire`]).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Asks to perform one guarded operation at `now`. `false` means fail
    /// fast: the breaker is open, or half-open with its probe quota spent
    /// or a probe already admitted at this instant.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        if self.state == BreakerState::Open && now >= self.opened_at + self.cfg.open_for {
            self.state = BreakerState::HalfOpen;
            self.probes_admitted = 0;
        }
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                // Exactly one probe per instant: a same-tick burst must
                // not drain the whole quota before the first probe's
                // outcome is known.
                let spaced = self.probes_admitted == 0 || now > self.last_probe_at;
                if spaced && self.probes_admitted < self.cfg.half_open_probes {
                    self.probes_admitted += 1;
                    self.last_probe_at = now;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful guarded operation.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    /// Reports a failed guarded operation at `now`.
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for BreakerState {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag: u64 = match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        io.word(&mut tag);
        if !io.saving() {
            *self = match tag {
                0 => BreakerState::Closed,
                1 => BreakerState::Open,
                _ => BreakerState::HalfOpen,
            };
        }
    }
}

impl Persist for CircuitBreaker {
    // `cfg` is immutable tuning.
    // jas-lint: allow(D009, reason = "cfg is construction-time configuration, rebuilt from the run plan on restore")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.state.persist(io);
        self.consecutive_failures.persist(io);
        self.opened_at.persist(io);
        self.probes_admitted.persist(io);
        self.last_probe_at.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tripped(cfg: BreakerConfig, now: SimTime) -> CircuitBreaker {
        let mut b = CircuitBreaker::new(cfg);
        for _ in 0..cfg.failure_threshold {
            assert!(b.try_acquire(now));
            b.on_failure(now);
        }
        assert_eq!(b.state(), BreakerState::Open);
        b
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::default();
        let d1 = p.delay(1, 1);
        let d2 = p.delay(1, 2);
        assert!(d1.as_nanos() >= p.base.as_nanos() / 2 && d1.as_nanos() < p.base.as_nanos());
        assert!(d2.as_nanos() >= p.base.as_nanos());
        // base 2 ms doubling reaches the 64 ms cap at attempt 6.
        assert_eq!(p.delay(1, 6), p.cap);
        assert_eq!(p.delay(1, 40), p.cap, "deep attempts stay at the cap");
        assert_eq!(
            p.delay(1, 3),
            p.delay(1, 3),
            "pure function of (seed, attempt)"
        );
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probe() {
        let cfg = BreakerConfig::default();
        let t0 = SimTime::from_secs(1);
        let mut b = tripped(cfg, t0);
        assert!(
            !b.try_acquire(t0 + SimDuration::from_millis(1)),
            "open fails fast"
        );
        let probe_at = t0 + cfg.open_for;
        assert!(b.try_acquire(probe_at), "half-open admits a probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let cfg = BreakerConfig::default();
        let t0 = SimTime::from_secs(1);
        let mut b = tripped(cfg, t0);
        let probe_at = t0 + cfg.open_for;
        assert!(b.try_acquire(probe_at));
        b.on_failure(probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(probe_at + SimDuration::from_millis(1)));
        // The open window restarts from the failed probe.
        assert!(b.try_acquire(probe_at + cfg.open_for));
    }

    #[test]
    fn half_open_admits_exactly_one_probe_per_instant() {
        let cfg = BreakerConfig::default();
        assert!(cfg.half_open_probes >= 2, "test needs a quota above one");
        let t0 = SimTime::from_secs(1);
        let mut b = tripped(cfg, t0);
        let probe_at = t0 + cfg.open_for;
        // A same-tick burst: only the first request may pass.
        assert!(b.try_acquire(probe_at), "first probe admitted");
        for _ in 0..10 {
            assert!(
                !b.try_acquire(probe_at),
                "same-tick burst must not drain the probe quota"
            );
        }
        // The next instant admits the second (and last) quota slot.
        let later = probe_at + SimDuration::from_millis(1);
        assert!(b.try_acquire(later), "next instant admits one more probe");
        assert!(!b.try_acquire(later), "still one per instant");
        assert!(
            !b.try_acquire(later + SimDuration::from_millis(1)),
            "quota of {} probes is spent",
            cfg.half_open_probes
        );
        // A successful probe closes the breaker as before.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..100 {
            assert!(b.try_acquire(SimTime::ZERO));
            b.on_failure(SimTime::ZERO);
            b.on_success();
        }
        assert_eq!(b.state(), BreakerState::Closed, "streak never reaches 5");
    }
}
