//! Bounded resource pools: worker threads, ORB threads, JDBC connections.
//!
//! Pool sizing is the heart of application-server tuning (the paper spent
//! substantial effort tuning WebSphere before measuring). The pool is
//! non-blocking in the discrete-event style: an exhausted pool queues the
//! requester and hands the resource over on release.

use std::collections::VecDeque;

/// What happened when a requester asked for a resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A resource was granted immediately.
    Granted,
    /// The pool is exhausted; the requester is queued at this position
    /// (0 = next in line).
    Queued {
        /// Position in the wait queue.
        position: usize,
    },
}

/// Pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolUsage {
    /// Total acquisition requests.
    pub requests: u64,
    /// Requests that had to queue.
    pub queued: u64,
    /// High-water mark of concurrently used resources.
    pub peak_in_use: usize,
    /// High-water mark of the wait queue.
    pub peak_waiters: usize,
}

/// A bounded pool of identical resources, with FIFO admission of waiters.
///
/// Requesters are identified by an opaque `u64` token chosen by the caller
/// (typically a request id).
#[derive(Clone, Debug)]
pub struct BoundedPool {
    name: &'static str,
    capacity: usize,
    in_use: usize,
    seized: usize,
    waiters: VecDeque<u64>,
    usage: PoolUsage,
}

impl BoundedPool {
    /// Creates a pool of `capacity` resources.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(name: &'static str, capacity: usize) -> Self {
        // jas-lint: allow(D013, reason = "constructor-time config validation; runs before any request exists")
        assert!(capacity > 0, "pool {name} needs capacity");
        BoundedPool {
            name,
            capacity,
            in_use: 0,
            seized: 0,
            waiters: VecDeque::new(),
            usage: PoolUsage::default(),
        }
    }

    /// The pool's name (for reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resources currently held.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Resources seized by an injected exhaustion fault.
    #[must_use]
    pub fn seized(&self) -> usize {
        self.seized
    }

    /// Capacity usable by requesters: configured capacity minus whatever
    /// the fault plan has seized.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity - self.seized
    }

    /// Sets the number of seized resources (pool-exhaustion fault). When
    /// seizure shrinks, queued waiters are admitted into the freed
    /// capacity and their tokens returned so the caller can resume them.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not below the pool's capacity (a fully
    /// seized pool would deadlock every requester forever).
    pub fn set_seized(&mut self, target: usize) -> Vec<u64> {
        // jas-lint: allow(D013, reason = "fault-injection control plane, not the dispatch path; a fully seized pool would deadlock every requester")
        assert!(
            target < self.capacity,
            "pool {} cannot seize its whole capacity",
            self.name
        );
        self.seized = target;
        let mut resumed = Vec::new();
        while self.in_use < self.available() {
            match self.waiters.pop_front() {
                Some(token) => {
                    self.in_use += 1;
                    self.usage.peak_in_use = self.usage.peak_in_use.max(self.in_use);
                    resumed.push(token);
                }
                None => break,
            }
        }
        resumed
    }

    /// Requests a resource for `token`.
    pub fn acquire(&mut self, token: u64) -> Admission {
        self.usage.requests += 1;
        if self.in_use < self.available() {
            self.in_use += 1;
            self.usage.peak_in_use = self.usage.peak_in_use.max(self.in_use);
            Admission::Granted
        } else {
            self.waiters.push_back(token);
            self.usage.queued += 1;
            self.usage.peak_waiters = self.usage.peak_waiters.max(self.waiters.len());
            Admission::Queued {
                position: self.waiters.len() - 1,
            }
        }
    }

    /// Releases one resource. If a waiter was queued, the resource passes
    /// directly to it and its token is returned so the caller can resume it.
    ///
    /// # Panics
    ///
    /// Panics if the pool has no resources outstanding.
    pub fn release(&mut self) -> Option<u64> {
        // jas-lint: allow(D013, reason = "release below zero is caller memory corruption, not request state; no degraded continuation exists")
        assert!(
            self.in_use > 0,
            "pool {} released more than acquired",
            self.name
        );
        // While over-committed (seizure landed after grants), releases
        // shrink `in_use` back under the available ceiling before any
        // waiter is admitted. With nothing seized this is the plain
        // pass-through: a waiter always takes over the released resource.
        if self.in_use <= self.available() {
            if let Some(token) = self.waiters.pop_front() {
                return Some(token); // resource passes straight through
            }
        }
        self.in_use -= 1;
        None
    }

    /// Removes `token` from the wait queue (request timed out / abandoned).
    /// Returns `true` if it was queued.
    pub fn cancel(&mut self, token: u64) -> bool {
        if let Some(pos) = self.waiters.iter().position(|&t| t == token) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Usage statistics.
    #[must_use]
    pub fn usage(&self) -> PoolUsage {
        self.usage
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for PoolUsage {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.requests.persist(io);
        self.queued.persist(io);
        self.peak_in_use.persist(io);
        self.peak_waiters.persist(io);
    }
}

impl Persist for BoundedPool {
    // jas-lint: allow(D009, reason = "name and capacity are construction-time configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.in_use.persist(io);
        self.seized.persist(io);
        snap::persist_deque(io, &mut self.waiters);
        self.usage.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_capacity() {
        let mut p = BoundedPool::new("web", 2);
        assert_eq!(p.acquire(1), Admission::Granted);
        assert_eq!(p.acquire(2), Admission::Granted);
        assert_eq!(p.acquire(3), Admission::Queued { position: 0 });
        assert_eq!(p.acquire(4), Admission::Queued { position: 1 });
        assert_eq!(p.in_use(), 2);
    }

    #[test]
    fn release_hands_resource_to_waiter_fifo() {
        let mut p = BoundedPool::new("web", 1);
        p.acquire(1);
        p.acquire(2);
        p.acquire(3);
        assert_eq!(p.release(), Some(2));
        assert_eq!(p.release(), Some(3));
        assert_eq!(p.release(), None);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn cancel_removes_waiter() {
        let mut p = BoundedPool::new("jdbc", 1);
        p.acquire(1);
        p.acquire(2);
        p.acquire(3);
        assert!(p.cancel(2));
        assert!(!p.cancel(2));
        assert_eq!(p.release(), Some(3));
    }

    #[test]
    fn usage_tracks_peaks() {
        let mut p = BoundedPool::new("orb", 2);
        p.acquire(1);
        p.acquire(2);
        p.acquire(3);
        let u = p.usage();
        assert_eq!(u.requests, 3);
        assert_eq!(u.queued, 1);
        assert_eq!(u.peak_in_use, 2);
        assert_eq!(u.peak_waiters, 1);
    }

    #[test]
    fn seizure_shrinks_admission_and_lifting_resumes_waiters() {
        let mut p = BoundedPool::new("jdbc", 4);
        assert!(p.set_seized(3).is_empty());
        assert_eq!(p.available(), 1);
        assert_eq!(p.acquire(1), Admission::Granted);
        assert_eq!(p.acquire(2), Admission::Queued { position: 0 });
        assert_eq!(p.acquire(3), Admission::Queued { position: 1 });
        // Lifting the seizure admits the queued waiters FIFO.
        assert_eq!(p.set_seized(0), vec![2, 3]);
        assert_eq!(p.in_use(), 3);
        assert_eq!(p.acquire(4), Admission::Granted);
    }

    #[test]
    fn releases_drain_overcommit_before_admitting_waiters() {
        let mut p = BoundedPool::new("jdbc", 2);
        p.acquire(1);
        p.acquire(2);
        p.acquire(3); // queued
        p.set_seized(1); // now over-committed: in_use 2 > available 1
        assert_eq!(p.release(), None, "release shrinks the overcommit first");
        assert_eq!(p.in_use(), 1);
        assert_eq!(p.release(), Some(3), "at the ceiling, pass-through resumes");
        assert_eq!(p.in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot seize its whole capacity")]
    fn full_seizure_rejected() {
        let mut p = BoundedPool::new("jdbc", 2);
        let _ = p.set_seized(2);
    }

    #[test]
    #[should_panic(expected = "released more than acquired")]
    fn over_release_panics() {
        let mut p = BoundedPool::new("web", 1);
        p.release();
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = BoundedPool::new("x", 0);
    }
}
