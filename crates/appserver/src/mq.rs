//! The message-queue broker (the "MQ" library of the paper's software
//! stack).
//!
//! SPECjAppServer2004's manufacturing domain is driven by JMS work orders;
//! the broker here is a set of FIFO queues with depth statistics so the
//! workload can run its asynchronous leg for real.

use std::collections::VecDeque;

/// Identifier of a queue within the broker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct QueueId(pub u32);

/// A queued message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Opaque correlation id chosen by the sender.
    pub correlation: u64,
    /// Payload size in bytes (drives marshalling cost).
    pub payload_bytes: u32,
    /// Delivery attempts this message is on (1 = first delivery). Bumped
    /// by [`Broker::redeliver`]; consumers dead-letter past their budget.
    pub deliveries: u32,
}

impl Message {
    /// A fresh message on its first delivery attempt.
    #[must_use]
    pub fn new(correlation: u64, payload_bytes: u32) -> Message {
        Message {
            correlation,
            payload_bytes,
            deliveries: 1,
        }
    }
}

/// Broker statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Messages enqueued.
    pub sent: u64,
    /// Messages dequeued.
    pub received: u64,
    /// Messages pushed back for redelivery.
    pub redelivered: u64,
    /// Messages moved to the dead-letter queue.
    pub dead_lettered: u64,
    /// High-water mark of total queued messages.
    pub peak_depth: usize,
}

/// A FIFO message broker.
#[derive(Clone, Debug, Default)]
pub struct Broker {
    queues: Vec<VecDeque<Message>>,
    dead: Vec<Message>,
    stats: BrokerStats,
}

impl Broker {
    /// Creates a broker with no queues.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new queue.
    pub fn declare_queue(&mut self) -> QueueId {
        self.queues.push(VecDeque::new());
        QueueId((self.queues.len() - 1) as u32)
    }

    /// Enqueues a message.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist.
    pub fn send(&mut self, queue: QueueId, message: Message) {
        self.queues
            .get_mut(queue.0 as usize)
            .expect("unknown queue")
            .push_back(message);
        self.stats.sent += 1;
        let depth: usize = self.queues.iter().map(VecDeque::len).sum();
        self.stats.peak_depth = self.stats.peak_depth.max(depth);
    }

    /// Dequeues the oldest message, if any.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist.
    pub fn receive(&mut self, queue: QueueId) -> Option<Message> {
        let m = self
            .queues
            .get_mut(queue.0 as usize)
            .expect("unknown queue")
            .pop_front();
        if m.is_some() {
            self.stats.received += 1;
        }
        m
    }

    /// Pushes a consumed message back to the front of its queue for
    /// another delivery attempt (JMS at-least-once redelivery). The front
    /// keeps FIFO intact: the redelivered message is retried before newer
    /// work.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist.
    pub fn redeliver(&mut self, queue: QueueId, mut message: Message) {
        message.deliveries += 1;
        self.queues
            .get_mut(queue.0 as usize)
            .expect("unknown queue")
            .push_front(message);
        self.stats.redelivered += 1;
        let depth: usize = self.queues.iter().map(VecDeque::len).sum();
        self.stats.peak_depth = self.stats.peak_depth.max(depth);
    }

    /// Moves a poisoned message to the dead-letter queue.
    pub fn dead_letter(&mut self, message: Message) {
        self.dead.push(message);
        self.stats.dead_lettered += 1;
    }

    /// Messages parked on the dead-letter queue, in arrival order.
    #[must_use]
    pub fn dead_letters(&self) -> &[Message] {
        &self.dead
    }

    /// Current depth of one queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist.
    #[must_use]
    pub fn depth(&self, queue: QueueId) -> usize {
        self.queues
            .get(queue.0 as usize)
            .expect("unknown queue")
            .len()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> BrokerStats {
        self.stats
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Default for Message {
    fn default() -> Self {
        Message::new(0, 0)
    }
}

impl Persist for Message {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.correlation.persist(io);
        self.payload_bytes.persist(io);
        self.deliveries.persist(io);
    }
}

impl Persist for BrokerStats {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.sent.persist(io);
        self.received.persist(io);
        self.redelivered.persist(io);
        self.dead_lettered.persist(io);
        self.peak_depth.persist(io);
    }
}

impl Persist for Broker {
    // The queue count is set by `declare_queue` during server boot, so
    // the outer Vec persists in place; queue contents are growable.
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.queues);
        snap::persist_vec(io, &mut self.dead);
        self.stats.persist(io);
    }
}

impl Persist for QueueId {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.0.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut b = Broker::new();
        let q = b.declare_queue();
        b.send(q, Message::new(1, 100));
        b.send(q, Message::new(2, 100));
        assert_eq!(b.receive(q).unwrap().correlation, 1);
        assert_eq!(b.receive(q).unwrap().correlation, 2);
        assert_eq!(b.receive(q), None);
    }

    #[test]
    fn queues_are_independent() {
        let mut b = Broker::new();
        let q1 = b.declare_queue();
        let q2 = b.declare_queue();
        b.send(q1, Message::new(1, 10));
        assert_eq!(b.depth(q1), 1);
        assert_eq!(b.depth(q2), 0);
        assert_eq!(b.receive(q2), None);
    }

    #[test]
    fn stats_track_peak_depth() {
        let mut b = Broker::new();
        let q = b.declare_queue();
        for i in 0..5 {
            b.send(q, Message::new(i, 10));
        }
        b.receive(q);
        let s = b.stats();
        assert_eq!(s.sent, 5);
        assert_eq!(s.received, 1);
        assert_eq!(s.peak_depth, 5);
    }

    #[test]
    fn redelivery_goes_to_the_front_and_counts_attempts() {
        let mut b = Broker::new();
        let q = b.declare_queue();
        b.send(q, Message::new(1, 10));
        b.send(q, Message::new(2, 10));
        let m = b.receive(q).unwrap();
        assert_eq!(m.deliveries, 1);
        b.redeliver(q, m);
        let again = b.receive(q).unwrap();
        assert_eq!(again.correlation, 1, "redelivered before newer work");
        assert_eq!(again.deliveries, 2);
        assert_eq!(b.stats().redelivered, 1);
    }

    #[test]
    fn dead_letters_are_parked_not_redelivered() {
        let mut b = Broker::new();
        let q = b.declare_queue();
        b.send(q, Message::new(9, 10));
        let m = b.receive(q).unwrap();
        b.dead_letter(m);
        assert_eq!(b.receive(q), None);
        assert_eq!(b.dead_letters().len(), 1);
        assert_eq!(b.dead_letters()[0].correlation, 9);
        assert_eq!(b.stats().dead_lettered, 1);
    }

    #[test]
    #[should_panic(expected = "unknown queue")]
    fn unknown_queue_panics() {
        let mut b = Broker::new();
        b.send(QueueId(3), Message::new(0, 0));
    }
}
