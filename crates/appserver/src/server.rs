//! The application-server facade: admission control through the standard
//! WebSphere-style pools plus the message broker.

use crate::mq::{Broker, QueueId};
use crate::pool::{Admission, BoundedPool, PoolUsage};

/// Which pool a request needs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolKind {
    /// Web-container worker threads (HTTP requests).
    #[default]
    WebContainer,
    /// ORB threads (RMI requests).
    Orb,
    /// JDBC connections.
    Jdbc,
    /// JMS listener sessions.
    JmsListener,
}

impl PoolKind {
    /// Stable small-integer id, for compact encodings like trace-event
    /// payloads.
    #[must_use]
    pub fn index(self) -> u8 {
        match self {
            PoolKind::WebContainer => 0,
            PoolKind::Orb => 1,
            PoolKind::Jdbc => 2,
            PoolKind::JmsListener => 3,
        }
    }
}

/// Pool sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppServerConfig {
    /// Web-container thread pool size.
    pub web_threads: usize,
    /// ORB thread pool size.
    pub orb_threads: usize,
    /// JDBC connection pool size.
    pub jdbc_connections: usize,
    /// JMS listener sessions.
    pub jms_sessions: usize,
}

impl Default for AppServerConfig {
    /// Sizes in the neighbourhood of tuned SPECjAppServer submissions.
    fn default() -> Self {
        AppServerConfig {
            web_threads: 50,
            orb_threads: 30,
            jdbc_connections: 40,
            jms_sessions: 10,
        }
    }
}

/// The application server: pools + broker.
#[derive(Clone, Debug)]
pub struct AppServer {
    web: BoundedPool,
    orb: BoundedPool,
    jdbc: BoundedPool,
    jms: BoundedPool,
    broker: Broker,
    work_order_queue: QueueId,
}

impl AppServer {
    /// Boots an application server.
    #[must_use]
    pub fn new(cfg: AppServerConfig) -> Self {
        let mut broker = Broker::new();
        let work_order_queue = broker.declare_queue();
        AppServer {
            web: BoundedPool::new("WebContainer", cfg.web_threads),
            orb: BoundedPool::new("ORB", cfg.orb_threads),
            jdbc: BoundedPool::new("JDBC", cfg.jdbc_connections),
            jms: BoundedPool::new("JMSListener", cfg.jms_sessions),
            broker,
            work_order_queue,
        }
    }

    /// The manufacturing work-order queue.
    #[must_use]
    pub fn work_order_queue(&self) -> QueueId {
        self.work_order_queue
    }

    /// The message broker.
    pub fn broker_mut(&mut self) -> &mut Broker {
        &mut self.broker
    }

    /// Read-only broker access.
    #[must_use]
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    fn pool_mut(&mut self, kind: PoolKind) -> &mut BoundedPool {
        match kind {
            PoolKind::WebContainer => &mut self.web,
            PoolKind::Orb => &mut self.orb,
            PoolKind::Jdbc => &mut self.jdbc,
            PoolKind::JmsListener => &mut self.jms,
        }
    }

    /// Requests a resource from `kind` for request `token`.
    pub fn acquire(&mut self, kind: PoolKind, token: u64) -> Admission {
        self.pool_mut(kind).acquire(token)
    }

    /// Releases one resource of `kind`; returns the token of a queued
    /// request that should now resume, if any.
    pub fn release(&mut self, kind: PoolKind) -> Option<u64> {
        self.pool_mut(kind).release()
    }

    /// Removes `token` from `kind`'s wait queue (abandoned request).
    /// Returns `true` if it was queued.
    pub fn cancel_wait(&mut self, kind: PoolKind, token: u64) -> bool {
        self.pool_mut(kind).cancel(token)
    }

    /// Applies a pool-exhaustion fault: seizes `target` resources of
    /// `kind` (shrinking what requesters can use) and returns the tokens
    /// of waiters admitted when a seizure is lifted.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not below the pool's capacity.
    pub fn set_seized(&mut self, kind: PoolKind, target: usize) -> Vec<u64> {
        self.pool_mut(kind).set_seized(target)
    }

    /// Resources of `kind` currently seized by the fault plan.
    #[must_use]
    pub fn seized(&self, kind: PoolKind) -> usize {
        match kind {
            PoolKind::WebContainer => self.web.seized(),
            PoolKind::Orb => self.orb.seized(),
            PoolKind::Jdbc => self.jdbc.seized(),
            PoolKind::JmsListener => self.jms.seized(),
        }
    }

    /// Usage statistics for `kind`.
    #[must_use]
    pub fn usage(&self, kind: PoolKind) -> PoolUsage {
        match kind {
            PoolKind::WebContainer => self.web.usage(),
            PoolKind::Orb => self.orb.usage(),
            PoolKind::Jdbc => self.jdbc.usage(),
            PoolKind::JmsListener => self.jms.usage(),
        }
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for AppServer {
    // `work_order_queue` is assigned at boot and never changes.
    // jas-lint: allow(D009, reason = "work_order_queue is assigned at boot from config and never mutated")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.web.persist(io);
        self.orb.persist(io);
        self.jdbc.persist(io);
        self.jms.persist(io);
        self.broker.persist(io);
    }
}

impl Persist for PoolKind {
    // Encoded as the stable `index()`.
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag = u64::from(self.index());
        io.word(&mut tag);
        if !io.saving() {
            *self = match tag {
                0 => PoolKind::WebContainer,
                1 => PoolKind::Orb,
                2 => PoolKind::Jdbc,
                _ => PoolKind::JmsListener,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mq::Message;

    #[test]
    fn pools_admit_and_queue_independently() {
        let mut s = AppServer::new(AppServerConfig {
            web_threads: 1,
            orb_threads: 1,
            jdbc_connections: 1,
            jms_sessions: 1,
        });
        assert_eq!(s.acquire(PoolKind::WebContainer, 1), Admission::Granted);
        assert_eq!(s.acquire(PoolKind::Orb, 2), Admission::Granted);
        assert!(matches!(
            s.acquire(PoolKind::WebContainer, 3),
            Admission::Queued { .. }
        ));
        assert_eq!(s.release(PoolKind::WebContainer), Some(3));
    }

    #[test]
    fn work_order_queue_round_trips() {
        let mut s = AppServer::new(AppServerConfig::default());
        let q = s.work_order_queue();
        s.broker_mut().send(q, Message::new(7, 256));
        assert_eq!(s.broker().depth(q), 1);
        assert_eq!(s.broker_mut().receive(q).unwrap().correlation, 7);
    }

    #[test]
    fn usage_is_per_pool() {
        let mut s = AppServer::new(AppServerConfig::default());
        s.acquire(PoolKind::Jdbc, 1);
        assert_eq!(s.usage(PoolKind::Jdbc).requests, 1);
        assert_eq!(s.usage(PoolKind::Orb).requests, 0);
    }
}
