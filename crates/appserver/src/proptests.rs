//! Property-based tests for the pools, broker, and resilience policies:
//! conservation laws that must hold under any interleaving.

use crate::mq::{Broker, Message};
use crate::pool::{Admission, BoundedPool};
use crate::resilience::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use jas_simkernel::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug)]
enum PoolOp {
    Acquire(u64),
    Release,
    Cancel(u64),
}

fn pool_ops() -> impl Strategy<Value = Vec<PoolOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..50).prop_map(PoolOp::Acquire),
            Just(PoolOp::Release),
            (0u64..50).prop_map(PoolOp::Cancel),
        ],
        1..300,
    )
}

proptest! {
    /// Pool conservation: `in_use` never exceeds capacity; every granted
    /// resource is accounted; handed-over tokens were actually waiting.
    #[test]
    fn pool_conserves_resources(capacity in 1usize..8, ops in pool_ops()) {
        let mut pool = BoundedPool::new("prop", capacity);
        let mut waiting: VecDeque<u64> = VecDeque::new();
        let mut outstanding = 0usize; // resources held by *someone*
        for op in ops {
            match op {
                PoolOp::Acquire(token) => match pool.acquire(token) {
                    Admission::Granted => {
                        outstanding += 1;
                        prop_assert!(outstanding <= capacity);
                    }
                    Admission::Queued { position } => {
                        prop_assert_eq!(position, waiting.len());
                        waiting.push_back(token);
                        prop_assert_eq!(outstanding, capacity, "queued only when full");
                    }
                },
                PoolOp::Release => {
                    if outstanding == 0 {
                        continue; // releasing nothing would be a caller bug
                    }
                    match pool.release() {
                        Some(token) => {
                            // FIFO handover to the oldest waiter.
                            prop_assert_eq!(Some(token), waiting.pop_front());
                        }
                        None => {
                            prop_assert!(waiting.is_empty());
                            outstanding -= 1;
                        }
                    }
                }
                PoolOp::Cancel(token) => {
                    let was_waiting = waiting.iter().any(|&t| t == token);
                    prop_assert_eq!(pool.cancel(token), was_waiting);
                    if was_waiting {
                        let pos = waiting.iter().position(|&t| t == token).unwrap();
                        waiting.remove(pos);
                    }
                }
            }
            prop_assert_eq!(pool.in_use(), outstanding);
        }
    }

    /// The broker preserves messages exactly: FIFO per queue, nothing lost
    /// or duplicated.
    #[test]
    fn broker_is_a_perfect_fifo(
        sends in proptest::collection::vec((0u8..3, any::<u64>()), 0..200),
        receives in proptest::collection::vec(0u8..3, 0..220),
    ) {
        let mut broker = Broker::new();
        let queues = [broker.declare_queue(), broker.declare_queue(), broker.declare_queue()];
        let mut model: [VecDeque<u64>; 3] = Default::default();
        for (q, corr) in sends {
            broker.send(queues[q as usize], Message::new(corr, 1));
            model[q as usize].push_back(corr);
        }
        for q in receives {
            let got = broker.receive(queues[q as usize]).map(|m| m.correlation);
            prop_assert_eq!(got, model[q as usize].pop_front());
        }
        for (q, m) in model.iter().enumerate() {
            prop_assert_eq!(broker.depth(queues[q]), m.len());
        }
    }

    /// The backoff schedule is monotone non-decreasing, capped, bounded by
    /// its envelope, and a pure function of `(seed, attempt)`.
    #[test]
    fn backoff_schedule_is_monotone_capped_and_deterministic(
        seed in any::<u64>(),
        base_ms in 1u64..16,
        cap_ms in 16u64..256,
    ) {
        let policy = RetryPolicy {
            max_retries: 8,
            base: SimDuration::from_millis(base_ms),
            cap: SimDuration::from_millis(cap_ms),
        };
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=24u32 {
            let d = policy.delay(seed, attempt);
            prop_assert!(d >= prev, "monotone: attempt {attempt}: {d:?} < {prev:?}");
            prop_assert!(d <= policy.cap, "capped: attempt {attempt}");
            prop_assert!(!d.is_zero(), "a retry always waits");
            prop_assert_eq!(d, policy.delay(seed, attempt), "deterministic per seed");
            prev = d;
        }
        prop_assert_eq!(policy.delay(seed, 64), policy.cap, "deep attempts sit at the cap");
    }

    /// The breaker never serves while open, and half-open admits exactly
    /// the configured probe quota, under any failure pattern.
    #[test]
    fn breaker_never_serves_open_and_probes_exactly(
        threshold in 1u32..6,
        probes in 1u32..5,
        outcomes in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            open_for: SimDuration::from_millis(100),
            half_open_probes: probes,
        };
        let mut breaker = CircuitBreaker::new(cfg);
        let mut now = SimTime::ZERO;
        let mut opened_at = None;
        for (i, ok) in outcomes.into_iter().enumerate() {
            now += SimDuration::from_millis(1 + (i as u64 % 7) * 29);
            let state_before = breaker.state();
            if let Some(at) = opened_at {
                if now < at + cfg.open_for {
                    prop_assert!(!breaker.try_acquire(now), "must not serve while open");
                    continue;
                }
            }
            if breaker.try_acquire(now) {
                if state_before == BreakerState::Open {
                    // The timed transition fired: this is probe #1. The
                    // rest of a same-tick burst must fail fast — the
                    // quota drains at most one probe per instant.
                    prop_assert!(!breaker.try_acquire(now), "one probe per instant");
                    let mut t = now;
                    for _ in 1..probes {
                        t += SimDuration::from_millis(1);
                        prop_assert!(breaker.try_acquire(t), "next instant admits a probe");
                        prop_assert!(!breaker.try_acquire(t), "one probe per instant");
                    }
                    t += SimDuration::from_millis(1);
                    prop_assert!(!breaker.try_acquire(t), "probe quota is exact");
                    // Settle the extra probes so state stays coherent.
                    for _ in 1..probes {
                        breaker.on_success();
                    }
                }
                if ok {
                    breaker.on_success();
                } else {
                    breaker.on_failure(now);
                }
                opened_at = (breaker.state() == BreakerState::Open).then_some(now);
            } else {
                prop_assert!(breaker.state() != BreakerState::Closed, "closed always serves");
            }
        }
    }
}
