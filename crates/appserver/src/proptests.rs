//! Property-based tests for the pools and broker: conservation laws that
//! must hold under any acquire/release/cancel interleaving.

use crate::mq::{Broker, Message};
use crate::pool::{Admission, BoundedPool};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug)]
enum PoolOp {
    Acquire(u64),
    Release,
    Cancel(u64),
}

fn pool_ops() -> impl Strategy<Value = Vec<PoolOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..50).prop_map(PoolOp::Acquire),
            Just(PoolOp::Release),
            (0u64..50).prop_map(PoolOp::Cancel),
        ],
        1..300,
    )
}

proptest! {
    /// Pool conservation: `in_use` never exceeds capacity; every granted
    /// resource is accounted; handed-over tokens were actually waiting.
    #[test]
    fn pool_conserves_resources(capacity in 1usize..8, ops in pool_ops()) {
        let mut pool = BoundedPool::new("prop", capacity);
        let mut waiting: VecDeque<u64> = VecDeque::new();
        let mut outstanding = 0usize; // resources held by *someone*
        for op in ops {
            match op {
                PoolOp::Acquire(token) => match pool.acquire(token) {
                    Admission::Granted => {
                        outstanding += 1;
                        prop_assert!(outstanding <= capacity);
                    }
                    Admission::Queued { position } => {
                        prop_assert_eq!(position, waiting.len());
                        waiting.push_back(token);
                        prop_assert_eq!(outstanding, capacity, "queued only when full");
                    }
                },
                PoolOp::Release => {
                    if outstanding == 0 {
                        continue; // releasing nothing would be a caller bug
                    }
                    match pool.release() {
                        Some(token) => {
                            // FIFO handover to the oldest waiter.
                            prop_assert_eq!(Some(token), waiting.pop_front());
                        }
                        None => {
                            prop_assert!(waiting.is_empty());
                            outstanding -= 1;
                        }
                    }
                }
                PoolOp::Cancel(token) => {
                    let was_waiting = waiting.iter().any(|&t| t == token);
                    prop_assert_eq!(pool.cancel(token), was_waiting);
                    if was_waiting {
                        let pos = waiting.iter().position(|&t| t == token).unwrap();
                        waiting.remove(pos);
                    }
                }
            }
            prop_assert_eq!(pool.in_use(), outstanding);
        }
    }

    /// The broker preserves messages exactly: FIFO per queue, nothing lost
    /// or duplicated.
    #[test]
    fn broker_is_a_perfect_fifo(
        sends in proptest::collection::vec((0u8..3, any::<u64>()), 0..200),
        receives in proptest::collection::vec(0u8..3, 0..220),
    ) {
        let mut broker = Broker::new();
        let queues = [broker.declare_queue(), broker.declare_queue(), broker.declare_queue()];
        let mut model: [VecDeque<u64>; 3] = Default::default();
        for (q, corr) in sends {
            broker.send(queues[q as usize], Message { correlation: corr, payload_bytes: 1 });
            model[q as usize].push_back(corr);
        }
        for q in receives {
            let got = broker.receive(queues[q as usize]).map(|m| m.correlation);
            prop_assert_eq!(got, model[q as usize].pop_front());
        }
        for (q, m) in model.iter().enumerate() {
            prop_assert_eq!(broker.depth(queues[q]), m.len());
        }
    }
}
