//! Time-varying load: a piecewise-linear arrival-rate multiplier over
//! the sim clock.
//!
//! The paper's driver injects at a constant IR; real deployments see
//! diurnal curves and flash crowds. A [`Curve`] scales the configured
//! arrival rate as a function of sim time without touching the driver's
//! random stream: the exponential sampler still draws *flat-rate* gaps
//! in the same order, and the curve stretches or compresses each gap by
//! inverting the cumulative intensity function. A flat curve is
//! therefore byte-identical to the legacy constant-IR path — same RNG
//! draws, same gaps, same digests.

/// A piecewise-linear multiplier over sim-time seconds.
///
/// Between control points the multiplier interpolates linearly; before
/// the first and after the last point it clamps flat. The empty point
/// list is the constant curve (multiplier 1 everywhere).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Curve {
    points: Vec<(f64, f64)>,
}

/// Gap returned once the curve has decayed to zero forever: far beyond
/// any plausible run end, so the arrival simply never happens.
const NEVER_S: f64 = 1.0e9;

impl Curve {
    /// The constant curve: multiplier 1 everywhere.
    #[must_use]
    pub fn constant() -> Curve {
        Curve { points: Vec::new() }
    }

    /// Builds a curve from `(time_s, multiplier)` control points.
    ///
    /// # Errors
    ///
    /// Returns a message when a coordinate is non-finite, a time is
    /// negative or not strictly increasing, or a multiplier is negative.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Curve, String> {
        let mut prev = -1.0;
        for &(t, m) in &points {
            if !t.is_finite() || !m.is_finite() {
                return Err(format!("curve point ({t}, {m}) is not finite"));
            }
            if t < 0.0 {
                return Err(format!("curve time {t} is negative"));
            }
            if t <= prev {
                return Err(format!("curve times must be strictly increasing (at {t})"));
            }
            if m < 0.0 {
                return Err(format!("curve multiplier {m} is negative"));
            }
            prev = t;
        }
        Ok(Curve { points })
    }

    /// The control points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// `true` when the curve never deviates from multiplier 1 — the
    /// driver then skips the stretch entirely and stays byte-identical
    /// to the legacy constant-IR arrival stream.
    #[must_use]
    pub fn is_flat(&self) -> bool {
        self.points.iter().all(|&(_, m)| m == 1.0)
    }

    /// The multiplier at `t` seconds (clamped flat outside the points).
    #[must_use]
    pub fn multiplier_at(&self, t: f64) -> f64 {
        let (_, m0, _) = self.segment_after(t);
        m0
    }

    /// Distinct interior phase boundaries in `(0, end_s)`: one per
    /// control-point time, for per-phase counter reporting.
    #[must_use]
    pub fn phase_boundaries(&self, end_s: f64) -> Vec<f64> {
        self.points
            .iter()
            .map(|&(t, _)| t)
            .filter(|&t| t > 0.0 && t < end_s)
            .collect()
    }

    /// The segment containing `t`: its end time (`None` for the final
    /// clamped tail), the multiplier at `t`, and the multiplier at the
    /// segment end.
    fn segment_after(&self, t: f64) -> (Option<f64>, f64, f64) {
        let pts = &self.points;
        let Some(&(t_first, m_first)) = pts.first() else {
            return (None, 1.0, 1.0);
        };
        if t < t_first {
            return (Some(t_first), m_first, m_first);
        }
        for w in pts.windows(2) {
            let (ta, ma) = w[0];
            let (tb, mb) = w[1];
            if t < tb {
                let m_t = ma + (mb - ma) * (t - ta) / (tb - ta);
                return (Some(tb), m_t, mb);
            }
        }
        let (_, m_last) = pts[pts.len() - 1];
        (None, m_last, m_last)
    }

    /// Stretches one flat-rate interarrival gap to curve time.
    ///
    /// `flat_gap` is the gap the exponential sampler drew for the
    /// constant-rate process; the returned gap absorbs the same
    /// cumulative intensity under the curve starting at `from_s`. On
    /// the constant curve the result is exactly `flat_gap`; where the
    /// multiplier is high the gap compresses (arrivals bunch up), where
    /// it is low the gap dilates. A curve stuck at zero returns a gap
    /// past any plausible run end.
    #[must_use]
    pub fn stretch_gap(&self, from_s: f64, flat_gap: f64) -> f64 {
        if self.is_flat() {
            return flat_gap;
        }
        let mut area = flat_gap; // flat-equivalent seconds still to absorb
        let mut t = from_s;
        loop {
            let (end, m0, m1) = self.segment_after(t);
            let Some(te) = end else {
                // Constant tail.
                if m0 <= 0.0 {
                    return NEVER_S;
                }
                return (t - from_s) + area / m0;
            };
            let dt_seg = te - t;
            let seg_area = 0.5 * (m0 + m1) * dt_seg;
            if seg_area >= area {
                // The arrival lands inside this segment: solve
                // m0*dt + k*dt^2/2 = area for dt.
                let k = (m1 - m0) / dt_seg;
                let dt = if k.abs() < 1e-12 {
                    if m0 <= 0.0 {
                        dt_seg
                    } else {
                        area / m0
                    }
                } else {
                    let disc = (m0 * m0 + 2.0 * k * area).max(0.0);
                    (disc.sqrt() - m0) / k
                };
                return (t - from_s) + dt.min(dt_seg);
            }
            area -= seg_area;
            t = te;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_curve_is_flat_and_identity() {
        let c = Curve::constant();
        assert!(c.is_flat());
        assert_eq!(c.multiplier_at(123.0), 1.0);
        // Bitwise identity, not just approximate equality.
        assert_eq!(c.stretch_gap(10.0, 0.037_5), 0.037_5);
    }

    #[test]
    fn all_unity_points_are_flat_too() {
        let c = Curve::from_points(vec![(0.0, 1.0), (10.0, 1.0)]).expect("valid");
        assert!(c.is_flat());
        assert_eq!(c.stretch_gap(3.0, 0.5), 0.5);
    }

    #[test]
    fn rejects_malformed_point_lists() {
        assert!(Curve::from_points(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(Curve::from_points(vec![(5.0, 1.0), (3.0, 2.0)]).is_err());
        assert!(Curve::from_points(vec![(-1.0, 1.0)]).is_err());
        assert!(Curve::from_points(vec![(0.0, -0.5)]).is_err());
        assert!(Curve::from_points(vec![(0.0, f64::NAN)]).is_err());
    }

    #[test]
    fn multiplier_interpolates_and_clamps() {
        let c = Curve::from_points(vec![(10.0, 1.0), (20.0, 3.0)]).expect("valid");
        assert_eq!(c.multiplier_at(0.0), 1.0); // clamp before
        assert_eq!(c.multiplier_at(15.0), 2.0); // midpoint
        assert_eq!(c.multiplier_at(99.0), 3.0); // clamp after
    }

    #[test]
    fn double_rate_halves_the_gap() {
        let c = Curve::from_points(vec![(0.0, 2.0), (1000.0, 2.0)]).expect("valid");
        let g = c.stretch_gap(5.0, 1.0);
        assert!((g - 0.5).abs() < 1e-12, "gap {g}");
    }

    #[test]
    fn stretch_is_inverse_of_cumulative_intensity() {
        // Ramp 1 -> 4 over [0, 30]: integrate the multiplier over the
        // stretched gap and recover the flat gap.
        let c = Curve::from_points(vec![(0.0, 1.0), (30.0, 4.0)]).expect("valid");
        for (from, flat) in [(0.0, 2.0), (3.0, 0.7), (12.0, 5.0), (29.0, 4.0)] {
            let g = c.stretch_gap(from, flat);
            // Numeric integral of multiplier_at over [from, from+g].
            let steps = 200_000;
            let h = g / steps as f64;
            let mut area = 0.0;
            for s in 0..steps {
                let t = from + (s as f64 + 0.5) * h;
                area += c.multiplier_at(t) * h;
            }
            assert!(
                (area - flat).abs() < 1e-3,
                "from {from} flat {flat}: area {area}"
            );
        }
    }

    #[test]
    fn zero_tail_pushes_arrivals_past_the_run() {
        let c = Curve::from_points(vec![(0.0, 1.0), (10.0, 0.0)]).expect("valid");
        let g = c.stretch_gap(10.0, 1.0);
        assert!(g >= 1.0e9, "gap {g}");
    }

    #[test]
    fn phase_boundaries_are_interior_point_times() {
        let c = Curve::from_points(vec![(0.0, 1.0), (12.0, 6.0), (18.0, 6.0), (40.0, 1.0)])
            .expect("valid");
        assert_eq!(c.phase_boundaries(30.0), vec![12.0, 18.0]);
        assert_eq!(Curve::constant().phase_boundaries(30.0), Vec::<f64>::new());
    }
}
