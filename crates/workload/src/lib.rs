//! A SPECjAppServer2004-like benchmark workload: the driver, business
//! domains, request mix, and metrics of the ISPASS 2007 characterization
//! study — rebuilt as an open model (the original benchmark kit is
//! proprietary; see DESIGN.md for the substitution argument).
//!
//! * [`Schema`] creates the dealer/manufacturing/supplier tables, sized by
//!   injection rate per the benchmark's scaling rules.
//! * [`Driver`] injects Purchase/Manage/Browse (web) and CreateVehicle
//!   (RMI) requests as an open Poisson process at a constant IR.
//! * [`build_plan`] compiles each request into a [`jas_appserver::TxPlan`]
//!   through the container fragments; purchases enqueue JMS work orders
//!   that drive the manufacturing domain asynchronously.
//! * [`Metrics`] tracks per-kind throughput (Figure 2), JOPS (~1.6 x IR on
//!   a tuned system), and the 90%-under-2s/5s pass criteria.
//! * [`Scenario`] abstracts the benchmark application so the same SUT can
//!   run the dealer workload ([`JasScenario`]) or the Trade6-like brokerage
//!   ([`TradeScenario`]) the paper cross-checks GC overhead on.
//!
//! # Example
//!
//! ```
//! use jas_workload::{Driver, DriverConfig, RequestKind};
//!
//! let mut driver = Driver::new(DriverConfig::at_ir(40));
//! let (gap, kind) = driver.next_arrival();
//! assert!(gap.as_secs_f64() >= 0.0);
//! assert_ne!(kind, RequestKind::WorkOrder); // work orders arrive via JMS
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod domain;
mod driver;
mod metrics;
pub mod replay;
mod requests;
mod scenario;

pub use curve::Curve;
pub use domain::{InitialRows, Schema};
pub use driver::{Driver, DriverConfig};
pub use metrics::{Metrics, Verdict};
pub use replay::{ReplayLog, ReplayScenario};
pub use requests::{
    build_plan, catalog_popularity, injection_mix, RequestKind, PATH_LENGTH_MULTIPLIER,
};
pub use scenario::{JasScenario, Scenario, TradeScenario, TradeSchema};
