//! Workload scenarios: pluggable benchmark applications over the same
//! J2EE substrate.
//!
//! The paper's GC result is cross-checked against *Trade6*, "another J2EE
//! workload" (Section 6). [`Scenario`] abstracts what the execution engine
//! needs from a benchmark — an arrival process and a plan compiler — so the
//! same simulated system can run either the jAppServer-like dealer workload
//! ([`JasScenario`]) or a Trade-like online brokerage ([`TradeScenario`]).
//!
//! Scenarios reuse the five structural request slots of [`RequestKind`]
//! (three web classes, one RMI class, one JMS-driven class); each scenario
//! supplies its own business labels via [`Scenario::label`].

use crate::curve::Curve;
use crate::domain::Schema;
use crate::driver::{Driver, DriverConfig};
use crate::requests::{build_plan, catalog_popularity, RequestKind, PATH_LENGTH_MULTIPLIER};
use jas_appserver::{containers, PlanStep, QueueId, TxPlan};
use jas_db::{Database, TableId};
use jas_simkernel::dist::Zipf;
use jas_simkernel::{Rng, SimDuration};

/// A benchmark application the engine can run.
pub trait Scenario {
    /// Scenario name for reports.
    fn name(&self) -> &'static str;

    /// Draws the next external arrival: gap until it occurs, and its kind.
    fn next_arrival(&mut self) -> (SimDuration, RequestKind);

    /// Compiles the plan for one request of `kind`.
    fn build(&mut self, kind: RequestKind, work_order_queue: QueueId) -> TxPlan;

    /// Business label of a request slot under this scenario.
    fn label(&self, kind: RequestKind) -> &'static str;

    /// Stable tag identifying the scenario type inside a checkpoint
    /// stream, so a restore into the wrong scenario fails loudly.
    fn kind_tag(&self) -> u64;

    /// Persists the scenario's mutable state (RNG cursors and key
    /// counters) for checkpoint/restore. Config-derived members (schema,
    /// popularity tables, arrival distributions) are reconstructed from
    /// configuration and not serialized.
    fn persist_state(&mut self, io: &mut dyn jas_simkernel::StateIo);
}

/// The SPECjAppServer2004-like dealer/manufacturing workload (the paper's).
pub struct JasScenario {
    schema: Schema,
    driver: Driver,
    zipf: Zipf,
    rng: Rng,
    fresh_key: u64,
}

impl JasScenario {
    /// Creates the scenario, populating `db` for injection rate `ir`.
    #[must_use]
    pub fn new(db: &mut Database, ir: u32, seed: u64) -> Self {
        JasScenario::with_curve(db, ir, seed, Curve::constant())
    }

    /// Creates the scenario with a time-varying arrival-rate curve. A
    /// flat curve is byte-identical to [`JasScenario::new`].
    #[must_use]
    pub fn with_curve(db: &mut Database, ir: u32, seed: u64, curve: Curve) -> Self {
        JasScenario {
            schema: Schema::create(db, ir),
            driver: Driver::with_curve(DriverConfig::at_ir(ir), curve),
            zipf: catalog_popularity(),
            rng: Rng::new(seed ^ 0x4A53),
            fresh_key: 0,
        }
    }

    /// The populated schema (for inspection).
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

impl Scenario for JasScenario {
    fn name(&self) -> &'static str {
        "jAppServer2004-like"
    }

    fn next_arrival(&mut self) -> (SimDuration, RequestKind) {
        self.driver.next_arrival()
    }

    fn build(&mut self, kind: RequestKind, work_order_queue: QueueId) -> TxPlan {
        build_plan(
            kind,
            &self.schema,
            work_order_queue,
            &mut self.rng,
            &self.zipf,
            &mut self.fresh_key,
        )
    }

    fn label(&self, kind: RequestKind) -> &'static str {
        kind.name()
    }

    fn kind_tag(&self) -> u64 {
        1
    }

    fn persist_state(&mut self, io: &mut dyn jas_simkernel::StateIo) {
        use jas_simkernel::Persist as _;
        self.driver.persist(io);
        self.rng.persist(io);
        self.fresh_key.persist(io);
    }
}

/// Table handles of the Trade-like brokerage schema.
#[derive(Clone, Copy, Debug)]
pub struct TradeSchema {
    /// Customer accounts.
    pub accounts: TableId,
    /// Security quotes.
    pub quotes: TableId,
    /// Per-account holdings.
    pub holdings: TableId,
    /// Open orders.
    pub orders: TableId,
    /// Completed trades (settlement history).
    pub trades: TableId,
    /// Preloaded rows (accounts, quotes, holdings, orders, trades).
    pub rows: [u64; 5],
}

impl TradeSchema {
    /// Creates and populates the brokerage schema for injection rate `ir`.
    pub fn create(db: &mut Database, ir: u32) -> Self {
        let ir = u64::from(ir);
        let rows = [ir * 500, 4_000, ir * 1_000, ir * 200, ir * 400];
        let accounts = db.create_table("accounts", 384);
        let quotes = db.create_table("quotes", 192);
        let holdings = db.create_table("holdings", 256);
        let orders = db.create_table("orders", 256);
        let trades = db.create_table("trades", 192);
        for (t, n) in [accounts, quotes, holdings, orders, trades]
            .iter()
            .zip(rows)
        {
            db.bulk_load(*t, 0, n);
        }
        TradeSchema {
            accounts,
            quotes,
            holdings,
            orders,
            trades,
            rows,
        }
    }
}

/// A Trade6-like online brokerage: quotes and portfolio views dominate,
/// buys/sells write orders and holdings, settlement arrives over JMS.
pub struct TradeScenario {
    schema: TradeSchema,
    driver: Driver,
    zipf: Zipf,
    rng: Rng,
    fresh_key: u64,
}

impl TradeScenario {
    /// Creates the scenario, populating `db` for injection rate `ir`.
    #[must_use]
    pub fn new(db: &mut Database, ir: u32, seed: u64) -> Self {
        TradeScenario::with_curve(db, ir, seed, Curve::constant())
    }

    /// Creates the scenario with a time-varying arrival-rate curve. A
    /// flat curve is byte-identical to [`TradeScenario::new`].
    #[must_use]
    pub fn with_curve(db: &mut Database, ir: u32, seed: u64, curve: Curve) -> Self {
        TradeScenario {
            schema: TradeSchema::create(db, ir),
            driver: Driver::with_curve(DriverConfig::at_ir(ir), curve),
            zipf: catalog_popularity(),
            rng: Rng::new(seed ^ 0x5452_4144),
            fresh_key: 0,
        }
    }

    /// The populated schema (for inspection).
    #[must_use]
    pub fn schema(&self) -> &TradeSchema {
        &self.schema
    }

    fn pick(&mut self, n: u64) -> u64 {
        if self.rng.chance(0.7) {
            (self.zipf.sample(&mut self.rng) as u64 * 41) % n.max(1)
        } else {
            self.rng.next_below(n.max(1))
        }
    }
}

impl Scenario for TradeScenario {
    fn name(&self) -> &'static str {
        "Trade6-like brokerage"
    }

    fn next_arrival(&mut self) -> (SimDuration, RequestKind) {
        self.driver.next_arrival()
    }

    fn build(&mut self, kind: RequestKind, work_order_queue: QueueId) -> TxPlan {
        let s = self.schema;
        let mut plan = TxPlan::new();
        match kind {
            // Buy: quote lookup, order + holding writes, async settlement.
            RequestKind::Purchase => {
                plan.extend(containers::http_frontend(700));
                plan.extend(containers::servlet_dispatch(4_000));
                plan.extend(containers::session_bean_call(20_000.0));
                let account = self.pick(s.rows[0]);
                plan.extend(containers::entity_find(s.accounts, account));
                let quote = self.pick(s.rows[1]);
                plan.extend(containers::entity_find(s.quotes, quote));
                self.fresh_key += 1;
                plan.extend(containers::entity_create(
                    s.orders,
                    s.rows[3] + self.fresh_key,
                ));
                plan.extend(containers::entity_update(s.holdings, self.pick(s.rows[2])));
                plan.extend(containers::jms_send(work_order_queue, 400));
                plan.extend(containers::jta_commit(2));
            }
            // Sell: holding lookup, order write, async settlement.
            RequestKind::Manage => {
                plan.extend(containers::http_frontend(650));
                plan.extend(containers::servlet_dispatch(3_800));
                plan.extend(containers::session_bean_call(18_000.0));
                let holding = self.pick(s.rows[2]);
                plan.extend(containers::entity_find(s.holdings, holding));
                self.fresh_key += 1;
                plan.extend(containers::entity_create(
                    s.orders,
                    s.rows[3] + self.fresh_key,
                ));
                plan.extend(containers::entity_update(s.quotes, self.pick(s.rows[1])));
                plan.extend(containers::jms_send(work_order_queue, 400));
                plan.extend(containers::jta_commit(2));
            }
            // Quotes / portfolio view: read-only scans.
            RequestKind::Browse => {
                plan.extend(containers::http_frontend(500));
                plan.extend(containers::servlet_dispatch(7_000));
                plan.extend(containers::session_bean_call(10_000.0));
                for _ in 0..2 {
                    let lo = self.pick(s.rows[1].saturating_sub(16).max(1));
                    plan.extend(containers::entity_find_range(s.quotes, lo, lo + 8));
                }
                let lo = self.pick(s.rows[2].saturating_sub(24).max(1));
                plan.extend(containers::entity_find_range(s.holdings, lo, lo + 15));
                plan.extend(containers::jta_commit(1));
            }
            // Account-profile update over RMI.
            RequestKind::CreateVehicle => {
                plan.extend(containers::rmi_call(1_600));
                plan.extend(containers::session_bean_call(16_000.0));
                let account = self.pick(s.rows[0]);
                plan.extend(containers::entity_find(s.accounts, account));
                plan.extend(containers::entity_update(s.accounts, self.pick(s.rows[0])));
                plan.extend(containers::jta_commit(1));
            }
            // Settlement consumed from JMS: record the trade.
            RequestKind::WorkOrder => {
                plan.extend(containers::jms_receive(work_order_queue));
                plan.extend(containers::session_bean_call(14_000.0));
                self.fresh_key += 1;
                plan.extend(containers::entity_create(
                    s.trades,
                    s.rows[4] + self.fresh_key,
                ));
                plan.extend(containers::entity_update(s.holdings, self.pick(s.rows[2])));
                plan.extend(containers::jta_commit(2));
            }
        }
        for step in &mut plan.steps {
            if let PlanStep::Compute { instructions, .. } = step {
                *instructions *= PATH_LENGTH_MULTIPLIER;
            }
        }
        plan
    }

    fn label(&self, kind: RequestKind) -> &'static str {
        match kind {
            RequestKind::Purchase => "Buy",
            RequestKind::Manage => "Sell",
            RequestKind::Browse => "Quote/Portfolio",
            RequestKind::CreateVehicle => "UpdateProfile",
            RequestKind::WorkOrder => "Settlement",
        }
    }

    fn kind_tag(&self) -> u64 {
        2
    }

    fn persist_state(&mut self, io: &mut dyn jas_simkernel::StateIo) {
        use jas_simkernel::Persist as _;
        self.driver.persist(io);
        self.rng.persist(io);
        self.fresh_key.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jas_db::DbConfig;

    fn db() -> Database {
        Database::new(DbConfig::default())
    }

    #[test]
    fn jas_scenario_builds_all_kinds() {
        let mut database = db();
        let mut s = JasScenario::new(&mut database, 5, 1);
        for kind in RequestKind::ALL {
            let plan = s.build(kind, QueueId(0));
            assert!(!plan.steps.is_empty(), "{kind:?}");
        }
        assert_eq!(s.label(RequestKind::Purchase), "Purchase");
        assert_eq!(s.name(), "jAppServer2004-like");
    }

    #[test]
    fn trade_scenario_builds_all_kinds() {
        let mut database = db();
        let mut s = TradeScenario::new(&mut database, 5, 1);
        for kind in RequestKind::ALL {
            let plan = s.build(kind, QueueId(0));
            assert!(!plan.steps.is_empty(), "{kind:?}");
            assert!(plan.compute_instructions() > 1e6, "{kind:?} too cheap");
        }
        assert_eq!(s.label(RequestKind::Purchase), "Buy");
        assert_eq!(s.label(RequestKind::WorkOrder), "Settlement");
    }

    #[test]
    fn trade_schema_scales_with_ir() {
        let mut d1 = db();
        let mut d2 = db();
        let a = TradeScenario::new(&mut d1, 10, 1);
        let b = TradeScenario::new(&mut d2, 40, 1);
        assert_eq!(b.schema().rows[0], a.schema().rows[0] * 4);
        assert_eq!(
            a.schema().rows[1],
            b.schema().rows[1],
            "quote list does not scale"
        );
    }

    #[test]
    fn trade_browse_is_read_only() {
        let mut database = db();
        let mut s = TradeScenario::new(&mut database, 5, 2);
        let plan = s.build(RequestKind::Browse, QueueId(0));
        for step in &plan.steps {
            if let PlanStep::Db { query } = step {
                assert!(
                    matches!(
                        query,
                        jas_db::Query::SelectByKey { .. } | jas_db::Query::RangeScan { .. }
                    ),
                    "browse wrote: {query:?}"
                );
            }
        }
    }

    #[test]
    fn buy_and_sell_settle_over_jms() {
        let mut database = db();
        let mut s = TradeScenario::new(&mut database, 5, 3);
        for kind in [RequestKind::Purchase, RequestKind::Manage] {
            let plan = s.build(kind, QueueId(7));
            assert!(
                plan.steps
                    .iter()
                    .any(|st| matches!(st, PlanStep::MqSend { queue, .. } if queue.0 == 7)),
                "{kind:?} must enqueue settlement"
            );
        }
    }

    #[test]
    fn arrivals_never_inject_the_jms_slot() {
        let mut database = db();
        let mut s = TradeScenario::new(&mut database, 5, 4);
        for _ in 0..2_000 {
            assert_ne!(s.next_arrival().1, RequestKind::WorkOrder);
        }
    }
}
