//! The benchmark's business domains and database schema.
//!
//! SPECjAppServer2004 models an automobile manufacturer: *dealers* browse
//! and purchase vehicles (web), large fleet buyers use RMI, and purchases
//! drive the *manufacturing* domain (work orders over JMS) and *supplier*
//! domain (parts procurement). The initial database size scales with the
//! injection rate, as required by the benchmark's run rules (paper
//! Section 2: "busier servers tend to have larger data sets").

use jas_db::{Database, TableId};

/// Table handles for the benchmark schema.
#[derive(Clone, Copy, Debug)]
pub struct Schema {
    /// Registered customers (dealers and fleet buyers).
    pub customers: TableId,
    /// Vehicle catalogue + inventory.
    pub vehicles: TableId,
    /// Customer orders.
    pub orders: TableId,
    /// Order line items.
    pub order_lines: TableId,
    /// Manufacturing work orders.
    pub work_orders: TableId,
    /// Parts catalogue (bill of materials).
    pub parts: TableId,
    /// Supplier purchase orders.
    pub purchase_orders: TableId,
    /// Rows preloaded per table, for key-space sizing.
    pub initial_rows: InitialRows,
}

/// Initial row counts (scaled by injection rate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InitialRows {
    /// Customers.
    pub customers: u64,
    /// Vehicles.
    pub vehicles: u64,
    /// Orders.
    pub orders: u64,
    /// Order lines.
    pub order_lines: u64,
    /// Work orders.
    pub work_orders: u64,
    /// Parts.
    pub parts: u64,
    /// Purchase orders.
    pub purchase_orders: u64,
}

impl InitialRows {
    /// The benchmark's scaling rule: row counts proportional to the
    /// injection rate (constants follow the spirit of the official scaling
    /// table).
    #[must_use]
    pub fn for_injection_rate(ir: u32) -> Self {
        let ir = u64::from(ir);
        InitialRows {
            customers: ir * 750,
            vehicles: ir * 100,
            orders: ir * 375,
            order_lines: ir * 1_875,
            work_orders: ir * 150,
            parts: 10_000, // catalogue size is IR-independent
            purchase_orders: ir * 100,
        }
    }

    /// Total preloaded rows.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.customers
            + self.vehicles
            + self.orders
            + self.order_lines
            + self.work_orders
            + self.parts
            + self.purchase_orders
    }
}

impl Schema {
    /// Creates and populates the schema for the given injection rate.
    pub fn create(db: &mut Database, ir: u32) -> Schema {
        let initial_rows = InitialRows::for_injection_rate(ir);
        let customers = db.create_table("customers", 512);
        let vehicles = db.create_table("vehicles", 384);
        let orders = db.create_table("orders", 256);
        let order_lines = db.create_table("order_lines", 128);
        let work_orders = db.create_table("work_orders", 256);
        let parts = db.create_table("parts", 192);
        let purchase_orders = db.create_table("purchase_orders", 256);
        db.bulk_load(customers, 0, initial_rows.customers);
        db.bulk_load(vehicles, 0, initial_rows.vehicles);
        db.bulk_load(orders, 0, initial_rows.orders);
        db.bulk_load(order_lines, 0, initial_rows.order_lines);
        db.bulk_load(work_orders, 0, initial_rows.work_orders);
        db.bulk_load(parts, 0, initial_rows.parts);
        db.bulk_load(purchase_orders, 0, initial_rows.purchase_orders);
        Schema {
            customers,
            vehicles,
            orders,
            order_lines,
            work_orders,
            parts,
            purchase_orders,
            initial_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jas_db::DbConfig;

    #[test]
    fn rows_scale_with_ir() {
        let a = InitialRows::for_injection_rate(10);
        let b = InitialRows::for_injection_rate(40);
        assert_eq!(b.customers, a.customers * 4);
        assert_eq!(b.order_lines, a.order_lines * 4);
        assert_eq!(a.parts, b.parts, "catalogue does not scale");
        assert!(b.total() > a.total());
    }

    #[test]
    fn create_populates_all_tables() {
        let mut db = Database::new(DbConfig::default());
        let s = Schema::create(&mut db, 5);
        assert_eq!(db.row_count(s.customers), 5 * 750);
        assert_eq!(db.row_count(s.vehicles), 500);
        assert_eq!(db.row_count(s.parts), 10_000);
        assert_eq!(db.row_count(s.order_lines), 5 * 1875);
    }
}
