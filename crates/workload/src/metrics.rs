//! Benchmark metrics: throughput per request type (Figure 2), JOPS, and the
//! response-time pass criteria.
//!
//! The benchmark passes only if 90% of web requests complete within 2
//! seconds and 90% of RMI requests within 5 seconds (paper Section 2).
//! JOPS counts completed operations per second — roughly 1.6 per IR on a
//! tuned system.

use crate::requests::RequestKind;
use jas_simkernel::{SimDuration, SimTime};
use jas_stats::Percentiles;

/// Verdict of a run against the response-time rules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// 90th-percentile web response time.
    pub web_p90: f64,
    /// 90th-percentile RMI response time.
    pub rmi_p90: f64,
    /// Retries observed in the steady window.
    pub retries: u64,
    /// Requests that failed permanently in the steady window.
    pub errors: u64,
    /// Failed fraction of steady-window outcomes (completions + errors).
    pub error_rate: f64,
    /// `true` when the run leaned on its resilience machinery (any retry
    /// or error): the verdict was earned in degraded mode.
    pub degraded: bool,
    /// Whether both response-time limits and the error budget were met.
    pub passed: bool,
}

/// Collects completions and response times.
#[derive(Clone, Debug)]
pub struct Metrics {
    interval: SimDuration,
    // Per kind: completion counts per interval bin.
    bins: Vec<Vec<u64>>,
    totals: [u64; RequestKind::ALL.len()],
    web_times: Vec<f64>,
    rmi_times: Vec<f64>,
    steady_start: SimTime,
    steady_end: SimTime,
    timeouts: u64,
    retries: u64,
    errors: u64,
}

impl Metrics {
    /// Web response-time limit (seconds).
    pub const WEB_LIMIT: f64 = 2.0;
    /// RMI response-time limit (seconds).
    pub const RMI_LIMIT: f64 = 5.0;
    /// Highest failed fraction of requests the verdict tolerates.
    pub const ERROR_LIMIT: f64 = 0.01;

    /// Creates a collector binning throughput every `interval`, counting
    /// only completions within `[steady_start, steady_end)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero or the window is empty.
    #[must_use]
    pub fn new(interval: SimDuration, steady_start: SimTime, steady_end: SimTime) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        assert!(steady_end > steady_start, "empty steady-state window");
        let window = steady_end.saturating_since(steady_start);
        let nbins = (window.as_nanos() / interval.as_nanos()) as usize + 1;
        Metrics {
            interval,
            bins: vec![vec![0; nbins]; RequestKind::ALL.len()],
            totals: [0; RequestKind::ALL.len()],
            web_times: Vec::new(),
            rmi_times: Vec::new(),
            steady_start,
            steady_end,
            timeouts: 0,
            retries: 0,
            errors: 0,
        }
    }

    fn kind_index(kind: RequestKind) -> usize {
        RequestKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in ALL")
    }

    /// Records a completed request.
    pub fn record(&mut self, kind: RequestKind, issued: SimTime, completed: SimTime) {
        if completed < self.steady_start || completed >= self.steady_end {
            return;
        }
        let k = Self::kind_index(kind);
        self.totals[k] += 1;
        let bin = (completed.saturating_since(self.steady_start).as_nanos()
            / self.interval.as_nanos()) as usize;
        let last = self.bins[k].len() - 1;
        self.bins[k][bin.min(last)] += 1;
        let rt = completed.saturating_since(issued).as_secs_f64();
        if kind.is_web() {
            self.web_times.push(rt);
            if rt > Self::WEB_LIMIT {
                self.timeouts += 1;
            }
        } else if kind.is_rmi() {
            self.rmi_times.push(rt);
            if rt > Self::RMI_LIMIT {
                self.timeouts += 1;
            }
        }
    }

    /// Records one retry at `at` (steady window only, like completions).
    pub fn record_retry(&mut self, at: SimTime) {
        if at >= self.steady_start && at < self.steady_end {
            self.retries += 1;
        }
    }

    /// Records one permanently failed request at `at` (steady window
    /// only).
    pub fn record_error(&mut self, at: SimTime) {
        if at >= self.steady_start && at < self.steady_end {
            self.errors += 1;
        }
    }

    /// Retries observed in the steady window.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Permanently failed requests in the steady window.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Completions per second of `kind`, one value per interval bin
    /// (Figure 2's series).
    #[must_use]
    pub fn throughput_series(&self, kind: RequestKind) -> Vec<f64> {
        let secs = self.interval.as_secs_f64();
        self.bins[Self::kind_index(kind)]
            .iter()
            .map(|&c| c as f64 / secs)
            .collect()
    }

    /// Total completions of `kind` in the steady window.
    #[must_use]
    pub fn completed(&self, kind: RequestKind) -> u64 {
        self.totals[Self::kind_index(kind)]
    }

    /// Operations per second: all completed operations over the steady
    /// window (the benchmark's JOPS metric).
    #[must_use]
    pub fn jops(&self) -> f64 {
        let window = self
            .steady_end
            .saturating_since(self.steady_start)
            .as_secs_f64();
        self.totals.iter().sum::<u64>() as f64 / window
    }

    /// Evaluates the pass criteria.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        let p90 = |xs: &[f64]| -> f64 {
            Percentiles::from_iter(xs.iter().copied())
                .quantile(0.9)
                .unwrap_or(0.0)
        };
        let web_p90 = p90(&self.web_times);
        let rmi_p90 = p90(&self.rmi_times);
        let outcomes = self.totals.iter().sum::<u64>() + self.errors;
        let error_rate = if outcomes == 0 {
            0.0
        } else {
            self.errors as f64 / outcomes as f64
        };
        Verdict {
            web_p90,
            rmi_p90,
            retries: self.retries,
            errors: self.errors,
            error_rate,
            degraded: self.retries > 0 || self.errors > 0,
            passed: web_p90 <= Self::WEB_LIMIT
                && rmi_p90 <= Self::RMI_LIMIT
                && error_rate <= Self::ERROR_LIMIT,
        }
    }

    /// Requests that individually exceeded their limit.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Fraction of recorded steady-window response times (web and RMI
    /// pooled) above `limit_s` — the per-request SLO-miss rate a
    /// scenario's verdict line reports. Counting, not sorting, so the
    /// value is merge-order invariant.
    #[must_use]
    pub fn slo_miss_fraction(&self, limit_s: f64) -> f64 {
        let total = self.web_times.len() + self.rmi_times.len();
        if total == 0 {
            return 0.0;
        }
        let over = self
            .web_times
            .iter()
            .chain(&self.rmi_times)
            .filter(|&&rt| rt > limit_s)
            .count();
        over as f64 / total as f64
    }

    /// Folds another collector into this one: bin-wise completion sums,
    /// concatenated response-time samples, summed resilience counters.
    /// The fleet verdict over N nodes is `merge` of the per-node
    /// collectors followed by [`Metrics::verdict`].
    ///
    /// # Panics
    ///
    /// Panics if the collectors were built over different intervals or
    /// steady windows (their bins would not line up).
    pub fn merge(&mut self, other: &Metrics) {
        assert_eq!(self.interval, other.interval, "mismatched bin intervals");
        assert_eq!(
            (self.steady_start, self.steady_end),
            (other.steady_start, other.steady_end),
            "mismatched steady windows"
        );
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
        for (m, t) in self.totals.iter_mut().zip(&other.totals) {
            *m += t;
        }
        self.web_times.extend_from_slice(&other.web_times);
        self.rmi_times.extend_from_slice(&other.rmi_times);
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.errors += other.errors;
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for Metrics {
    // Interval and steady window come from the run plan; the bin matrix
    // is sized at construction, so it persists in place.
    // jas-lint: allow(D009, reason = "interval and the steady window come from the run plan; bins are sized at construction")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.bins);
        self.totals.persist(io);
        snap::persist_vec(io, &mut self.web_times);
        snap::persist_vec(io, &mut self.rmi_times);
        self.timeouts.persist(io);
        self.retries.persist(io);
        self.errors.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Metrics {
        Metrics::new(
            SimDuration::from_secs(10),
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )
    }

    #[test]
    fn completions_outside_window_ignored() {
        let mut m = metrics();
        m.record(
            RequestKind::Browse,
            SimTime::from_secs(50),
            SimTime::from_secs(51),
        );
        m.record(
            RequestKind::Browse,
            SimTime::from_secs(250),
            SimTime::from_secs(251),
        );
        assert_eq!(m.completed(RequestKind::Browse), 0);
    }

    #[test]
    fn throughput_series_bins_by_interval() {
        let mut m = metrics();
        // Two completions in the first bin, one in the second.
        m.record(
            RequestKind::Purchase,
            SimTime::from_secs(100),
            SimTime::from_secs(101),
        );
        m.record(
            RequestKind::Purchase,
            SimTime::from_secs(100),
            SimTime::from_secs(105),
        );
        m.record(
            RequestKind::Purchase,
            SimTime::from_secs(110),
            SimTime::from_secs(112),
        );
        let s = m.throughput_series(RequestKind::Purchase);
        assert!((s[0] - 0.2).abs() < 1e-9);
        assert!((s[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn verdict_passes_fast_responses() {
        let mut m = metrics();
        for i in 0..100u64 {
            let t = SimTime::from_secs(100) + SimDuration::from_millis(i * 500);
            m.record(RequestKind::Browse, t, t + SimDuration::from_millis(300));
        }
        let v = m.verdict();
        assert!(v.passed);
        assert!((v.web_p90 - 0.3).abs() < 1e-6);
        assert_eq!(m.timeouts(), 0);
    }

    #[test]
    fn verdict_fails_when_p90_exceeds_limit() {
        let mut m = metrics();
        for i in 0..100u64 {
            let t = SimTime::from_secs(100) + SimDuration::from_millis(i * 100);
            // 20% of requests take 3 seconds: p90 > 2 s.
            let rt = if i % 5 == 0 {
                SimDuration::from_secs(3)
            } else {
                SimDuration::from_millis(200)
            };
            m.record(RequestKind::Manage, t, t + rt);
        }
        let v = m.verdict();
        assert!(!v.passed);
        assert!(v.web_p90 > 2.0);
        assert_eq!(m.timeouts(), 20);
    }

    #[test]
    fn rmi_has_looser_limit() {
        let mut m = metrics();
        for i in 0..50u64 {
            let t = SimTime::from_secs(100) + SimDuration::from_millis(i * 100);
            m.record(RequestKind::CreateVehicle, t, t + SimDuration::from_secs(4));
        }
        let v = m.verdict();
        assert!(v.passed, "4s RMI responses are within the 5s limit");
        assert!((v.rmi_p90 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn healthy_runs_are_not_degraded() {
        let mut m = metrics();
        let t = SimTime::from_secs(150);
        m.record(RequestKind::Browse, t, t + SimDuration::from_millis(10));
        let v = m.verdict();
        assert!(!v.degraded);
        assert_eq!((v.retries, v.errors), (0, 0));
        assert_eq!(v.error_rate, 0.0);
        assert!(v.passed);
    }

    #[test]
    fn errors_gate_the_verdict_and_mark_degradation() {
        let mut m = metrics();
        let t = SimTime::from_secs(150);
        for _ in 0..96 {
            m.record(RequestKind::Browse, t, t + SimDuration::from_millis(10));
        }
        m.record_retry(t);
        m.record_error(t); // 1 error / 97 outcomes > 1%
                           // Outside the window: ignored, like completions.
        m.record_retry(SimTime::from_secs(10));
        m.record_error(SimTime::from_secs(10));
        let v = m.verdict();
        assert_eq!((v.retries, v.errors), (1, 1));
        assert!(v.degraded);
        assert!(v.error_rate > Metrics::ERROR_LIMIT);
        assert!(!v.passed, "response times fine, error budget blown");
    }

    #[test]
    fn retries_alone_degrade_but_do_not_fail() {
        let mut m = metrics();
        let t = SimTime::from_secs(150);
        for _ in 0..100 {
            m.record(RequestKind::Browse, t, t + SimDuration::from_millis(10));
        }
        m.record_retry(t);
        let v = m.verdict();
        assert!(v.degraded);
        assert!(v.passed, "retried-but-recovered work still passes");
    }

    #[test]
    fn merge_sums_bins_counters_and_samples() {
        let mut a = metrics();
        let mut b = metrics();
        let t = SimTime::from_secs(150);
        a.record(RequestKind::Browse, t, t + SimDuration::from_millis(100));
        b.record(RequestKind::Browse, t, t + SimDuration::from_millis(300));
        b.record(RequestKind::CreateVehicle, t, t + SimDuration::from_secs(1));
        b.record_retry(t);
        b.record_error(t);
        a.merge(&b);
        assert_eq!(a.completed(RequestKind::Browse), 2);
        assert_eq!(a.completed(RequestKind::CreateVehicle), 1);
        assert_eq!((a.retries(), a.errors()), (1, 1));
        // Both Browse completions land in the same bin.
        let bin5 = a.throughput_series(RequestKind::Browse)[5];
        assert!((bin5 - 0.2).abs() < 1e-9, "got {bin5}");
        let v = a.verdict();
        assert!(v.web_p90 > 0.0 && v.rmi_p90 > 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn merge_rejects_mismatched_windows() {
        let mut a = metrics();
        let b = Metrics::new(
            SimDuration::from_secs(10),
            SimTime::from_secs(0),
            SimTime::from_secs(100),
        );
        a.merge(&b);
    }

    #[test]
    fn jops_counts_all_kinds() {
        let mut m = metrics();
        for kind in RequestKind::ALL {
            let t = SimTime::from_secs(150);
            m.record(kind, t, t + SimDuration::from_millis(10));
        }
        // 5 completions over a 100-second window.
        assert!((m.jops() - 0.05).abs() < 1e-9);
    }
}
