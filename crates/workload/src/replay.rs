//! Trace-driven replay: re-execute a recorded request stream without the
//! load generator.
//!
//! During a recorded run the engine logs every arrival it draws from the
//! scenario (inter-arrival gap + request kind) and every transaction plan
//! it compiles (in build order, including JMS-driven work orders). The
//! resulting [`ReplayLog`] is a complete substitute for the generator:
//! [`ReplayScenario`] plays the log back through the same engine, so the
//! appserver/db/jvm tiers see byte-for-byte the same inputs and produce
//! the same per-request verdicts and trace digest.
//!
//! This is the record/replay half of the record-reduce-replay pattern
//! (cf. Wasm-R3): a replay log plus a checkpoint is a self-contained,
//! re-runnable witness of whatever the original run did.

use crate::requests::RequestKind;
use jas_appserver::{QueueId, TxPlan};
use jas_simkernel::snapshot::{self as snap, Persist, Saver, StateIo};
use jas_simkernel::{Loader, SimDuration};
use std::collections::VecDeque;

use crate::scenario::Scenario;

/// A recorded request stream: every arrival the generator produced and
/// every plan the containers compiled, in engine order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayLog {
    /// Arrivals in draw order: inter-arrival gap and request kind.
    pub arrivals: Vec<(SimDuration, RequestKind)>,
    /// Compiled plans in build order (external requests and JMS work
    /// orders interleaved exactly as the engine requested them).
    pub plans: Vec<(RequestKind, TxPlan)>,
}

/// Magic word opening a serialized replay log (`"JASRPLY1"`).
const REPLAY_MAGIC: u64 = 0x4A41_5352_504C_5931;

impl ReplayLog {
    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty() && self.plans.is_empty()
    }

    /// Serializes the log to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut saver = Saver::new();
        let mut magic = REPLAY_MAGIC;
        saver.word(&mut magic);
        let mut clone = self.clone();
        clone.persist(&mut saver);
        saver.into_bytes()
    }

    /// Deserializes a log produced by [`ReplayLog::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on a bad magic word or a truncated/oversized stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut loader = Loader::new(bytes);
        let mut magic = 0u64;
        loader.word(&mut magic);
        if magic != REPLAY_MAGIC {
            return Err(format!(
                "not a replay log: magic {magic:#018x} != {REPLAY_MAGIC:#018x}"
            ));
        }
        let mut log = ReplayLog::default();
        log.persist(&mut loader);
        loader.finish()?;
        Ok(log)
    }
}

impl Persist for ReplayLog {
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_vec(io, &mut self.arrivals);
        snap::persist_vec(io, &mut self.plans);
    }
}

/// Inter-arrival gap returned once a replay log is exhausted: far past
/// any practical run end, so the engine admits nothing further.
const NEVER: SimDuration = SimDuration::from_secs(100 * 365 * 24 * 3600);

/// A [`Scenario`] that replays a [`ReplayLog`] instead of generating load.
///
/// Arrivals and plans are popped in recorded order; the engine's
/// deterministic execution guarantees build calls arrive in the same
/// order they were recorded, which [`ReplayScenario::build`] asserts.
pub struct ReplayScenario {
    arrivals: VecDeque<(SimDuration, RequestKind)>,
    plans: VecDeque<(RequestKind, TxPlan)>,
}

impl ReplayScenario {
    /// Creates a scenario replaying `log`.
    #[must_use]
    pub fn new(log: ReplayLog) -> Self {
        ReplayScenario {
            arrivals: log.arrivals.into(),
            plans: log.plans.into(),
        }
    }

    /// Entries not yet replayed (arrivals, plans).
    #[must_use]
    pub fn remaining(&self) -> (usize, usize) {
        (self.arrivals.len(), self.plans.len())
    }
}

impl Scenario for ReplayScenario {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn next_arrival(&mut self) -> (SimDuration, RequestKind) {
        self.arrivals
            .pop_front()
            .unwrap_or((NEVER, RequestKind::Purchase))
    }

    fn build(&mut self, kind: RequestKind, _work_order_queue: QueueId) -> TxPlan {
        match self.plans.pop_front() {
            Some((recorded_kind, plan)) => {
                assert_eq!(
                    recorded_kind, kind,
                    "replay divergence: engine asked for a {kind:?} plan but \
                     the log recorded {recorded_kind:?} next"
                );
                plan
            }
            None => panic!("replay divergence: engine asked for a {kind:?} plan past log end"),
        }
    }

    fn label(&self, kind: RequestKind) -> &'static str {
        kind.name()
    }

    fn kind_tag(&self) -> u64 {
        3
    }

    fn persist_state(&mut self, io: &mut dyn StateIo) {
        snap::persist_deque(io, &mut self.arrivals);
        snap::persist_deque(io, &mut self.plans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jas_appserver::PlanStep;

    fn sample_log() -> ReplayLog {
        let mut plan = TxPlan::new();
        plan.push(PlanStep::Compute {
            component: jas_jvm::Component::Application,
            instructions: 1234.5,
        })
        .push(PlanStep::SessionTouch);
        ReplayLog {
            arrivals: vec![
                (SimDuration::from_millis(3), RequestKind::Browse),
                (SimDuration::from_millis(9), RequestKind::Purchase),
            ],
            plans: vec![
                (RequestKind::Browse, plan.clone()),
                (RequestKind::Purchase, TxPlan::new()),
            ],
        }
    }

    #[test]
    fn log_round_trips_through_bytes() {
        let log = sample_log();
        let bytes = log.to_bytes();
        let back = ReplayLog::from_bytes(&bytes).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_log().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(ReplayLog::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_log_is_rejected() {
        let bytes = sample_log().to_bytes();
        assert!(ReplayLog::from_bytes(&bytes[..bytes.len() - 8]).is_err());
    }

    #[test]
    fn replay_scenario_pops_in_order() {
        let mut s = ReplayScenario::new(sample_log());
        let (gap, kind) = s.next_arrival();
        assert_eq!(gap, SimDuration::from_millis(3));
        assert_eq!(kind, RequestKind::Browse);
        let plan = s.build(RequestKind::Browse, QueueId(0));
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(s.remaining(), (1, 1));
    }

    #[test]
    fn exhausted_log_stops_arrivals() {
        let mut s = ReplayScenario::new(ReplayLog::default());
        let (gap, _) = s.next_arrival();
        assert!(gap >= SimDuration::from_secs(365 * 24 * 3600));
    }

    #[test]
    #[should_panic(expected = "replay divergence")]
    fn kind_mismatch_panics() {
        let mut s = ReplayScenario::new(sample_log());
        s.build(RequestKind::Manage, QueueId(0));
    }
}
