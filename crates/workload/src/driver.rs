//! The load driver.
//!
//! The benchmark driver runs on a separate machine and injects requests at
//! a preconfigured, constant **injection rate** (IR). Arrivals are an open
//! Poisson-like process (users do not wait for each other), with the
//! request kind drawn from the dealer-domain mix. The driver never
//! throttles on SUT load — which is exactly why an overloaded SUT fails
//! response times instead of slowing the offered load.

use crate::curve::Curve;
use crate::requests::{injection_mix, RequestKind};
use jas_simkernel::dist::Exponential;
use jas_simkernel::{Rng, SimDuration};

/// Driver configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriverConfig {
    /// The injection rate.
    pub ir: u32,
    /// External request arrivals per second per IR unit. The default is
    /// calibrated so completed operations land near the paper's ~1.6
    /// JOPS/IR.
    pub arrivals_per_ir: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DriverConfig {
    /// Driver at injection rate `ir` with calibrated defaults.
    #[must_use]
    pub fn at_ir(ir: u32) -> Self {
        DriverConfig {
            ir,
            arrivals_per_ir: 1.3,
            seed: 0x6A73_3230_3034, // "jas2004"
        }
    }

    /// Mean total arrival rate in requests per second.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        f64::from(self.ir) * self.arrivals_per_ir
    }
}

/// The open-loop request source.
#[derive(Clone, Debug)]
pub struct Driver {
    interarrival: Exponential,
    rng: Rng,
    kinds: Vec<RequestKind>,
    weights: Vec<f64>,
    curve: Curve,
    /// Sim-time position of the last emitted arrival in seconds — the
    /// point on the curve the next gap stretches from. Stays 0 (and
    /// untouched) on the flat fast path.
    cursor_s: f64,
}

impl Driver {
    /// Creates a constant-rate driver.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not positive.
    #[must_use]
    pub fn new(cfg: DriverConfig) -> Self {
        Driver::with_curve(cfg, Curve::constant())
    }

    /// Creates a driver whose arrival rate is `cfg.arrival_rate()`
    /// scaled by `curve` over sim time. The exponential sampler draws
    /// flat-rate gaps in the same order as [`Driver::new`]; each gap is
    /// then stretched through the curve, so a flat curve is
    /// byte-identical to the constant-rate driver.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not positive.
    #[must_use]
    pub fn with_curve(cfg: DriverConfig, curve: Curve) -> Self {
        let mix = injection_mix();
        Driver {
            interarrival: Exponential::new(cfg.arrival_rate()),
            rng: Rng::new(cfg.seed ^ u64::from(cfg.ir)),
            kinds: mix.iter().map(|(k, _)| *k).collect(),
            weights: mix.iter().map(|(_, w)| *w).collect(),
            curve,
            cursor_s: 0.0,
        }
    }

    /// Draws the next arrival: time until it occurs and its kind.
    pub fn next_arrival(&mut self) -> (SimDuration, RequestKind) {
        let base = self.interarrival.sample(&mut self.rng);
        let gap = if self.curve.is_flat() {
            base
        } else {
            let stretched = self.curve.stretch_gap(self.cursor_s, base);
            self.cursor_s += stretched;
            stretched
        };
        let idx = self
            .rng
            .pick_weighted(&self.weights)
            .expect("mix weights are positive");
        (SimDuration::from_secs_f64(gap), self.kinds[idx])
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for Driver {
    // The interarrival distribution, the kind mix, and the curve are
    // config-derived; only the RNG cursor (and, under a non-flat curve,
    // the curve cursor) advance during a run. The conditional is
    // symmetric across save and restore because `is_flat` is a pure
    // function of configuration, so flat-curve checkpoints keep the
    // legacy byte layout.
    // jas-lint: allow(D009, reason = "interarrival, kinds, weights and curve are workload configuration; cursor_s persists whenever a non-flat curve arms it")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.rng.persist(io);
        if !self.curve.is_flat() {
            self.cursor_s.persist(io);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_matches_configuration() {
        let cfg = DriverConfig::at_ir(40);
        let mut d = Driver::new(cfg);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| d.next_arrival().0.as_secs_f64()).sum();
        let rate = f64::from(n) / total;
        let expect = cfg.arrival_rate();
        assert!(
            (rate - expect).abs() / expect < 0.03,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn mix_fractions_respected() {
        let mut d = Driver::new(DriverConfig::at_ir(10));
        let mut browse = 0u32;
        let mut rmi = 0u32;
        let n = 100_000;
        for _ in 0..n {
            match d.next_arrival().1 {
                RequestKind::Browse => browse += 1,
                RequestKind::CreateVehicle => rmi += 1,
                _ => {}
            }
        }
        let bf = f64::from(browse) / f64::from(n);
        let rf = f64::from(rmi) / f64::from(n);
        assert!((bf - 0.45).abs() < 0.01, "browse {bf}");
        assert!((rf - 0.10).abs() < 0.01, "rmi {rf}");
    }

    #[test]
    fn driver_never_emits_work_orders() {
        // Work orders arrive via JMS, not the driver.
        let mut d = Driver::new(DriverConfig::at_ir(5));
        for _ in 0..10_000 {
            assert_ne!(d.next_arrival().1, RequestKind::WorkOrder);
        }
    }

    #[test]
    fn same_config_same_sequence() {
        let mut a = Driver::new(DriverConfig::at_ir(20));
        let mut b = Driver::new(DriverConfig::at_ir(20));
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    fn flat_curve_is_byte_identical_to_the_constant_driver() {
        let cfg = DriverConfig::at_ir(20);
        let mut flat = Driver::new(cfg);
        let mut unity = Driver::with_curve(cfg, Curve::constant());
        for _ in 0..1_000 {
            assert_eq!(flat.next_arrival(), unity.next_arrival());
        }
    }

    #[test]
    fn curve_preserves_the_kind_sequence_and_scales_the_rate() {
        // Same seed, same kind draws — only the gap lengths change.
        let cfg = DriverConfig::at_ir(20);
        let mut flat = Driver::new(cfg);
        let spike = Curve::from_points(vec![(0.0, 2.0), (1.0e6, 2.0)]).expect("valid");
        let mut shaped = Driver::with_curve(cfg, spike);
        let mut flat_total = 0.0;
        let mut shaped_total = 0.0;
        for _ in 0..20_000 {
            let (fg, fk) = flat.next_arrival();
            let (sg, sk) = shaped.next_arrival();
            assert_eq!(fk, sk);
            flat_total += fg.as_secs_f64();
            shaped_total += sg.as_secs_f64();
        }
        let ratio = flat_total / shaped_total;
        assert!((ratio - 2.0).abs() < 0.01, "rate ratio {ratio}");
    }
}
