//! The load driver.
//!
//! The benchmark driver runs on a separate machine and injects requests at
//! a preconfigured, constant **injection rate** (IR). Arrivals are an open
//! Poisson-like process (users do not wait for each other), with the
//! request kind drawn from the dealer-domain mix. The driver never
//! throttles on SUT load — which is exactly why an overloaded SUT fails
//! response times instead of slowing the offered load.

use crate::requests::{injection_mix, RequestKind};
use jas_simkernel::dist::Exponential;
use jas_simkernel::{Rng, SimDuration};

/// Driver configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriverConfig {
    /// The injection rate.
    pub ir: u32,
    /// External request arrivals per second per IR unit. The default is
    /// calibrated so completed operations land near the paper's ~1.6
    /// JOPS/IR.
    pub arrivals_per_ir: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DriverConfig {
    /// Driver at injection rate `ir` with calibrated defaults.
    #[must_use]
    pub fn at_ir(ir: u32) -> Self {
        DriverConfig {
            ir,
            arrivals_per_ir: 1.3,
            seed: 0x6A73_3230_3034, // "jas2004"
        }
    }

    /// Mean total arrival rate in requests per second.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        f64::from(self.ir) * self.arrivals_per_ir
    }
}

/// The open-loop request source.
#[derive(Clone, Debug)]
pub struct Driver {
    interarrival: Exponential,
    rng: Rng,
    kinds: Vec<RequestKind>,
    weights: Vec<f64>,
}

impl Driver {
    /// Creates a driver.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not positive.
    #[must_use]
    pub fn new(cfg: DriverConfig) -> Self {
        let mix = injection_mix();
        Driver {
            interarrival: Exponential::new(cfg.arrival_rate()),
            rng: Rng::new(cfg.seed ^ u64::from(cfg.ir)),
            kinds: mix.iter().map(|(k, _)| *k).collect(),
            weights: mix.iter().map(|(_, w)| *w).collect(),
        }
    }

    /// Draws the next arrival: time until it occurs and its kind.
    pub fn next_arrival(&mut self) -> (SimDuration, RequestKind) {
        let gap = SimDuration::from_secs_f64(self.interarrival.sample(&mut self.rng));
        let idx = self
            .rng
            .pick_weighted(&self.weights)
            .expect("mix weights are positive");
        (gap, self.kinds[idx])
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for Driver {
    // The interarrival distribution and the kind mix are config-derived;
    // only the RNG cursor advances during a run.
    // jas-lint: allow(D009, reason = "interarrival, kinds and weights are the workload mix tables, pure configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.rng.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_matches_configuration() {
        let cfg = DriverConfig::at_ir(40);
        let mut d = Driver::new(cfg);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| d.next_arrival().0.as_secs_f64()).sum();
        let rate = f64::from(n) / total;
        let expect = cfg.arrival_rate();
        assert!(
            (rate - expect).abs() / expect < 0.03,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn mix_fractions_respected() {
        let mut d = Driver::new(DriverConfig::at_ir(10));
        let mut browse = 0u32;
        let mut rmi = 0u32;
        let n = 100_000;
        for _ in 0..n {
            match d.next_arrival().1 {
                RequestKind::Browse => browse += 1,
                RequestKind::CreateVehicle => rmi += 1,
                _ => {}
            }
        }
        let bf = f64::from(browse) / f64::from(n);
        let rf = f64::from(rmi) / f64::from(n);
        assert!((bf - 0.45).abs() < 0.01, "browse {bf}");
        assert!((rf - 0.10).abs() < 0.01, "rmi {rf}");
    }

    #[test]
    fn driver_never_emits_work_orders() {
        // Work orders arrive via JMS, not the driver.
        let mut d = Driver::new(DriverConfig::at_ir(5));
        for _ in 0..10_000 {
            assert_ne!(d.next_arrival().1, RequestKind::WorkOrder);
        }
    }

    #[test]
    fn same_config_same_sequence() {
        let mut a = Driver::new(DriverConfig::at_ir(20));
        let mut b = Driver::new(DriverConfig::at_ir(20));
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }
}
