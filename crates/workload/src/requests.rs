//! Request types, their mix, and plan construction.
//!
//! The dealer domain issues three web transactions (Purchase, Manage,
//! Browse) in the benchmark's 25/25/50 mix, fleet buyers issue RMI
//! CreateVehicleEJB calls, and each purchase enqueues a manufacturing work
//! order consumed asynchronously from JMS. Plans are compiled from the
//! app-server container fragments plus the business data accesses.

use jas_appserver::{containers, PlanStep, QueueId, TxPlan};
use jas_simkernel::dist::Zipf;
use jas_simkernel::Rng;

use crate::domain::Schema;

/// The externally driven request categories (Figure 2's four series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RequestKind {
    /// Dealer purchases vehicles (web).
    #[default]
    Purchase,
    /// Dealer manages inventory/sales (web).
    Manage,
    /// Dealer browses the catalogue (web).
    Browse,
    /// Fleet buyer orders via RMI (CreateVehicleEJB).
    CreateVehicle,
    /// Manufacturing work order consumed from JMS.
    WorkOrder,
}

impl RequestKind {
    /// All request kinds.
    pub const ALL: [RequestKind; 5] = [
        RequestKind::Purchase,
        RequestKind::Manage,
        RequestKind::Browse,
        RequestKind::CreateVehicle,
        RequestKind::WorkOrder,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Purchase => "Purchase",
            RequestKind::Manage => "Manage",
            RequestKind::Browse => "Browse",
            RequestKind::CreateVehicle => "CreateVehicle",
            RequestKind::WorkOrder => "WorkOrder",
        }
    }

    /// Stable small-integer id (the position in [`RequestKind::ALL`]),
    /// for compact encodings like trace-event payloads.
    #[must_use]
    pub fn index(self) -> u8 {
        match self {
            RequestKind::Purchase => 0,
            RequestKind::Manage => 1,
            RequestKind::Browse => 2,
            RequestKind::CreateVehicle => 3,
            RequestKind::WorkOrder => 4,
        }
    }

    /// `true` for requests arriving over HTTP (response-time limit 2 s).
    #[must_use]
    pub fn is_web(self) -> bool {
        matches!(
            self,
            RequestKind::Purchase | RequestKind::Manage | RequestKind::Browse
        )
    }

    /// `true` for requests arriving over RMI (response-time limit 5 s).
    #[must_use]
    pub fn is_rmi(self) -> bool {
        self == RequestKind::CreateVehicle
    }
}

/// Driver-side mix of externally injected requests (WorkOrder arrives via
/// JMS, not the driver). Weights follow the dealer-domain 25/25/50 split
/// with an RMI share alongside.
#[must_use]
pub fn injection_mix() -> [(RequestKind, f64); 4] {
    [
        (RequestKind::Purchase, 0.225),
        (RequestKind::Manage, 0.225),
        (RequestKind::Browse, 0.45),
        (RequestKind::CreateVehicle, 0.10),
    ]
}

/// Multiplier applied to every container/business instruction count —
/// commercial J2EE stacks burn tens of millions of instructions per
/// transaction; the fragments model the *path*, this constant models the
/// depth of each segment. Calibrated so 4 POWER4-class cores saturate near
/// IR ≈ 47 as in the paper.
pub const PATH_LENGTH_MULTIPLIER: f64 = 16.0;

/// Per-kind key-popularity skew for catalogue reads.
const CATALOG_ZIPF: f64 = 0.9;

/// The popularity distribution plans draw catalogue keys from. Execution
/// engines should build it once and pass it to every [`build_plan`] call.
#[must_use]
pub fn catalog_popularity() -> Zipf {
    Zipf::new(4096, CATALOG_ZIPF)
}

/// Builds the execution plan for one request.
///
/// `fresh_key` must be a unique key generator (monotone counter) for
/// inserts; `zipf` is a shared popularity distribution over catalogue rows.
pub fn build_plan(
    kind: RequestKind,
    schema: &Schema,
    work_order_queue: QueueId,
    rng: &mut Rng,
    zipf: &Zipf,
    fresh_key: &mut u64,
) -> TxPlan {
    let mut plan = TxPlan::new();
    let rows = &schema.initial_rows;
    let pick = |rng: &mut Rng, zipf: &Zipf, n: u64| -> u64 {
        // Zipf over a 4096-rank hot set mapped onto the table, blended with
        // a uniform tail.
        if rng.chance(0.7) {
            (zipf.sample(rng) as u64 * 37) % n.max(1)
        } else {
            rng.next_below(n.max(1))
        }
    };
    match kind {
        RequestKind::Purchase => {
            plan.extend(containers::http_frontend(900));
            plan.extend(containers::servlet_dispatch(6_000));
            plan.extend(containers::session_bean_call(22_000.0));
            let customer = pick(rng, zipf, rows.customers);
            plan.extend(containers::entity_find(schema.customers, customer));
            // Select 1-3 vehicles, create order + lines, update inventory.
            let lines = 1 + rng.next_below(3);
            for _ in 0..lines {
                let vehicle = pick(rng, zipf, rows.vehicles);
                plan.extend(containers::entity_find(schema.vehicles, vehicle));
                *fresh_key += 1;
                plan.extend(containers::entity_create(
                    schema.order_lines,
                    rows.order_lines + *fresh_key,
                ));
            }
            *fresh_key += 1;
            plan.extend(containers::entity_create(
                schema.orders,
                rows.orders + *fresh_key,
            ));
            plan.extend(containers::entity_update(
                schema.vehicles,
                pick(rng, zipf, rows.vehicles),
            ));
            // Purchase triggers manufacturing via JMS.
            plan.extend(containers::jms_send(work_order_queue, 600));
            plan.extend(containers::jta_commit(2));
        }
        RequestKind::Manage => {
            plan.extend(containers::http_frontend(700));
            plan.extend(containers::servlet_dispatch(5_000));
            plan.extend(containers::session_bean_call(18_000.0));
            let customer = pick(rng, zipf, rows.customers);
            plan.extend(containers::entity_find(schema.customers, customer));
            // Review open orders, cancel or update some.
            let lo = pick(rng, zipf, rows.orders.saturating_sub(64).max(1));
            plan.extend(containers::entity_find_range(schema.orders, lo, lo + 12));
            plan.extend(containers::entity_update(
                schema.orders,
                pick(rng, zipf, rows.orders),
            ));
            // Occasionally cancel an order line outright.
            if rng.chance(0.3) {
                plan.extend(containers::entity_delete(
                    schema.order_lines,
                    rng.next_below(rows.order_lines.max(1)),
                ));
            }
            plan.extend(containers::jta_commit(1));
        }
        RequestKind::Browse => {
            plan.extend(containers::http_frontend(600));
            plan.extend(containers::servlet_dispatch(9_000));
            plan.extend(containers::session_bean_call(12_000.0));
            // Catalogue browsing: three range scans over vehicles.
            for _ in 0..3 {
                let lo = pick(rng, zipf, rows.vehicles.saturating_sub(32).max(1));
                plan.extend(containers::entity_find_range(schema.vehicles, lo, lo + 10));
            }
            plan.extend(containers::jta_commit(1));
        }
        RequestKind::CreateVehicle => {
            plan.extend(containers::rmi_call(2_400));
            plan.extend(containers::session_bean_call(25_000.0));
            let customer = pick(rng, zipf, rows.customers);
            plan.extend(containers::entity_find(schema.customers, customer));
            for _ in 0..2 {
                *fresh_key += 1;
                plan.extend(containers::entity_create(
                    schema.orders,
                    rows.orders + 1_000_000_000 + *fresh_key,
                ));
            }
            plan.extend(containers::jms_send(work_order_queue, 800));
            plan.extend(containers::jta_commit(2));
        }
        RequestKind::WorkOrder => {
            plan.extend(containers::jms_receive(work_order_queue));
            plan.extend(containers::session_bean_call(20_000.0));
            // Manufacturing: check parts, create work order, update status.
            for _ in 0..3 {
                let part = pick(rng, zipf, rows.parts);
                plan.extend(containers::entity_find(schema.parts, part));
            }
            *fresh_key += 1;
            plan.extend(containers::entity_create(
                schema.work_orders,
                rows.work_orders + *fresh_key,
            ));
            plan.extend(containers::entity_update(
                schema.work_orders,
                pick(rng, zipf, rows.work_orders),
            ));
            plan.extend(containers::jta_commit(2));
        }
    }
    // Apply the path-length multiplier to every compute step.
    for step in &mut plan.steps {
        if let PlanStep::Compute { instructions, .. } = step {
            *instructions *= PATH_LENGTH_MULTIPLIER;
        }
    }
    plan
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for RequestKind {
    // Encoded as the stable `index()` position in `ALL`.
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag = u64::from(self.index());
        io.word(&mut tag);
        if !io.saving() {
            *self = RequestKind::ALL[(tag as usize).min(RequestKind::ALL.len() - 1)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jas_db::{Database, DbConfig};

    fn setup() -> (Schema, Zipf, Rng) {
        let mut db = Database::new(DbConfig::default());
        let schema = Schema::create(&mut db, 4);
        (schema, Zipf::new(4096, CATALOG_ZIPF), Rng::new(1))
    }

    #[test]
    fn mix_sums_to_one() {
        let total: f64 = injection_mix().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_kind_produces_a_plan() {
        let (schema, zipf, mut rng) = setup();
        let mut key = 0;
        for kind in RequestKind::ALL {
            let plan = build_plan(kind, &schema, QueueId(0), &mut rng, &zipf, &mut key);
            assert!(!plan.steps.is_empty(), "{kind:?}");
            assert!(plan.compute_instructions() > 1e6, "{kind:?} too cheap");
        }
    }

    #[test]
    fn purchase_touches_db_and_mq() {
        let (schema, zipf, mut rng) = setup();
        let mut key = 0;
        let plan = build_plan(
            RequestKind::Purchase,
            &schema,
            QueueId(0),
            &mut rng,
            &zipf,
            &mut key,
        );
        assert!(plan.db_steps() >= 4);
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::MqSend { .. })));
        assert!(key > 0, "purchase must mint fresh keys");
    }

    #[test]
    fn browse_is_read_only() {
        let (schema, zipf, mut rng) = setup();
        let mut key = 0;
        let plan = build_plan(
            RequestKind::Browse,
            &schema,
            QueueId(0),
            &mut rng,
            &zipf,
            &mut key,
        );
        for s in &plan.steps {
            if let PlanStep::Db { query } = s {
                assert!(
                    matches!(
                        query,
                        jas_db::Query::SelectByKey { .. } | jas_db::Query::RangeScan { .. }
                    ),
                    "browse must not write: {query:?}"
                );
            }
        }
    }

    #[test]
    fn work_order_consumes_from_queue() {
        let (schema, zipf, mut rng) = setup();
        let mut key = 0;
        let plan = build_plan(
            RequestKind::WorkOrder,
            &schema,
            QueueId(0),
            &mut rng,
            &zipf,
            &mut key,
        );
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::MqReceive { .. })));
    }

    #[test]
    fn classification_helpers() {
        assert!(RequestKind::Purchase.is_web());
        assert!(!RequestKind::Purchase.is_rmi());
        assert!(RequestKind::CreateVehicle.is_rmi());
        assert!(!RequestKind::WorkOrder.is_web());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let (schema, zipf, _) = setup();
        let mut k1 = 0;
        let mut k2 = 0;
        let p1 = build_plan(
            RequestKind::Purchase,
            &schema,
            QueueId(0),
            &mut Rng::new(9),
            &zipf,
            &mut k1,
        );
        let p2 = build_plan(
            RequestKind::Purchase,
            &schema,
            QueueId(0),
            &mut Rng::new(9),
            &zipf,
            &mut k2,
        );
        assert_eq!(p1, p2);
    }
}
