//! Tables: schema, row storage layout, and the primary-key index.

use crate::btree::BTree;

/// Identifier of a table within a [`crate::Database`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// A table: fixed-size rows packed into pages, indexed by primary key.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    row_bytes: u64,
    page_bytes: u64,
    rows: u64,
    index: BTree,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `row_bytes` is zero or exceeds `page_bytes`.
    #[must_use]
    pub fn new(name: impl Into<String>, row_bytes: u64, page_bytes: u64) -> Self {
        assert!(row_bytes > 0 && row_bytes <= page_bytes, "invalid row size");
        Table {
            name: name.into(),
            row_bytes,
            page_bytes,
            rows: 0,
            index: BTree::new(64),
        }
    }

    /// Table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Rows that fit in one page.
    #[must_use]
    pub fn rows_per_page(&self) -> u64 {
        (self.page_bytes / self.row_bytes).max(1)
    }

    /// Number of data pages in use.
    #[must_use]
    pub fn pages(&self) -> u64 {
        self.rows.div_ceil(self.rows_per_page())
    }

    /// Inserts a row with primary key `key`, returning its page number.
    /// Returns `None` (and stores nothing) when the key already exists.
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        if self.index.get(key).is_some() {
            return None;
        }
        let ordinal = self.rows;
        self.index.insert(key, ordinal);
        self.rows += 1;
        Some(ordinal / self.rows_per_page())
    }

    /// Deletes the row with primary key `key`, returning its page number if
    /// it existed. Row ordinals are not reused (tombstone semantics), so
    /// `rows()` reflects the high-water row count.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        self.index
            .remove(key)
            .map(|ordinal| ordinal / self.rows_per_page())
    }

    /// Looks up `key`, returning `(page_number, index_nodes_touched)` when
    /// present.
    #[must_use]
    pub fn find(&self, key: u64) -> (Option<u64>, u32) {
        let l = self.index.lookup(key);
        (
            l.value.map(|ordinal| ordinal / self.rows_per_page()),
            l.nodes_touched,
        )
    }

    /// Finds all rows with keys in `[lo, hi]`, returning their page numbers
    /// (deduplicated, in order) and the index nodes touched.
    #[must_use]
    pub fn find_range(&self, lo: u64, hi: u64) -> (Vec<u64>, u32) {
        let (ordinals, touched) = self.index.range(lo, hi);
        let rpp = self.rows_per_page();
        let mut pages: Vec<u64> = ordinals.iter().map(|o| o / rpp).collect();
        pages.dedup();
        (pages, touched)
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for Table {
    // Name and page geometry come from the schema; only growth state
    // (row count and the index) is checkpointed.
    // jas-lint: allow(D009, reason = "name, page_bytes and row_bytes come from the schema, pure configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.rows.persist(io);
        self.index.persist(io);
    }
}

impl Persist for TableId {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.0.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_find() {
        let mut t = Table::new("orders", 256, 8192);
        assert_eq!(t.rows_per_page(), 32);
        let page = t.insert(42).unwrap();
        assert_eq!(page, 0);
        let (found, touched) = t.find(42);
        assert_eq!(found, Some(0));
        assert!(touched >= 1);
        assert_eq!(t.find(43).0, None);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = Table::new("orders", 256, 8192);
        assert!(t.insert(1).is_some());
        assert!(t.insert(1).is_none());
        assert_eq!(t.rows(), 1);
    }

    #[test]
    fn rows_fill_pages_sequentially() {
        let mut t = Table::new("items", 1024, 8192); // 8 rows/page
        for k in 0..20u64 {
            let page = t.insert(k).unwrap();
            assert_eq!(page, k / 8);
        }
        assert_eq!(t.pages(), 3);
    }

    #[test]
    fn range_returns_page_list() {
        let mut t = Table::new("items", 1024, 8192);
        for k in 0..64u64 {
            t.insert(k);
        }
        let (pages, _) = t.find_range(0, 15);
        assert_eq!(pages, vec![0, 1]);
        let (pages, _) = t.find_range(100, 200);
        assert!(pages.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid row size")]
    fn oversized_row_rejected() {
        let _ = Table::new("bad", 10_000, 8192);
    }

    #[test]
    fn delete_removes_from_index() {
        let mut t = Table::new("orders", 256, 8192);
        t.insert(5);
        assert_eq!(t.delete(5), Some(0));
        assert_eq!(t.find(5).0, None);
        assert_eq!(t.delete(5), None);
        // The key can be re-inserted afterwards.
        assert!(t.insert(5).is_some());
    }
}
