//! The database engine facade: tables + buffer pool + device + transactions
//! behind a small query API, with per-query work accounting for the CPU
//! model.

use crate::bufferpool::{BufferPool, PageId};
use crate::storage::{DeviceKind, StorageDevice};
use crate::table::{Table, TableId};
use crate::txn::{LockConflict, LockMode, TxnId, TxnManager, TxnStats};
use jas_simkernel::SimTime;

/// Database configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbConfig {
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Backing device.
    pub device: DeviceKind,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            pool_pages: 8192, // 64 MB of 8 KB pages at default scale
            page_bytes: 8192,
            device: DeviceKind::RamDisk,
        }
    }
}

/// A query against the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// Point select by primary key.
    SelectByKey {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: u64,
    },
    /// Range scan over `[lo, hi]`.
    RangeScan {
        /// Target table.
        table: TableId,
        /// Low key (inclusive).
        lo: u64,
        /// High key (inclusive).
        hi: u64,
    },
    /// Insert a new row.
    Insert {
        /// Target table.
        table: TableId,
        /// Primary key of the new row.
        key: u64,
    },
    /// Update an existing row.
    Update {
        /// Target table.
        table: TableId,
        /// Primary key of the row.
        key: u64,
    },
    /// Delete a row (deleting an absent key affects 0 rows, as in SQL).
    Delete {
        /// Target table.
        table: TableId,
        /// Primary key of the row.
        key: u64,
    },
}

impl Query {
    fn table(&self) -> TableId {
        match *self {
            Query::SelectByKey { table, .. }
            | Query::RangeScan { table, .. }
            | Query::Insert { table, .. }
            | Query::Update { table, .. }
            | Query::Delete { table, .. } => table,
        }
    }
}

/// What executing a query cost, for the execution layer to turn into CPU
/// work and simulated time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkReport {
    /// Estimated full-scale instructions of engine CPU work.
    pub cpu_instructions: f64,
    /// Buffer-pool slot offsets touched (data references for the CPU model).
    pub slots_touched: Vec<u64>,
    /// Buffer-pool hits.
    pub pool_hits: u32,
    /// Buffer-pool misses (each cost a device round trip).
    pub pool_misses: u32,
    /// When the last device I/O completes (`None` when everything hit).
    pub io_done: Option<SimTime>,
    /// Rows produced/affected.
    pub rows: u64,
}

/// Why a query failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Unknown table.
    NoSuchTable(TableId),
    /// Row-lock conflict; retry later or abort.
    Conflict(LockConflict),
    /// Duplicate primary key on insert.
    DuplicateKey(u64),
    /// Key not found on update.
    NoSuchKey(u64),
    /// Lock wait exceeded its timeout (injected fault); the statement
    /// fails instead of blocking.
    Timeout(TableId),
}

impl core::fmt::Display for DbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {}", t.0),
            DbError::Conflict(c) => write!(f, "{c}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            DbError::NoSuchKey(k) => write!(f, "no row with key {k}"),
            DbError::Timeout(t) => write!(f, "lock wait timeout on table {}", t.0),
        }
    }
}

/// A fault armed against the next statement (injected by the fault plan).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DbFault {
    /// The next statement's lock wait times out: it fails with
    /// [`DbError::Timeout`] without doing any work.
    #[default]
    LockTimeout,
    /// The next statement's reads stall: every page touch is charged a
    /// device round trip even when the page is resident.
    IoStall,
}

impl std::error::Error for DbError {}

impl From<LockConflict> for DbError {
    fn from(c: LockConflict) -> Self {
        DbError::Conflict(c)
    }
}

// Per-operation CPU cost constants (full-scale instructions). Commercial
// DBMS statement path lengths run to hundreds of thousands of instructions
// once client/server communication, SQL agent dispatch, catalogue lookups,
// and logging are included — that depth is what gives DB2 its double-digit
// CPU share in the paper's Figure 4.
const INSTR_PER_INDEX_NODE: f64 = 9_000.0;
const INSTR_PER_PAGE_HIT: f64 = 38_000.0;
const INSTR_PER_PAGE_MISS: f64 = 140_000.0;
const INSTR_PER_ROW: f64 = 14_000.0;
const INSTR_STATEMENT_OVERHEAD: f64 = 290_000.0;

/// The database engine.
#[derive(Clone, Debug)]
pub struct Database {
    cfg: DbConfig,
    tables: Vec<Table>,
    pool: BufferPool,
    device: StorageDevice,
    txns: TxnManager,
    pending_fault: Option<DbFault>,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new(cfg: DbConfig) -> Self {
        Database {
            cfg,
            tables: Vec::new(),
            pool: BufferPool::new(cfg.pool_pages, cfg.page_bytes),
            device: StorageDevice::new(cfg.device),
            txns: TxnManager::new(),
            pending_fault: None,
        }
    }

    /// Arms `fault` against the next [`Database::execute`] call. The fault
    /// is consumed by that call whether or not the statement would have
    /// succeeded; injecting twice before executing keeps only the second.
    pub fn inject(&mut self, fault: DbFault) {
        self.pending_fault = Some(fault);
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// Creates a table and returns its id.
    pub fn create_table(&mut self, name: impl Into<String>, row_bytes: u64) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables
            .push(Table::new(name, row_bytes, self.cfg.page_bytes));
        id
    }

    /// Bulk-loads `count` rows with keys `start..start + count` without
    /// transaction overhead (initial database population).
    ///
    /// # Panics
    ///
    /// Panics if the table does not exist.
    pub fn bulk_load(&mut self, table: TableId, start: u64, count: u64) {
        let t = self
            .tables
            .get_mut(table.0 as usize)
            .expect("bulk_load: no such table");
        for k in start..start + count {
            t.insert(k);
        }
    }

    /// Rows currently in `table` (0 for unknown tables).
    #[must_use]
    pub fn row_count(&self, table: TableId) -> u64 {
        self.tables.get(table.0 as usize).map_or(0, Table::rows)
    }

    /// Opens a transaction.
    pub fn begin(&mut self) -> TxnId {
        self.txns.begin()
    }

    /// Commits a transaction.
    pub fn commit(&mut self, txn: TxnId) {
        self.txns.commit(txn);
    }

    /// Aborts a transaction.
    pub fn abort(&mut self, txn: TxnId) {
        self.txns.abort(txn);
    }

    /// Executes `query` within `txn` at simulated time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] on unknown tables, lock conflicts (no-wait),
    /// duplicate inserts, or missing update keys.
    pub fn execute(
        &mut self,
        txn: TxnId,
        query: Query,
        now: SimTime,
    ) -> Result<WorkReport, DbError> {
        match self.pending_fault.take() {
            None => self.run_query(txn, query, now),
            Some(DbFault::LockTimeout) => {
                self.txns.note_timeout();
                Err(DbError::Timeout(query.table()))
            }
            Some(DbFault::IoStall) => {
                self.pool.set_stall_reads(true);
                let result = self.run_query(txn, query, now);
                self.pool.set_stall_reads(false);
                result
            }
        }
    }

    fn run_query(&mut self, txn: TxnId, query: Query, now: SimTime) -> Result<WorkReport, DbError> {
        let table_id = query.table();
        if table_id.0 as usize >= self.tables.len() {
            return Err(DbError::NoSuchTable(table_id));
        }
        let mut report = WorkReport {
            cpu_instructions: INSTR_STATEMENT_OVERHEAD,
            ..WorkReport::default()
        };
        match query {
            Query::SelectByKey { table, key } => {
                self.txns.lock(txn, table, key, LockMode::Shared)?;
                let (page, touched) = self.tables[table.0 as usize].find(key);
                report.cpu_instructions += f64::from(touched) * INSTR_PER_INDEX_NODE;
                if let Some(page) = page {
                    self.touch_page(table, page, now, &mut report);
                    report.rows = 1;
                    report.cpu_instructions += INSTR_PER_ROW;
                }
            }
            Query::RangeScan { table, lo, hi } => {
                // Range locks degenerate to locking the boundary keys in
                // this model.
                self.txns.lock(txn, table, lo, LockMode::Shared)?;
                let (pages, touched) = self.tables[table.0 as usize].find_range(lo, hi);
                report.cpu_instructions += f64::from(touched) * INSTR_PER_INDEX_NODE;
                report.rows = (hi - lo + 1).min(self.tables[table.0 as usize].rows());
                report.cpu_instructions += report.rows as f64 * INSTR_PER_ROW;
                for page in pages {
                    self.touch_page(table, page, now, &mut report);
                }
            }
            Query::Insert { table, key } => {
                self.txns.lock(txn, table, key, LockMode::Exclusive)?;
                let page = self.tables[table.0 as usize]
                    .insert(key)
                    .ok_or(DbError::DuplicateKey(key))?;
                report.cpu_instructions += 3.0 * INSTR_PER_INDEX_NODE + INSTR_PER_ROW * 2.0;
                self.touch_page(table, page, now, &mut report);
                report.rows = 1;
            }
            Query::Update { table, key } => {
                self.txns.lock(txn, table, key, LockMode::Exclusive)?;
                let (page, touched) = self.tables[table.0 as usize].find(key);
                report.cpu_instructions += f64::from(touched) * INSTR_PER_INDEX_NODE;
                let page = page.ok_or(DbError::NoSuchKey(key))?;
                self.touch_page(table, page, now, &mut report);
                report.rows = 1;
                report.cpu_instructions += INSTR_PER_ROW * 2.0;
            }
            Query::Delete { table, key } => {
                self.txns.lock(txn, table, key, LockMode::Exclusive)?;
                report.cpu_instructions += 3.0 * INSTR_PER_INDEX_NODE;
                if let Some(page) = self.tables[table.0 as usize].delete(key) {
                    self.touch_page(table, page, now, &mut report);
                    report.rows = 1;
                    report.cpu_instructions += INSTR_PER_ROW;
                }
            }
        }
        Ok(report)
    }

    fn touch_page(&mut self, table: TableId, page: u64, now: SimTime, report: &mut WorkReport) {
        let access = self.pool.touch(PageId {
            table: table.0,
            page,
        });
        report.slots_touched.push(access.slot_offset);
        if access.hit {
            report.pool_hits += 1;
            report.cpu_instructions += INSTR_PER_PAGE_HIT;
        } else {
            report.pool_misses += 1;
            report.cpu_instructions += INSTR_PER_PAGE_MISS;
            let done = self.device.submit(now);
            report.io_done = Some(report.io_done.map_or(done, |d| d.max(done)));
        }
    }

    /// Buffer-pool statistics.
    #[must_use]
    pub fn pool_stats(&self) -> crate::bufferpool::PoolStats {
        self.pool.stats()
    }

    /// Device statistics.
    #[must_use]
    pub fn device_stats(&self) -> crate::storage::DeviceStats {
        self.device.stats()
    }

    /// Transaction statistics.
    #[must_use]
    pub fn txn_stats(&self) -> TxnStats {
        self.txns.stats()
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for DbFault {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag: u64 = match self {
            DbFault::LockTimeout => 0,
            DbFault::IoStall => 1,
        };
        io.word(&mut tag);
        if !io.saving() {
            *self = if tag == 0 {
                DbFault::LockTimeout
            } else {
                DbFault::IoStall
            };
        }
    }
}

impl Persist for Database {
    // `cfg` is immutable config. Tables are created by the scenario's
    // schema setup before a restore overlays state, so the count is
    // already correct and they persist in place.
    // jas-lint: allow(D009, reason = "cfg is construction-time configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.tables);
        self.pool.persist(io);
        self.device.persist(io);
        self.txns.persist(io);
        snap::persist_opt(io, &mut self.pending_fault);
    }
}

impl Default for Query {
    fn default() -> Self {
        Query::SelectByKey {
            table: TableId(0),
            key: 0,
        }
    }
}

impl Persist for Query {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag: u64 = match self {
            Query::SelectByKey { .. } => 0,
            Query::RangeScan { .. } => 1,
            Query::Insert { .. } => 2,
            Query::Update { .. } => 3,
            Query::Delete { .. } => 4,
        };
        io.word(&mut tag);
        if !io.saving() {
            let t = TableId(0);
            *self = match tag {
                0 => Query::SelectByKey { table: t, key: 0 },
                1 => Query::RangeScan {
                    table: t,
                    lo: 0,
                    hi: 0,
                },
                2 => Query::Insert { table: t, key: 0 },
                3 => Query::Update { table: t, key: 0 },
                _ => Query::Delete { table: t, key: 0 },
            };
        }
        match self {
            Query::SelectByKey { table, key }
            | Query::Insert { table, key }
            | Query::Update { table, key }
            | Query::Delete { table, key } => {
                table.persist(io);
                key.persist(io);
            }
            Query::RangeScan { table, lo, hi } => {
                table.persist(io);
                lo.persist(io);
                hi.persist(io);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> (Database, TableId) {
        let mut d = Database::new(DbConfig::default());
        let t = d.create_table("orders", 256);
        d.bulk_load(t, 0, 10_000);
        (d, t)
    }

    #[test]
    fn select_finds_loaded_rows() {
        let (mut d, t) = db();
        let txn = d.begin();
        let r = d
            .execute(
                txn,
                Query::SelectByKey { table: t, key: 500 },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(r.rows, 1);
        assert!(r.cpu_instructions > 0.0);
        assert_eq!(r.slots_touched.len(), 1);
        d.commit(txn);
    }

    #[test]
    fn select_missing_key_returns_zero_rows() {
        let (mut d, t) = db();
        let txn = d.begin();
        let r = d
            .execute(
                txn,
                Query::SelectByKey {
                    table: t,
                    key: 999_999,
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(r.rows, 0);
        d.commit(txn);
    }

    #[test]
    fn repeated_select_hits_buffer_pool() {
        let (mut d, t) = db();
        let txn = d.begin();
        let first = d
            .execute(txn, Query::SelectByKey { table: t, key: 1 }, SimTime::ZERO)
            .unwrap();
        let second = d
            .execute(txn, Query::SelectByKey { table: t, key: 1 }, SimTime::ZERO)
            .unwrap();
        assert_eq!(first.pool_misses, 1);
        assert_eq!(second.pool_hits, 1);
        assert!(second.io_done.is_none());
        d.commit(txn);
    }

    #[test]
    fn insert_then_select_round_trips() {
        let (mut d, t) = db();
        let txn = d.begin();
        d.execute(
            txn,
            Query::Insert {
                table: t,
                key: 123_456,
            },
            SimTime::ZERO,
        )
        .unwrap();
        let r = d
            .execute(
                txn,
                Query::SelectByKey {
                    table: t,
                    key: 123_456,
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(r.rows, 1);
        d.commit(txn);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (mut d, t) = db();
        let txn = d.begin();
        let err = d
            .execute(txn, Query::Insert { table: t, key: 5 }, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, DbError::DuplicateKey(5));
        d.abort(txn);
    }

    #[test]
    fn update_missing_key_fails() {
        let (mut d, t) = db();
        let txn = d.begin();
        let err = d
            .execute(
                txn,
                Query::Update {
                    table: t,
                    key: 999_999,
                },
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, DbError::NoSuchKey(999_999));
        d.abort(txn);
    }

    #[test]
    fn conflicting_writers_detected() {
        let (mut d, t) = db();
        let a = d.begin();
        let b = d.begin();
        d.execute(a, Query::Update { table: t, key: 7 }, SimTime::ZERO)
            .unwrap();
        let err = d
            .execute(b, Query::Update { table: t, key: 7 }, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, DbError::Conflict(_)));
        d.commit(a);
        // After commit, b can proceed.
        assert!(d
            .execute(b, Query::Update { table: t, key: 7 }, SimTime::ZERO)
            .is_ok());
        d.commit(b);
    }

    #[test]
    fn range_scan_touches_multiple_pages() {
        let (mut d, t) = db();
        let txn = d.begin();
        let r = d
            .execute(
                txn,
                Query::RangeScan {
                    table: t,
                    lo: 0,
                    hi: 200,
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert!(r.slots_touched.len() > 1);
        assert_eq!(r.rows, 201);
        d.commit(txn);
    }

    #[test]
    fn ram_disk_vs_hard_disk_io_latency() {
        let run = |device| {
            let mut d = Database::new(DbConfig {
                device,
                ..DbConfig::default()
            });
            let t = d.create_table("x", 256);
            d.bulk_load(t, 0, 100_000);
            let txn = d.begin();
            let mut worst = SimTime::ZERO;
            for k in (0..100_000u64).step_by(1000) {
                let r = d
                    .execute(txn, Query::SelectByKey { table: t, key: k }, SimTime::ZERO)
                    .unwrap();
                if let Some(done) = r.io_done {
                    worst = worst.max(done);
                }
            }
            d.commit(txn);
            worst
        };
        let ram = run(DeviceKind::RamDisk);
        let disk = run(DeviceKind::HardDisk { spindles: 2 });
        assert!(
            disk.as_nanos() > ram.as_nanos() * 20,
            "disk {disk} vs ram {ram}"
        );
    }

    #[test]
    fn delete_round_trips_and_tolerates_absence() {
        let (mut d, t) = db();
        let txn = d.begin();
        let r = d
            .execute(txn, Query::Delete { table: t, key: 7 }, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.rows, 1);
        // Deleted row no longer selectable.
        let r = d
            .execute(txn, Query::SelectByKey { table: t, key: 7 }, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.rows, 0);
        // SQL semantics: deleting an absent row succeeds with 0 rows.
        let r = d
            .execute(txn, Query::Delete { table: t, key: 7 }, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.rows, 0);
        d.commit(txn);
    }

    #[test]
    fn injected_lock_timeout_fails_exactly_one_statement() {
        let (mut d, t) = db();
        let txn = d.begin();
        d.inject(DbFault::LockTimeout);
        let err = d
            .execute(txn, Query::SelectByKey { table: t, key: 1 }, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, DbError::Timeout(t));
        assert_eq!(d.txn_stats().timeouts, 1);
        // The fault is consumed; the retry goes through.
        let r = d
            .execute(txn, Query::SelectByKey { table: t, key: 1 }, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.rows, 1);
        d.commit(txn);
    }

    #[test]
    fn injected_io_stall_degrades_one_statement_to_device_reads() {
        let (mut d, t) = db();
        let txn = d.begin();
        // Warm the page so a healthy re-read would hit.
        d.execute(txn, Query::SelectByKey { table: t, key: 1 }, SimTime::ZERO)
            .unwrap();
        d.inject(DbFault::IoStall);
        let stalled = d
            .execute(txn, Query::SelectByKey { table: t, key: 1 }, SimTime::ZERO)
            .unwrap();
        assert_eq!(stalled.pool_misses, 1, "stalled read is charged as a miss");
        assert!(stalled.io_done.is_some(), "device round trip charged");
        let healthy = d
            .execute(txn, Query::SelectByKey { table: t, key: 1 }, SimTime::ZERO)
            .unwrap();
        assert_eq!(healthy.pool_hits, 1, "stall does not outlive its statement");
        d.commit(txn);
    }

    #[test]
    fn unknown_table_rejected() {
        let mut d = Database::new(DbConfig::default());
        let txn = d.begin();
        let err = d
            .execute(
                txn,
                Query::SelectByKey {
                    table: TableId(9),
                    key: 1,
                },
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, DbError::NoSuchTable(TableId(9)));
    }
}
