//! The storage-device model: RAM disk vs. spinning disks.
//!
//! The paper (Sections 3.1, 4.1) could only reach ~100% CPU utilization by
//! backing DB2 with a RAM disk (or enough real disks): with two hard disks
//! the "I/O wait" time exploded, response times grew, and the benchmark
//! failed. The device model reproduces that: a single-server queue with a
//! per-request service time — microseconds for the RAM disk, milliseconds
//! (seek + rotate + transfer) for a spinning disk, divided across however
//! many spindles are configured.

use jas_simkernel::{SimDuration, SimTime};

/// The kind of device backing the database files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// OS-managed RAM disk (the paper's primary configuration).
    RamDisk,
    /// An array of spinning disks.
    HardDisk {
        /// Number of spindles sharing the load.
        spindles: u32,
    },
}

/// Statistics accumulated by a device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Requests served.
    pub requests: u64,
    /// Total time requests spent queued + in service.
    pub busy_time: SimDuration,
    /// Total time requests waited behind other requests.
    pub queue_time: SimDuration,
}

/// A single-queue storage device.
#[derive(Clone, Debug)]
pub struct StorageDevice {
    kind: DeviceKind,
    /// Completion time of the most recent request per spindle.
    spindle_free_at: Vec<SimTime>,
    rr_next: usize,
    stats: DeviceStats,
}

impl StorageDevice {
    /// Creates a device of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if a hard-disk device is configured with zero spindles.
    #[must_use]
    pub fn new(kind: DeviceKind) -> Self {
        let spindles = match kind {
            DeviceKind::RamDisk => 1,
            DeviceKind::HardDisk { spindles } => {
                assert!(spindles > 0, "need at least one spindle");
                spindles as usize
            }
        };
        StorageDevice {
            kind,
            spindle_free_at: vec![SimTime::ZERO; spindles],
            rr_next: 0,
            stats: DeviceStats::default(),
        }
    }

    /// The device kind.
    #[must_use]
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Raw service time of one page-sized request (no queueing).
    #[must_use]
    pub fn service_time(&self) -> SimDuration {
        match self.kind {
            // Memory-speed copy through the filesystem: ~15 microseconds.
            DeviceKind::RamDisk => SimDuration::from_micros(15),
            // Seek + half-rotation + transfer of an 8 KB page: ~7 ms.
            DeviceKind::HardDisk { .. } => SimDuration::from_micros(7_000),
        }
    }

    /// Submits one page request at `now`; returns the completion time. The
    /// caller treats `completion - now` as synchronous I/O wait.
    pub fn submit(&mut self, now: SimTime) -> SimTime {
        // Round-robin across spindles (a crude but fair striping model).
        let s = self.rr_next;
        self.rr_next = (self.rr_next + 1) % self.spindle_free_at.len();
        let start = self.spindle_free_at[s].max(now);
        let completion = start + self.service_time();
        self.spindle_free_at[s] = completion;
        self.stats.requests += 1;
        self.stats.queue_time += start.saturating_since(now);
        self.stats.busy_time += completion.saturating_since(now);
        completion
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for DeviceStats {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.requests.persist(io);
        self.busy_time.persist(io);
        self.queue_time.persist(io);
    }
}

impl Persist for StorageDevice {
    // `kind` (and therefore the spindle count) is config-derived.
    // jas-lint: allow(D009, reason = "kind is the device model, pure configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.spindle_free_at);
        self.rr_next.persist(io);
        self.stats.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_disk_is_microseconds() {
        let mut d = StorageDevice::new(DeviceKind::RamDisk);
        let done = d.submit(SimTime::from_secs(1));
        let wait = done.saturating_since(SimTime::from_secs(1));
        assert!(wait < SimDuration::from_micros(100), "wait {wait}");
    }

    #[test]
    fn hard_disk_is_milliseconds() {
        let mut d = StorageDevice::new(DeviceKind::HardDisk { spindles: 1 });
        let done = d.submit(SimTime::from_secs(1));
        let wait = done.saturating_since(SimTime::from_secs(1));
        assert!(wait >= SimDuration::from_millis(5), "wait {wait}");
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = StorageDevice::new(DeviceKind::HardDisk { spindles: 1 });
        let t = SimTime::from_secs(1);
        let first = d.submit(t);
        let second = d.submit(t);
        assert!(second > first, "second request must wait behind the first");
        assert!(d.stats().queue_time > SimDuration::ZERO);
    }

    #[test]
    fn more_spindles_reduce_queueing() {
        let run = |spindles: u32| {
            let mut d = StorageDevice::new(DeviceKind::HardDisk { spindles });
            let t = SimTime::from_secs(1);
            for _ in 0..32 {
                d.submit(t);
            }
            d.stats().queue_time
        };
        assert!(run(8) < run(2));
        assert!(run(2) < run(1));
    }

    #[test]
    fn ram_disk_hardly_queues_under_load() {
        let mut d = StorageDevice::new(DeviceKind::RamDisk);
        let mut now = SimTime::from_secs(1);
        let mut total_wait = SimDuration::ZERO;
        for _ in 0..100 {
            let done = d.submit(now);
            total_wait += done.saturating_since(now);
            now += SimDuration::from_micros(50); // arrivals slower than service
        }
        assert!(
            total_wait < SimDuration::from_millis(2),
            "total {total_wait}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one spindle")]
    fn zero_spindles_rejected() {
        let _ = StorageDevice::new(DeviceKind::HardDisk { spindles: 0 });
    }
}
