//! The database buffer pool: an LRU cache of data pages in front of the
//! storage device.
//!
//! Buffer-pool hits cost only CPU; misses cost a device round trip. The
//! pool also assigns each cached page a slot address inside the
//! `DbBufferPool` region of the simulated address space, which is how
//! database work contributes realistic data references to the CPU model's
//! cache hierarchy.

use jas_simkernel::DetMap;

/// Identifier of an 8 KB data page: `(table, page_number)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Owning table.
    pub table: u32,
    /// Page ordinal within the table.
    pub page: u64,
}

/// Result of touching a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageAccess {
    /// `true` when the page was already resident.
    pub hit: bool,
    /// Byte offset of the page's slot within the buffer-pool region.
    pub slot_offset: u64,
}

/// Buffer-pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page touches.
    pub accesses: u64,
    /// Touches satisfied without device I/O.
    pub hits: u64,
}

impl PoolStats {
    /// Hit fraction (1.0 when never accessed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// An LRU buffer pool of fixed page capacity.
#[derive(Clone, Debug)]
pub struct BufferPool {
    page_bytes: u64,
    capacity: usize,
    resident: DetMap<PageId, (usize, u64)>, // page -> (slot, last-use tick)
    slot_of: Vec<Option<PageId>>,
    free_slots: Vec<usize>,
    tick: u64,
    stats: PoolStats,
    stall_reads: bool,
}

impl BufferPool {
    /// Creates a pool holding `capacity_pages` pages of `page_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(capacity_pages: usize, page_bytes: u64) -> Self {
        assert!(capacity_pages > 0 && page_bytes > 0);
        BufferPool {
            page_bytes,
            capacity: capacity_pages,
            resident: DetMap::with_capacity(capacity_pages),
            slot_of: vec![None; capacity_pages],
            free_slots: (0..capacity_pages).rev().collect(),
            tick: 0,
            stats: PoolStats::default(),
            stall_reads: false,
        }
    }

    /// Turns read-stall mode on or off. While on, touches of resident
    /// pages are degraded to misses (the page stays resident but the
    /// caller is charged a device round trip) — the buffer-pool face of an
    /// injected I/O stall.
    pub fn set_stall_reads(&mut self, on: bool) {
        self.stall_reads = on;
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Configured capacity in pages.
    #[must_use]
    pub fn capacity_pages(&self) -> usize {
        self.capacity
    }

    /// Touches `page`: returns whether it was resident and the region
    /// offset of its slot. On a miss the page is brought in, evicting the
    /// least recently used page if the pool is full.
    pub fn touch(&mut self, page: PageId) -> PageAccess {
        self.tick += 1;
        self.stats.accesses += 1;
        if let Some((slot, stamp)) = self.resident.get_mut(&page) {
            *stamp = self.tick;
            if self.stall_reads {
                // Injected stall: the page is resident but the read goes
                // back to the device anyway.
                return PageAccess {
                    hit: false,
                    slot_offset: *slot as u64 * self.page_bytes,
                };
            }
            self.stats.hits += 1;
            return PageAccess {
                hit: true,
                slot_offset: *slot as u64 * self.page_bytes,
            };
        }
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                // Evict the LRU page.
                let (&victim, _) = self
                    .resident
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .expect("pool is full, so non-empty");
                let (slot, _) = self.resident.remove(&victim).expect("victim resident");
                self.slot_of[slot] = None;
                slot
            }
        };
        self.resident.insert(page, (slot, self.tick));
        self.slot_of[slot] = Some(page);
        PageAccess {
            hit: false,
            slot_offset: slot as u64 * self.page_bytes,
        }
    }

    /// Number of resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for PageId {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.table.persist(io);
        self.page.persist(io);
    }
}

impl Persist for PoolStats {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.accesses.persist(io);
        self.hits.persist(io);
    }
}

impl Persist for BufferPool {
    // `page_bytes` and `capacity` come from config; `slot_of` is
    // capacity-sized, so it persists in place.
    // jas-lint: allow(D009, reason = "capacity and page_bytes are construction-time configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_map(io, &mut self.resident);
        snap::persist_slice(io, &mut self.slot_of);
        snap::persist_vec(io, &mut self.free_slots);
        self.tick.persist(io);
        self.stats.persist(io);
        self.stall_reads.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(p: u64) -> PageId {
        PageId { table: 0, page: p }
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut bp = BufferPool::new(4, 8192);
        assert!(!bp.touch(page(1)).hit);
        assert!(bp.touch(page(1)).hit);
        assert_eq!(bp.stats().accesses, 2);
        assert_eq!(bp.stats().hits, 1);
    }

    #[test]
    fn same_page_keeps_its_slot() {
        let mut bp = BufferPool::new(4, 8192);
        let a = bp.touch(page(1)).slot_offset;
        let b = bp.touch(page(1)).slot_offset;
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_pages_get_distinct_slots() {
        let mut bp = BufferPool::new(4, 8192);
        let a = bp.touch(page(1)).slot_offset;
        let b = bp.touch(page(2)).slot_offset;
        assert_ne!(a, b);
        assert_eq!(a % 8192, 0);
        assert_eq!(b % 8192, 0);
    }

    #[test]
    fn lru_eviction() {
        let mut bp = BufferPool::new(2, 8192);
        bp.touch(page(1));
        bp.touch(page(2));
        bp.touch(page(1)); // 2 is now LRU
        bp.touch(page(3)); // evicts 2
        assert!(bp.touch(page(1)).hit);
        assert!(!bp.touch(page(2)).hit, "page 2 must have been evicted");
    }

    #[test]
    fn capacity_is_respected() {
        let mut bp = BufferPool::new(8, 8192);
        for p in 0..100 {
            bp.touch(page(p));
        }
        assert_eq!(bp.resident_pages(), 8);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut bp = BufferPool::new(16, 8192);
        // Working set fits: after warm-up everything hits.
        for round in 0..10 {
            for p in 0..16 {
                let access = bp.touch(page(p));
                if round > 0 {
                    assert!(access.hit);
                }
            }
        }
        assert!(bp.stats().hit_rate() > 0.85);
    }

    #[test]
    fn stalled_reads_miss_without_losing_residency() {
        let mut bp = BufferPool::new(4, 8192);
        let slot = bp.touch(page(1)).slot_offset;
        bp.set_stall_reads(true);
        let stalled = bp.touch(page(1));
        assert!(!stalled.hit, "stalled read must be charged as a miss");
        assert_eq!(stalled.slot_offset, slot, "page keeps its slot");
        bp.set_stall_reads(false);
        assert!(bp.touch(page(1)).hit, "back to normal once the stall lifts");
        assert_eq!(bp.resident_pages(), 1);
    }

    #[test]
    fn tables_namespace_pages() {
        let mut bp = BufferPool::new(4, 8192);
        bp.touch(PageId { table: 1, page: 7 });
        assert!(!bp.touch(PageId { table: 2, page: 7 }).hit);
    }
}
