//! An in-memory relational database substrate modeling the DB2 tier of the
//! ISPASS 2007 J2EE characterization study.
//!
//! Everything a transaction-processing engine needs to exhibit the paper's
//! behaviours is implemented for real:
//!
//! * a [`BTree`] primary-key index with traversal accounting,
//! * [`Table`]s of fixed-size rows packed into pages,
//! * an LRU [`BufferPool`] whose slots map into the simulated address space
//!   (so DB work produces genuine cache/TLB traffic in the CPU model),
//! * a no-wait row-locking [`TxnManager`],
//! * a [`StorageDevice`] model distinguishing the paper's RAM-disk
//!   configuration from spinning disks (whose queueing produces the I/O
//!   wait that made hard-disk runs fail),
//! * and the [`Database`] facade tying it together with per-query
//!   [`WorkReport`]s.
//!
//! # Example
//!
//! ```
//! use jas_db::{Database, DbConfig, Query};
//! use jas_simkernel::SimTime;
//!
//! let mut db = Database::new(DbConfig::default());
//! let orders = db.create_table("orders", 256);
//! db.bulk_load(orders, 0, 1000);
//! let txn = db.begin();
//! let report = db.execute(txn, Query::SelectByKey { table: orders, key: 42 }, SimTime::ZERO)?;
//! assert_eq!(report.rows, 1);
//! db.commit(txn);
//! # Ok::<(), jas_db::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod bufferpool;
mod engine;
mod storage;
mod table;
mod txn;

pub use btree::{BTree, Lookup};
pub use bufferpool::{BufferPool, PageAccess, PageId, PoolStats};
pub use engine::{Database, DbConfig, DbError, DbFault, Query, WorkReport};
pub use storage::{DeviceKind, DeviceStats, StorageDevice};
pub use table::{Table, TableId};
pub use txn::{LockConflict, LockMode, TxnId, TxnManager, TxnStats};
