//! A real B-tree index (order-configurable, keys `u64`, values `u64`).
//!
//! The database substrate indexes every table's primary key through this
//! structure; lookups report the number of nodes touched so the query
//! engine can charge realistic CPU and buffer-pool work per traversal.

/// A B-tree mapping `u64` keys to `u64` values.
///
/// ```
/// use jas_db::BTree;
/// let mut t = BTree::new(16);
/// t.insert(5, 50);
/// t.insert(3, 30);
/// assert_eq!(t.get(5), Some(50));
/// assert_eq!(t.get(4), None);
/// ```
#[derive(Clone, Debug)]
pub struct BTree {
    order: usize,
    root: usize,
    nodes: Vec<Node>,
    len: u64,
    depth: u32,
}

#[derive(Clone, Debug, Default)]
struct Node {
    keys: Vec<u64>,
    values: Vec<u64>,     // leaf payloads (parallel to keys when leaf)
    children: Vec<usize>, // empty for leaves
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Result of a lookup with traversal accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookup {
    /// The found value, if any.
    pub value: Option<u64>,
    /// Nodes visited on the root-to-leaf path.
    pub nodes_touched: u32,
}

impl BTree {
    /// Creates an empty tree where nodes hold at most `order` keys.
    ///
    /// # Panics
    ///
    /// Panics if `order < 3`.
    #[must_use]
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "order must be at least 3");
        BTree {
            order,
            root: 0,
            nodes: vec![Node::default()],
            len: 0,
            depth: 1,
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the tree holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (number of levels).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<u64> {
        self.lookup(key).value
    }

    /// Looks up `key` with traversal accounting.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Lookup {
        let mut idx = self.root;
        let mut touched = 1;
        loop {
            let node = &self.nodes[idx];
            match node.keys.binary_search(&key) {
                Ok(i) => {
                    if node.is_leaf() {
                        return Lookup {
                            value: Some(node.values[i]),
                            nodes_touched: touched,
                        };
                    }
                    // Routers are max-of-left-subtree: an equal key lives in
                    // the child at the router's own index.
                    idx = node.children[i];
                }
                Err(i) => {
                    if node.is_leaf() {
                        return Lookup {
                            value: None,
                            nodes_touched: touched,
                        };
                    }
                    idx = node.children[i];
                }
            }
            touched += 1;
        }
    }

    /// Inserts `key -> value`, replacing any existing binding. Returns the
    /// previous value if the key was present.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        // Split-on-the-way-down insertion (preemptive splitting keeps the
        // code single-pass).
        if self.nodes[self.root].keys.len() >= self.order {
            let old_root = self.root;
            let new_root = self.alloc(Node {
                keys: Vec::new(),
                values: Vec::new(),
                children: vec![old_root],
            });
            self.root = new_root;
            self.split_child(new_root, 0);
            self.depth += 1;
        }
        let mut idx = self.root;
        loop {
            if self.nodes[idx].is_leaf() {
                let node = &mut self.nodes[idx];
                return match node.keys.binary_search(&key) {
                    Ok(i) => Some(core::mem::replace(&mut node.values[i], value)),
                    Err(i) => {
                        node.keys.insert(i, key);
                        node.values.insert(i, value);
                        self.len += 1;
                        None
                    }
                };
            }
            let child_pos = match self.nodes[idx].keys.binary_search(&key) {
                Ok(i) | Err(i) => i, // max-of-left routing
            };
            let child = self.nodes[idx].children[child_pos];
            if self.nodes[child].keys.len() >= self.order {
                self.split_child(idx, child_pos);
                // Re-route after the split.
                continue;
            }
            idx = child;
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Deletion is *lazy* (no node merging or rebalancing): removing a key
    /// from a leaf never restructures the tree. Routers remain valid upper
    /// bounds for their subtrees, so lookups and ranges stay correct; space
    /// in underfull leaves is reclaimed by later inserts. This mirrors the
    /// tombstone-style deletes common in real engines.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let mut idx = self.root;
        loop {
            let node = &self.nodes[idx];
            match node.keys.binary_search(&key) {
                Ok(i) => {
                    if node.is_leaf() {
                        let node = &mut self.nodes[idx];
                        node.keys.remove(i);
                        let v = node.values.remove(i);
                        self.len -= 1;
                        return Some(v);
                    }
                    idx = node.children[i];
                }
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    idx = node.children[i];
                }
            }
        }
    }

    /// Collects all values with keys in `[lo, hi]`, returning them in key
    /// order along with the number of nodes touched.
    #[must_use]
    pub fn range(&self, lo: u64, hi: u64) -> (Vec<u64>, u32) {
        let mut out = Vec::new();
        let mut touched = 0;
        self.range_walk(self.root, lo, hi, &mut out, &mut touched);
        (out, touched)
    }

    fn range_walk(&self, idx: usize, lo: u64, hi: u64, out: &mut Vec<u64>, touched: &mut u32) {
        *touched += 1;
        let node = &self.nodes[idx];
        if node.is_leaf() {
            for (k, v) in node.keys.iter().zip(&node.values) {
                if (lo..=hi).contains(k) {
                    out.push(*v);
                }
            }
            return;
        }
        // Visit children whose key ranges can intersect [lo, hi].
        let start = match node.keys.binary_search(&lo) {
            Ok(i) | Err(i) => i, // max-of-left routing
        };
        let mut i = start;
        loop {
            self.range_walk(node.children[i], lo, hi, out, touched);
            if i >= node.keys.len() || node.keys[i] > hi {
                break;
            }
            i += 1;
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Splits the full child at `child_pos` of `parent`, hoisting the median
    /// key.
    fn split_child(&mut self, parent: usize, child_pos: usize) {
        let child_idx = self.nodes[parent].children[child_pos];
        let mid = self.nodes[child_idx].keys.len() / 2;
        let child = &mut self.nodes[child_idx];
        let right_keys = child.keys.split_off(mid + usize::from(!child.is_leaf()));
        let median = if child.is_leaf() {
            // Leaf split: median stays in the left leaf, the parent gets a
            // copy as a router (B+-tree style, keeps values in leaves).
            *child.keys.last().expect("non-empty left half")
        } else {
            child.keys.pop().expect("non-empty left half")
        };
        let right_values = if child.is_leaf() {
            child.values.split_off(child.keys.len())
        } else {
            Vec::new()
        };
        let right_children = if child.is_leaf() {
            Vec::new()
        } else {
            child.children.split_off(mid + 1)
        };
        let right = self.alloc(Node {
            keys: right_keys,
            values: right_values,
            children: right_children,
        });
        let parent_node = &mut self.nodes[parent];
        parent_node.keys.insert(child_pos, median);
        parent_node.children.insert(child_pos + 1, right);
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for Node {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.keys.persist(io);
        self.values.persist(io);
        self.children.persist(io);
    }
}

impl Persist for BTree {
    // `order` is fixed at construction (schema config) and not persisted.
    // jas-lint: allow(D009, reason = "order is construction-time configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.root.persist(io);
        snap::persist_vec(io, &mut self.nodes);
        self.len.persist(io);
        self.depth.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jas_simkernel::Rng;

    #[test]
    fn insert_and_get_small() {
        let mut t = BTree::new(4);
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.insert(k, k * 10), None);
        }
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.get(k), Some(k * 10), "key {k}");
        }
        assert_eq!(t.get(2), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn replace_returns_old_value() {
        let mut t = BTree::new(4);
        t.insert(1, 10);
        assert_eq!(t.insert(1, 20), Some(10));
        assert_eq!(t.get(1), Some(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_sequential_inserts() {
        let mut t = BTree::new(8);
        for k in 0..10_000u64 {
            t.insert(k, k + 1);
        }
        assert_eq!(t.len(), 10_000);
        for k in (0..10_000u64).step_by(97) {
            assert_eq!(t.get(k), Some(k + 1));
        }
        assert!(
            t.depth() > 2,
            "tree must actually grow, depth {}",
            t.depth()
        );
    }

    #[test]
    fn many_random_inserts() {
        let mut t = BTree::new(16);
        let mut rng = Rng::new(11);
        let mut keys = Vec::new();
        for _ in 0..20_000 {
            let k = rng.next_below(1 << 40);
            t.insert(k, k ^ 0xFF);
            keys.push(k);
        }
        for &k in keys.iter().step_by(53) {
            assert_eq!(t.get(k), Some(k ^ 0xFF));
        }
    }

    #[test]
    fn lookup_depth_is_logarithmic() {
        let mut t = BTree::new(64);
        for k in 0..100_000u64 {
            t.insert(k, k);
        }
        let l = t.lookup(54_321);
        assert_eq!(l.value, Some(54_321));
        assert!(l.nodes_touched <= 4, "touched {}", l.nodes_touched);
        assert_eq!(l.nodes_touched, t.depth());
    }

    #[test]
    fn range_returns_sorted_window() {
        let mut t = BTree::new(8);
        for k in (0..1000u64).rev() {
            t.insert(k, k * 2);
        }
        let (vals, touched) = t.range(100, 110);
        assert_eq!(vals, (100..=110).map(|k| k * 2).collect::<Vec<_>>());
        assert!(touched >= 1);
    }

    #[test]
    fn range_outside_keyspace_is_empty() {
        let mut t = BTree::new(8);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        let (vals, _) = t.range(1000, 2000);
        assert!(vals.is_empty());
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BTree::new(8);
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.range(0, u64::MAX).0, Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "order must be at least 3")]
    fn tiny_order_rejected() {
        let _ = BTree::new(2);
    }

    #[test]
    fn remove_round_trips() {
        let mut t = BTree::new(4);
        for k in 0..100u64 {
            t.insert(k, k * 2);
        }
        assert_eq!(t.remove(50), Some(100));
        assert_eq!(t.get(50), None);
        assert_eq!(t.remove(50), None);
        assert_eq!(t.len(), 99);
        // Neighbours unaffected.
        assert_eq!(t.get(49), Some(98));
        assert_eq!(t.get(51), Some(102));
        // Re-insert works.
        assert_eq!(t.insert(50, 7), None);
        assert_eq!(t.get(50), Some(7));
    }

    #[test]
    fn remove_all_then_reuse() {
        let mut t = BTree::new(5);
        for k in 0..500u64 {
            t.insert(k, k);
        }
        for k in 0..500u64 {
            assert_eq!(t.remove(k), Some(k), "key {k}");
        }
        assert!(t.is_empty());
        assert_eq!(t.range(0, u64::MAX).0, Vec::<u64>::new());
        for k in 0..500u64 {
            t.insert(k, k + 1);
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(123), Some(124));
    }

    #[test]
    fn range_skips_removed_keys() {
        let mut t = BTree::new(6);
        for k in 0..50u64 {
            t.insert(k, k);
        }
        for k in (0..50u64).step_by(2) {
            t.remove(k);
        }
        let (vals, _) = t.range(0, 49);
        assert_eq!(vals, (1..50u64).step_by(2).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..400)) {
            let mut model = BTreeMap::new();
            let mut tree = BTree::new(5);
            for (k, v) in ops {
                let (k, v) = (u64::from(k), u64::from(v));
                prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
            }
            for (&k, &v) in &model {
                prop_assert_eq!(tree.get(k), Some(v));
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }

        #[test]
        fn behaves_like_btreemap_with_removals(
            ops in proptest::collection::vec((any::<bool>(), 0u16..256, any::<u16>()), 1..500),
        ) {
            let mut model = BTreeMap::new();
            let mut tree = BTree::new(4);
            for (is_remove, k, v) in ops {
                let (k, v) = (u64::from(k), u64::from(v));
                if is_remove {
                    prop_assert_eq!(tree.remove(k), model.remove(&k));
                } else {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                prop_assert_eq!(tree.len(), model.len() as u64);
            }
            let expected: Vec<u64> = model.values().copied().collect();
            prop_assert_eq!(tree.range(0, u64::MAX).0, expected);
        }

        #[test]
        fn range_matches_model(keys in proptest::collection::btree_set(any::<u16>(), 1..300), lo in any::<u16>(), hi in any::<u16>()) {
            let (lo, hi) = (u64::from(lo.min(hi)), u64::from(lo.max(hi)));
            let mut tree = BTree::new(7);
            for &k in &keys {
                tree.insert(u64::from(k), u64::from(k) + 1);
            }
            let expected: Vec<u64> = keys
                .iter()
                .map(|&k| u64::from(k))
                .filter(|k| (lo..=hi).contains(k))
                .map(|k| k + 1)
                .collect();
            prop_assert_eq!(tree.range(lo, hi).0, expected);
        }
    }
}
