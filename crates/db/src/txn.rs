//! The transaction manager: row-level shared/exclusive locking.
//!
//! Deadlock is avoided by a no-wait policy: a conflicting acquisition fails
//! immediately with [`LockConflict`] and the caller retries or aborts —
//! appropriate for a simulation where blocking would stall the driving
//! event loop.

use crate::table::TableId;
use jas_simkernel::DetMap;

/// Identifier of an open transaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(u64);

/// Lock mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers).
    Exclusive,
}

/// A lock acquisition failed because another transaction holds the row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockConflict {
    /// The contended row.
    pub table: TableId,
    /// The contended key.
    pub key: u64,
}

impl core::fmt::Display for LockConflict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "lock conflict on table {} key {}",
            self.table.0, self.key
        )
    }
}

impl std::error::Error for LockConflict {}

#[derive(Clone, Debug)]
struct LockEntry {
    mode: LockMode,
    owners: Vec<TxnId>,
}

/// Transaction-manager statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Lock acquisitions granted.
    pub locks_granted: u64,
    /// Lock acquisitions refused.
    pub conflicts: u64,
    /// Lock waits that timed out (injected faults).
    pub timeouts: u64,
}

/// The lock and transaction table.
#[derive(Clone, Debug, Default)]
pub struct TxnManager {
    next_id: u64,
    locks: DetMap<(u32, u64), LockEntry>,
    held_by: DetMap<TxnId, Vec<(u32, u64)>>,
    stats: TxnStats,
}

impl TxnManager {
    /// Creates an empty transaction manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a transaction.
    pub fn begin(&mut self) -> TxnId {
        let id = TxnId(self.next_id);
        self.next_id += 1;
        self.held_by.insert(id, Vec::new());
        self.stats.begun += 1;
        id
    }

    /// Acquires a row lock.
    ///
    /// # Errors
    ///
    /// Returns [`LockConflict`] when an incompatible lock is held by another
    /// transaction (no-wait policy). Re-acquiring a lock already held by
    /// `txn` succeeds, including shared→exclusive upgrade when `txn` is the
    /// only holder.
    pub fn lock(
        &mut self,
        txn: TxnId,
        table: TableId,
        key: u64,
        mode: LockMode,
    ) -> Result<(), LockConflict> {
        assert!(self.held_by.contains_key(&txn), "transaction is not open");
        let slot = (table.0, key);
        match self.locks.get_mut(&slot) {
            None => {
                self.locks.insert(
                    slot,
                    LockEntry {
                        mode,
                        owners: vec![txn],
                    },
                );
                self.held_by.get_mut(&txn).expect("open").push(slot);
                self.stats.locks_granted += 1;
                Ok(())
            }
            Some(entry) => {
                let already_owner = entry.owners.contains(&txn);
                let sole_owner = already_owner && entry.owners.len() == 1;
                let compatible = match (entry.mode, mode) {
                    (LockMode::Shared, LockMode::Shared) => true,
                    (LockMode::Shared, LockMode::Exclusive) => sole_owner,
                    (LockMode::Exclusive, _) => already_owner,
                };
                if !compatible {
                    self.stats.conflicts += 1;
                    return Err(LockConflict { table, key });
                }
                if mode == LockMode::Exclusive {
                    entry.mode = LockMode::Exclusive;
                }
                if !already_owner {
                    entry.owners.push(txn);
                    self.held_by.get_mut(&txn).expect("open").push(slot);
                }
                self.stats.locks_granted += 1;
                Ok(())
            }
        }
    }

    /// Commits `txn`, releasing its locks.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is not open.
    pub fn commit(&mut self, txn: TxnId) {
        self.release_all(txn);
        self.stats.committed += 1;
    }

    /// Aborts `txn`, releasing its locks.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is not open.
    pub fn abort(&mut self, txn: TxnId) {
        self.release_all(txn);
        self.stats.aborted += 1;
    }

    fn release_all(&mut self, txn: TxnId) {
        let held = self.held_by.remove(&txn).expect("transaction is not open");
        for slot in held {
            if let Some(entry) = self.locks.get_mut(&slot) {
                entry.owners.retain(|o| *o != txn);
                if entry.owners.is_empty() {
                    self.locks.remove(&slot);
                }
            }
        }
    }

    /// Records a lock-wait timeout (the fault injector fails the wait; the
    /// manager only accounts for it).
    pub fn note_timeout(&mut self) {
        self.stats.timeouts += 1;
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> TxnStats {
        self.stats
    }

    /// Number of currently held row locks.
    #[must_use]
    pub fn held_locks(&self) -> usize {
        self.locks.len()
    }
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for TxnId {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.0.persist(io);
    }
}

impl Persist for LockMode {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag: u64 = match self {
            LockMode::Shared => 0,
            LockMode::Exclusive => 1,
        };
        io.word(&mut tag);
        if !io.saving() {
            *self = if tag == 0 {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            };
        }
    }
}

impl Default for LockEntry {
    fn default() -> Self {
        LockEntry {
            mode: LockMode::Shared,
            owners: Vec::new(),
        }
    }
}

impl Persist for LockEntry {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.mode.persist(io);
        self.owners.persist(io);
    }
}

impl Persist for TxnStats {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.begun.persist(io);
        self.committed.persist(io);
        self.aborted.persist(io);
        self.locks_granted.persist(io);
        self.conflicts.persist(io);
        self.timeouts.persist(io);
    }
}

impl Persist for TxnManager {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.next_id.persist(io);
        snap::persist_map(io, &mut self.locks);
        snap::persist_map(io, &mut self.held_by);
        self.stats.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(1);

    #[test]
    fn shared_locks_coexist() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        assert!(tm.lock(a, T, 1, LockMode::Shared).is_ok());
        assert!(tm.lock(b, T, 1, LockMode::Shared).is_ok());
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        tm.lock(a, T, 1, LockMode::Shared).unwrap();
        assert!(tm.lock(b, T, 1, LockMode::Exclusive).is_err());
        assert_eq!(tm.stats().conflicts, 1);
    }

    #[test]
    fn exclusive_blocks_everyone_else() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        tm.lock(a, T, 1, LockMode::Exclusive).unwrap();
        assert!(tm.lock(b, T, 1, LockMode::Shared).is_err());
        assert!(tm.lock(b, T, 1, LockMode::Exclusive).is_err());
        // But `a` can re-acquire its own lock.
        assert!(tm.lock(a, T, 1, LockMode::Shared).is_ok());
        assert!(tm.lock(a, T, 1, LockMode::Exclusive).is_ok());
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        tm.lock(a, T, 1, LockMode::Shared).unwrap();
        assert!(tm.lock(a, T, 1, LockMode::Exclusive).is_ok());
        // Now nobody else can read it.
        let b = tm.begin();
        assert!(tm.lock(b, T, 1, LockMode::Shared).is_err());
    }

    #[test]
    fn upgrade_refused_with_other_readers() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        tm.lock(a, T, 1, LockMode::Shared).unwrap();
        tm.lock(b, T, 1, LockMode::Shared).unwrap();
        assert!(tm.lock(a, T, 1, LockMode::Exclusive).is_err());
    }

    #[test]
    fn commit_releases_locks() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        tm.lock(a, T, 1, LockMode::Exclusive).unwrap();
        tm.commit(a);
        assert_eq!(tm.held_locks(), 0);
        let b = tm.begin();
        assert!(tm.lock(b, T, 1, LockMode::Exclusive).is_ok());
    }

    #[test]
    fn abort_releases_locks_and_counts() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        tm.lock(a, T, 1, LockMode::Exclusive).unwrap();
        tm.abort(a);
        assert_eq!(tm.stats().aborted, 1);
        assert_eq!(tm.held_locks(), 0);
    }

    #[test]
    fn distinct_rows_never_conflict() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        assert!(tm.lock(a, T, 1, LockMode::Exclusive).is_ok());
        assert!(tm.lock(b, T, 2, LockMode::Exclusive).is_ok());
        assert!(tm.lock(b, TableId(2), 1, LockMode::Exclusive).is_ok());
    }

    #[test]
    #[should_panic(expected = "not open")]
    fn commit_twice_panics() {
        let mut tm = TxnManager::new();
        let a = tm.begin();
        tm.commit(a);
        tm.commit(a);
    }
}
