//! Trace exporters: chrome://tracing JSON and a compact self-describing
//! binary format.
//!
//! Both exporters are pure functions of the event slice, so exporting can
//! never perturb simulation state, and the binary format round-trips
//! losslessly: `from_binary(to_binary(events)) == events`, which makes
//! `binary -> JSON` produce byte-identical output to a direct JSON export.

use crate::event::{TraceEvent, TraceEventKind};
use crate::tracer::digest_of;
use jas_simkernel::SimTime;

/// Magic bytes opening every binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"JTRC";

/// Binary trace format version.
pub const BINARY_VERSION: u16 = 1;

/// Self-describing record layout string embedded in the binary header.
pub const BINARY_LAYOUT: &str = "at:u64le,tid:u64le,code:u64le,arg:u64le";

/// Renders events as chrome://tracing "JSON Object Format", loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Every event becomes an instant event (`"ph": "i"`): `name` is the event
/// label, `cat` the category name, `ts` the sim timestamp in microseconds,
/// `pid` is always 1 (one simulated SUT), and `tid` is the trace id so each
/// request (or core, for quantum events) gets its own track.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let micros = ev.at.as_nanos() as f64 / 1e3;
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{micros:.3},\"pid\":1,\"tid\":{},\
             \"args\":{{\"arg\":{}}}}}",
            ev.what.label(),
            ev.what.category().name(),
            ev.trace_id,
            ev.what.arg()
        ));
    }
    out.push_str(&format!(
        "\n],\"otherData\":{{\"traceDigest\":\"{:#018x}\",\"eventCount\":{}}}}}\n",
        digest_of(events),
        events.len()
    ));
    out
}

/// Serializes events into the compact binary format: a `JTRC` magic, a
/// version, the self-describing record layout string, the event count, and
/// then one 32-byte little-endian record per event.
#[must_use]
pub fn to_binary(events: &[TraceEvent]) -> Vec<u8> {
    let layout = BINARY_LAYOUT.as_bytes();
    let mut out = Vec::with_capacity(16 + layout.len() + events.len() * 32);
    out.extend_from_slice(&BINARY_MAGIC);
    out.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    let layout_len = u16::try_from(layout.len()).unwrap_or(u16::MAX);
    out.extend_from_slice(&layout_len.to_le_bytes());
    out.extend_from_slice(layout);
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for ev in events {
        out.extend_from_slice(&ev.at.as_nanos().to_le_bytes());
        out.extend_from_slice(&ev.trace_id.to_le_bytes());
        out.extend_from_slice(&ev.what.code().to_le_bytes());
        out.extend_from_slice(&ev.what.arg().to_le_bytes());
    }
    out
}

/// Parses a binary trace produced by [`to_binary`] back into events.
///
/// # Errors
///
/// Returns a message describing the first structural problem: bad magic,
/// unsupported version, truncated header or records, or an unknown event
/// code (which would mean the trace came from a newer taxonomy).
pub fn from_binary(bytes: &[u8]) -> Result<Vec<TraceEvent>, String> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.take(4)?;
    if magic != BINARY_MAGIC {
        return Err(format!("bad magic {magic:?}, expected {BINARY_MAGIC:?}"));
    }
    let version = cursor.u16()?;
    if version != BINARY_VERSION {
        return Err(format!(
            "unsupported trace version {version} (this build reads {BINARY_VERSION})"
        ));
    }
    let layout_len = usize::from(cursor.u16()?);
    let _layout = cursor.take(layout_len)?;
    let count = cursor.u64()?;
    let count = usize::try_from(count).map_err(|_| format!("absurd event count {count}"))?;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        let at = cursor.u64()?;
        let trace_id = cursor.u64()?;
        let code = cursor.u64()?;
        let arg = cursor.u64()?;
        let what = TraceEventKind::from_code(code, arg)
            .ok_or_else(|| format!("event {i}: unknown code {code:#x}"))?;
        events.push(TraceEvent {
            at: SimTime::from_nanos(at),
            trace_id,
            what,
        });
    }
    if cursor.pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after {count} events",
            bytes.len() - cursor.pos
        ));
    }
    Ok(events)
}

/// Bounds-checked little-endian reader over the binary payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("truncated trace: need {n} bytes at offset {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, String> {
        let raw = self.take(2)?;
        Ok(u16::from_le_bytes([raw[0], raw[1]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let raw = self.take(8)?;
        let mut buf = [0_u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceCategory;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: SimTime::from_millis(1),
                trace_id: 7,
                what: TraceEventKind::RequestAdmitted { kind: 2 },
            },
            TraceEvent {
                at: SimTime::from_millis(2),
                trace_id: 7,
                what: TraceEventKind::DbLockWait { table: 3 },
            },
            TraceEvent {
                at: SimTime::from_millis(3),
                trace_id: 0,
                what: TraceEventKind::GcPauseEnd {
                    pause_nanos: 1_234_567,
                },
            },
        ]
    }

    #[test]
    fn binary_round_trips_losslessly() {
        let events = sample();
        let bytes = to_binary(&events);
        assert_eq!(&bytes[..4], &BINARY_MAGIC);
        let back = from_binary(&bytes).expect("round-trips");
        assert_eq!(back, events);
        assert_eq!(digest_of(&back), digest_of(&events));
    }

    #[test]
    fn from_binary_rejects_corruption() {
        let events = sample();
        let bytes = to_binary(&events);
        assert!(from_binary(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(from_binary(&wrong_magic).is_err(), "magic");
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xEE;
        assert!(from_binary(&wrong_version).is_err(), "version");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(from_binary(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn chrome_json_mentions_every_event_once() {
        let events = sample();
        let json = to_chrome_json(&events);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), events.len());
        for ev in &events {
            assert!(json.contains(ev.what.label()), "label {}", ev.what.label());
        }
        assert!(json.contains(&format!("{:#018x}", digest_of(&events))));
        assert!(json.contains(TraceCategory::Db.name()));
    }

    #[test]
    fn chrome_json_of_binary_matches_direct_export() {
        let events = sample();
        let via_binary = from_binary(&to_binary(&events)).expect("round-trips");
        assert_eq!(to_chrome_json(&via_binary), to_chrome_json(&events));
    }
}
