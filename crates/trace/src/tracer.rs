//! The trace collector: category filtering, per-core staging buffers with
//! a deterministic merge, and the `TRACE_DIGEST` fingerprint.

use crate::event::{TraceCategory, TraceEvent, TraceEventKind};
use jas_simkernel::SimTime;

/// Which event categories to record, parsed from `--trace <spec>`.
///
/// The default is fully off; an off spec keeps every emission site cold so
/// an untraced run is byte-identical to a build without tracing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSpec {
    mask: u32,
}

impl TraceSpec {
    /// Tracing disabled (the default).
    #[must_use]
    pub fn off() -> Self {
        TraceSpec { mask: 0 }
    }

    /// Every category enabled.
    #[must_use]
    pub fn all() -> Self {
        let mut mask = 0;
        for c in TraceCategory::ALL {
            mask |= c.bit();
        }
        TraceSpec { mask }
    }

    /// Parses a spec: `all`, `off`, or a comma-separated category list
    /// (`req,jms,db,gc`). Category names are the [`TraceCategory::name`]
    /// values.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message naming the unknown category.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec.trim() {
            "all" => return Ok(TraceSpec::all()),
            "off" => return Ok(TraceSpec::off()),
            _ => {}
        }
        let mut mask = 0;
        for part in spec.split(',') {
            let part = part.trim();
            let cat = TraceCategory::ALL.iter().find(|c| c.name() == part);
            match cat {
                Some(c) => mask |= c.bit(),
                None => {
                    let known: Vec<&str> = TraceCategory::ALL.iter().map(|c| c.name()).collect();
                    return Err(format!(
                        "unknown trace category '{part}' (all | off | {})",
                        known.join("|")
                    ));
                }
            }
        }
        Ok(TraceSpec { mask })
    }

    /// `true` when at least one category is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.mask != 0
    }

    /// `true` when `cat` is enabled.
    #[must_use]
    pub fn wants(&self, cat: TraceCategory) -> bool {
        self.mask & cat.bit() != 0
    }
}

/// Append-only, deterministic trace collector.
///
/// Events from the engine's sequential phases go straight into the main
/// buffer via [`Tracer::emit`]. Per-core events (quantum boundaries) are
/// [`Tracer::stage`]d into that core's private buffer and drained in fixed
/// core order by [`Tracer::merge_staged`] at the end of the quantum — the
/// same sequential-merge discipline the CPU model uses for shared-cache
/// reconciliation, so trace order cannot depend on `--threads`.
#[derive(Clone, Debug)]
pub struct Tracer {
    spec: TraceSpec,
    events: Vec<TraceEvent>,
    staged: Vec<Vec<TraceEvent>>,
}

impl Tracer {
    /// A tracer recording the `spec` categories, with one staging buffer
    /// per simulated core.
    #[must_use]
    pub fn new(spec: TraceSpec, cores: usize) -> Self {
        Tracer {
            spec,
            events: Vec::new(),
            staged: vec![Vec::new(); cores],
        }
    }

    /// A fully disabled tracer (no categories, no staging buffers).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::new(TraceSpec::off(), 0)
    }

    /// `true` when any category is recorded — the flag the engine caches
    /// to keep every emission site zero-cost when tracing is off.
    #[must_use]
    pub fn active(&self) -> bool {
        self.spec.enabled()
    }

    /// The spec in force.
    #[must_use]
    pub fn spec(&self) -> TraceSpec {
        self.spec
    }

    /// Records an event from a sequential engine phase (category-filtered).
    pub fn emit(&mut self, at: SimTime, trace_id: u64, what: TraceEventKind) {
        if self.spec.wants(what.category()) {
            self.events.push(TraceEvent { at, trace_id, what });
        }
    }

    /// Stages an event into `core`'s private buffer. Safe to call from
    /// per-core bookkeeping; nothing becomes observable until
    /// [`Tracer::merge_staged`] runs.
    pub fn stage(&mut self, core: usize, at: SimTime, trace_id: u64, what: TraceEventKind) {
        if self.spec.wants(what.category()) {
            self.staged[core].push(TraceEvent { at, trace_id, what });
        }
    }

    /// Drains every staging buffer into the main series in fixed core
    /// order (core 0 first), making the merged order independent of host
    /// thread scheduling.
    pub fn merge_staged(&mut self) {
        for buf in &mut self.staged {
            self.events.append(buf);
        }
    }

    /// All recorded events, in record/merge order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a `TRACE_DIGEST` over `(at, trace_id, code, arg)` of every
    /// event — the fingerprint the CI `trace-smoke` job diffs across
    /// `--threads` values.
    #[must_use]
    pub fn digest(&self) -> u64 {
        digest_of(&self.events)
    }
}

/// FNV-1a digest of an event slice (same value as [`Tracer::digest`] over
/// the same events; exposed for exporter round-trip checks).
#[must_use]
pub fn digest_of(events: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for ev in events {
        mix(ev.at.as_nanos());
        mix(ev.trace_id);
        mix(ev.what.code());
        mix(ev.what.arg());
    }
    hash
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for Tracer {
    // The spec mask is configuration; the staging buffers are per-core
    // (config-sized) and drain at quantum boundaries, but a checkpoint
    // may land while they hold staged events, so they persist in place.
    // jas-lint: allow(D009, reason = "spec is the trace specification from the run plan")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_vec(io, &mut self.events);
        snap::persist_slice(io, &mut self.staged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_all_off_and_lists() {
        assert!(TraceSpec::parse("all").expect("parses").enabled());
        assert!(!TraceSpec::parse("off").expect("parses").enabled());
        let s = TraceSpec::parse("req, jms,db").expect("parses");
        assert!(s.wants(TraceCategory::Request));
        assert!(s.wants(TraceCategory::Jms));
        assert!(s.wants(TraceCategory::Db));
        assert!(!s.wants(TraceCategory::Gc));
        assert!(TraceSpec::parse("bogus").is_err());
        assert!(TraceSpec::parse("req,bogus").is_err());
    }

    #[test]
    fn emit_respects_the_category_mask() {
        let spec = TraceSpec::parse("jms").expect("parses");
        let mut t = Tracer::new(spec, 2);
        t.emit(SimTime::ZERO, 1, TraceEventKind::JmsSend { queue: 0 });
        t.emit(SimTime::ZERO, 1, TraceEventKind::RequestDone);
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].what, TraceEventKind::JmsSend { queue: 0 });
    }

    #[test]
    fn staged_events_merge_in_core_order() {
        let mut t = Tracer::new(TraceSpec::all(), 3);
        // Stage out of core order, as parallel bookkeeping might observe.
        t.stage(
            2,
            SimTime::from_secs(1),
            2,
            TraceEventKind::CoreQuantum { cycles: 30 },
        );
        t.stage(
            0,
            SimTime::from_secs(1),
            0,
            TraceEventKind::CoreQuantum { cycles: 10 },
        );
        t.stage(
            1,
            SimTime::from_secs(1),
            1,
            TraceEventKind::CoreQuantum { cycles: 20 },
        );
        t.merge_staged();
        let ids: Vec<u64> = t.events().iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Buffers drained: a second merge adds nothing.
        t.merge_staged();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn digest_depends_on_order_id_time_and_payload() {
        let ev = |id: u64, q: u32| TraceEvent {
            at: SimTime::from_secs(1),
            trace_id: id,
            what: TraceEventKind::JmsSend { queue: q },
        };
        let mut a = Tracer::new(TraceSpec::all(), 0);
        a.emit(ev(1, 0).at, 1, ev(1, 0).what);
        a.emit(ev(2, 0).at, 2, ev(2, 0).what);
        let mut b = Tracer::new(TraceSpec::all(), 0);
        b.emit(ev(2, 0).at, 2, ev(2, 0).what);
        b.emit(ev(1, 0).at, 1, ev(1, 0).what);
        assert_ne!(a.digest(), b.digest(), "order must matter");
        let mut c = Tracer::new(TraceSpec::all(), 0);
        c.emit(ev(1, 0).at, 1, ev(1, 0).what);
        c.emit(ev(2, 0).at, 2, ev(2, 0).what);
        assert_eq!(a.digest(), c.digest());
        let mut d = Tracer::new(TraceSpec::all(), 0);
        d.emit(ev(1, 0).at, 1, ev(1, 1).what);
        d.emit(ev(2, 0).at, 2, ev(2, 0).what);
        assert_ne!(a.digest(), d.digest(), "payload must matter");
        assert_ne!(a.digest(), Tracer::disabled().digest());
    }
}
