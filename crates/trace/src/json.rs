//! A minimal JSON parser, just enough for the in-repo trace validator.
//!
//! The workspace is offline-only (no new dependencies), so the
//! `trace-validate` binary cannot pull in `serde_json`. This module
//! implements the subset of JSON the chrome://tracing exporter produces
//! and the checked-in schema uses. Object members keep source order in a
//! `Vec` (the workspace determinism lint bans `HashMap` in simulation
//! crates, and ordered members make validator error messages stable).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; members in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The JSON type name, as the schema's `type` keyword spells it.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        let end = self.pos + word.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == word.as_bytes() {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            if end > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..end])
                                .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // exporter; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos = end;
                        }
                        other => {
                            return Err(self.err(&format!("bad escape '\\{}'", char::from(other))))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; advance by its width.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").expect("parses"), JsonValue::Null);
        assert_eq!(parse(" true ").expect("parses"), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e1").expect("parses"), JsonValue::Number(-25.0));
        assert_eq!(
            parse("\"a\\nb\"").expect("parses"),
            JsonValue::String("a\nb".to_owned())
        );
        let doc = parse("{\"k\": [1, {\"n\": null}], \"z\": false}").expect("parses");
        let arr = doc.get("k").and_then(JsonValue::as_array).expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("n"), Some(&JsonValue::Null));
        assert_eq!(doc.get("z"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"open", "1 2", "{]"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_exporter_output() {
        let events = vec![crate::TraceEvent {
            at: jas_simkernel::SimTime::from_millis(5),
            trace_id: 3,
            what: crate::TraceEventKind::RequestDone,
        }];
        let doc = parse(&crate::export::to_chrome_json(&events)).expect("exporter JSON parses");
        let items = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].get("ts").and_then(JsonValue::as_f64), Some(5000.0));
        assert_eq!(items[0].get("pid").and_then(JsonValue::as_f64), Some(1.0));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").expect("parses"),
            JsonValue::String("Aé".to_owned())
        );
    }
}
