//! Deterministic structured tracing for the jas2004 simulator, plus host
//! self-profiling.
//!
//! The source paper is a *measurement study*: its artifact is the
//! methodology (HPM counters, `tprof`, `vmstat`, verbose-GC) applied to a
//! 3-tier request flow. This crate turns the reproduction into the same
//! kind of instrument for itself:
//!
//! * **Request tracing** ([`Tracer`], [`TraceEvent`]): every workload
//!   request carries a trace id, and instrumentation points across the
//!   application server (pool seizure, RMI dispatch, JMS delivery and
//!   redelivery, retry/breaker decisions), the database (lock waits,
//!   buffer-pool I/O), the JVM (GC pauses, allocation epochs), and the
//!   CPU/HPM layer (per-core quantum boundaries, counter samples) emit
//!   sim-timestamped events. Events from the engine's sequential phases
//!   append directly; per-core events are staged into per-core buffers and
//!   merged in fixed core order, so the trace — and its FNV-1a
//!   [`Tracer::digest`] — is bit-identical at any `--threads` value.
//! * **Exporters** ([`export`]): chrome://tracing / Perfetto JSON and a
//!   compact self-describing binary format that round-trips losslessly.
//! * **Host self-profiling** ([`HostProf`]): a scoped-timer layer
//!   answering the paper's "where do the cycles go" question for the
//!   simulator itself — host wall-clock is confined to [`hostprof`] (the
//!   one module the workspace lint exempts from the wall-clock rule) and
//!   never enters simulation state.
//!
//! A disabled tracer ([`TraceSpec::off`]) is zero-cost: the engine caches
//! `Tracer::active` and skips every emission site, the same discipline
//! `jas-faults` uses for an empty fault plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod export;
pub mod hostprof;
pub mod json;
mod tracer;

pub use event::{TraceCategory, TraceEvent, TraceEventKind};
pub use hostprof::{HostProf, HostProfReport, HostSection};
pub use tracer::{digest_of, TraceSpec, Tracer};
