//! Host self-profiling: where does *host* time go inside the simulator?
//!
//! The source paper spends its effort asking "where do the cycles go" for
//! the SUT; this module asks the same question about the simulator
//! process. It is the **only** module in the workspace allowed to touch
//! `std::time::Instant` (the determinism lint's D002 rule carries an
//! explicit exemption for this file): host wall-clock readings accumulate
//! into plain totals here and are rendered into a separate `HOSTPROF`
//! report section, never fed back into simulation state. Nothing in a sim
//! digest can depend on anything this module measures.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A coarse phase of the simulator's main loop, used as a bucket key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostSection {
    /// Arrival scheduling and admission (sequential).
    Schedule,
    /// The sequential plan phase before parallel execution.
    Plan,
    /// Parallel (or inline) per-core quantum execution.
    Execute,
    /// Sequential reconcile: shared-cache merge, counters, staged traces.
    Reconcile,
    /// GC slice accounting.
    Gc,
    /// Instrument upkeep: HPM sampling, tprof/vmstat, tracing.
    Instruments,
}

impl HostSection {
    /// Every section, in report order.
    pub const ALL: [HostSection; 6] = [
        HostSection::Schedule,
        HostSection::Plan,
        HostSection::Execute,
        HostSection::Reconcile,
        HostSection::Gc,
        HostSection::Instruments,
    ];

    /// Short report label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HostSection::Schedule => "schedule",
            HostSection::Plan => "plan",
            HostSection::Execute => "execute",
            HostSection::Reconcile => "reconcile",
            HostSection::Gc => "gc",
            HostSection::Instruments => "instruments",
        }
    }

    fn index(self) -> usize {
        match self {
            HostSection::Schedule => 0,
            HostSection::Plan => 1,
            HostSection::Execute => 2,
            HostSection::Reconcile => 3,
            HostSection::Gc => 4,
            HostSection::Instruments => 5,
        }
    }
}

/// Scoped-timer accumulator for host time per engine phase.
///
/// Usage is strictly bracketed: `begin(section)` … `end()`. Nested scopes
/// are not supported (the engine's phases do not nest); a `begin` while a
/// scope is open closes the open one first so a missed `end` loses no
/// time.
#[derive(Debug)]
pub struct HostProf {
    totals: [Duration; HostSection::ALL.len()],
    spans: [u64; HostSection::ALL.len()],
    current: Option<(HostSection, Instant)>,
    started: Instant,
    quanta: u64,
}

impl Default for HostProf {
    fn default() -> Self {
        HostProf::new()
    }
}

impl HostProf {
    /// A fresh profiler; the overall clock starts now.
    #[must_use]
    pub fn new() -> Self {
        HostProf {
            totals: [Duration::ZERO; HostSection::ALL.len()],
            spans: [0; HostSection::ALL.len()],
            current: None,
            started: Instant::now(),
            quanta: 0,
        }
    }

    /// Opens a scope attributed to `section`, closing any open scope.
    pub fn begin(&mut self, section: HostSection) {
        self.end();
        self.current = Some((section, Instant::now()));
    }

    /// Closes the open scope, if any, accumulating its elapsed host time.
    pub fn end(&mut self) {
        if let Some((section, t0)) = self.current.take() {
            self.totals[section.index()] += t0.elapsed();
            self.spans[section.index()] += 1;
        }
    }

    /// Counts one completed simulation quantum (for per-quantum means).
    pub fn note_quantum(&mut self) {
        self.quanta += 1;
    }

    /// Snapshots the accumulated totals into a host-clock-free report.
    #[must_use]
    pub fn report(&self) -> HostProfReport {
        let section_secs = HostSection::ALL.map(|s| self.totals[s.index()].as_secs_f64());
        let section_spans = HostSection::ALL.map(|s| self.spans[s.index()]);
        HostProfReport {
            wall_secs: self.started.elapsed().as_secs_f64(),
            section_secs,
            section_spans,
            quanta: self.quanta,
        }
    }
}

/// Plain numbers distilled from a [`HostProf`]: safe to store, print, and
/// compare anywhere, because the `Instant`s have already been collapsed
/// into durations.
#[derive(Clone, Debug, PartialEq)]
pub struct HostProfReport {
    /// Host wall-clock seconds from profiler creation to snapshot.
    pub wall_secs: f64,
    /// Accumulated host seconds per section, in [`HostSection::ALL`] order.
    pub section_secs: [f64; HostSection::ALL.len()],
    /// Number of closed scopes per section, same order.
    pub section_spans: [u64; HostSection::ALL.len()],
    /// Simulation quanta executed while profiling.
    pub quanta: u64,
}

impl HostProfReport {
    /// Renders the `HOSTPROF` text section: per-phase host milliseconds,
    /// share of attributed time, and mean microseconds per quantum.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let attributed: f64 = self.section_secs.iter().sum();
        let _ = writeln!(out, "HOSTPROF host self-profile");
        let _ = writeln!(
            out,
            "  wall {:.3}s · attributed {:.3}s · {} quanta",
            self.wall_secs, attributed, self.quanta
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>7} {:>10} {:>12}",
            "section", "host ms", "share", "spans", "us/quantum"
        );
        for (i, section) in HostSection::ALL.iter().enumerate() {
            let secs = self.section_secs[i];
            let share = if attributed > 0.0 {
                100.0 * secs / attributed
            } else {
                0.0
            };
            let per_quantum = if self.quanta > 0 {
                1e6 * secs / self.quanta as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>10.3} {:>6.1}% {:>10} {:>12.2}",
                section.name(),
                secs * 1e3,
                share,
                self.section_spans[i],
                per_quantum
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_into_their_sections() {
        let mut prof = HostProf::new();
        prof.begin(HostSection::Execute);
        prof.end();
        prof.begin(HostSection::Reconcile);
        // A begin with a scope still open closes the open one.
        prof.begin(HostSection::Execute);
        prof.end();
        prof.note_quantum();
        let report = prof.report();
        let exec = HostSection::Execute.index();
        let reconcile = HostSection::Reconcile.index();
        assert_eq!(report.section_spans[exec], 2);
        assert_eq!(report.section_spans[reconcile], 1);
        assert_eq!(report.quanta, 1);
        assert!(report.wall_secs >= 0.0);
    }

    #[test]
    fn end_without_begin_is_harmless() {
        let mut prof = HostProf::new();
        prof.end();
        prof.end();
        assert_eq!(prof.report().section_spans, [0; HostSection::ALL.len()]);
    }

    #[test]
    fn render_names_every_section() {
        let mut prof = HostProf::new();
        prof.begin(HostSection::Plan);
        prof.end();
        let text = prof.report().render();
        assert!(text.starts_with("HOSTPROF"));
        for section in HostSection::ALL {
            assert!(text.contains(section.name()), "missing {}", section.name());
        }
    }
}
