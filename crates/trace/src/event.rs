//! The trace event taxonomy: what can happen to a request end-to-end, with
//! stable digest codes and export labels.

use jas_simkernel::SimTime;

/// Coarse event family, used to filter emission (`--trace <spec>`) and to
/// group events in exported traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceCategory {
    /// Request lifecycle: admission, completion, failure.
    Request,
    /// Application-server pool activity (grants, queueing, seizure).
    Pool,
    /// RMI/ORB dispatch.
    Rmi,
    /// JMS messaging: send, delivery, redelivery, dead-lettering.
    Jms,
    /// Database tier: commits, lock waits, buffer-pool I/O.
    Db,
    /// Resilience decisions: retries and circuit-breaker transitions.
    Resilience,
    /// Garbage-collection pauses.
    Gc,
    /// Allocation epochs.
    Alloc,
    /// Per-core scheduler-quantum boundaries.
    Quantum,
    /// Periodic hardware-counter samples.
    Hpm,
}

impl TraceCategory {
    /// Every category, in mask-bit order.
    pub const ALL: [TraceCategory; 10] = [
        TraceCategory::Request,
        TraceCategory::Pool,
        TraceCategory::Rmi,
        TraceCategory::Jms,
        TraceCategory::Db,
        TraceCategory::Resilience,
        TraceCategory::Gc,
        TraceCategory::Alloc,
        TraceCategory::Quantum,
        TraceCategory::Hpm,
    ];

    /// The category's bit in a [`crate::TraceSpec`] mask.
    #[must_use]
    pub fn bit(self) -> u32 {
        let idx = TraceCategory::ALL
            .iter()
            .position(|&c| c == self)
            .expect("category is in ALL");
        1 << idx
    }

    /// The spec/export name of this category.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceCategory::Request => "req",
            TraceCategory::Pool => "pool",
            TraceCategory::Rmi => "rmi",
            TraceCategory::Jms => "jms",
            TraceCategory::Db => "db",
            TraceCategory::Resilience => "resil",
            TraceCategory::Gc => "gc",
            TraceCategory::Alloc => "alloc",
            TraceCategory::Quantum => "quantum",
            TraceCategory::Hpm => "hpm",
        }
    }
}

/// What happened. Every variant carries at most one `u64`-encodable
/// argument so the binary format stays fixed-width and the digest covers
/// the full payload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A request entered the system; the argument is its
    /// `RequestKind` index.
    RequestAdmitted {
        /// Index of the request kind in `RequestKind::ALL`.
        kind: u8,
    },
    /// The request committed.
    #[default]
    RequestDone,
    /// The request failed permanently.
    RequestFailed,
    /// A pool admission was granted immediately.
    PoolGranted {
        /// Pool index (web, ORB, JDBC, JMS listener).
        pool: u8,
    },
    /// A pool admission queued behind exhausted capacity.
    PoolQueued {
        /// Pool index.
        pool: u8,
    },
    /// A fault seized pool threads; the argument is the seized level.
    PoolSeized {
        /// Number of threads currently seized.
        level: u64,
    },
    /// The request was dispatched through the ORB (RMI).
    RmiDispatch,
    /// A message was sent to a queue.
    JmsSend {
        /// Destination queue id.
        queue: u32,
    },
    /// A message was delivered from a queue to a consumer.
    JmsDeliver {
        /// Source queue id.
        queue: u32,
    },
    /// A delivery rolled back and the message returned for redelivery.
    JmsRedeliver {
        /// Delivery attempts so far.
        attempt: u32,
    },
    /// A message exhausted its delivery budget and was dead-lettered.
    JmsDeadLetter,
    /// A database statement committed; the argument is its CPU cost in
    /// full-scale instructions.
    DbCommit {
        /// Full-scale instructions the statement cost.
        instructions: u64,
    },
    /// A statement lost a row-lock race and backed off.
    DbLockWait {
        /// The contended table id.
        table: u64,
    },
    /// A statement missed in the buffer pool and did real I/O.
    DbIo {
        /// Buffer-pool misses charged to the statement.
        misses: u64,
    },
    /// A failed statement was scheduled for a bounded-backoff retry.
    Retry {
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// The DB circuit breaker tripped open.
    BreakerOpen,
    /// The breaker moved open → half-open.
    BreakerHalfOpen,
    /// A half-open probe succeeded and the breaker closed.
    BreakerClosed,
    /// A stop-the-world GC pause began; the argument is used heap bytes.
    GcPauseStart {
        /// Used heap bytes when the pause began.
        used_bytes: u64,
    },
    /// The pause ended; the argument is its length in sim-nanoseconds.
    GcPauseEnd {
        /// Pause length in nanoseconds of simulated time.
        pause_nanos: u64,
    },
    /// An allocation epoch marker; the argument is cumulative allocated
    /// bytes, so deltas between markers give the allocation rate.
    AllocEpoch {
        /// Cumulative bytes allocated by the JVM so far.
        allocated_bytes: u64,
    },
    /// One core finished a scheduler quantum (staged per core, merged in
    /// fixed core order); the argument is busy cycles in the quantum.
    CoreQuantum {
        /// Cycles the core spent busy (user + system) this quantum.
        cycles: u64,
    },
    /// A periodic HPM sample window closed; the argument is cumulative
    /// completed instructions.
    HpmSample {
        /// Machine-wide completed instructions so far.
        instructions: u64,
    },
}

impl TraceEventKind {
    /// Stable digest/wire code; changing any value invalidates pinned
    /// `TRACE_DIGEST`s and breaks old binary traces.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            TraceEventKind::RequestAdmitted { .. } => 0x01,
            TraceEventKind::RequestDone => 0x02,
            TraceEventKind::RequestFailed => 0x03,
            TraceEventKind::PoolGranted { .. } => 0x10,
            TraceEventKind::PoolQueued { .. } => 0x11,
            TraceEventKind::PoolSeized { .. } => 0x12,
            TraceEventKind::RmiDispatch => 0x20,
            TraceEventKind::JmsSend { .. } => 0x30,
            TraceEventKind::JmsDeliver { .. } => 0x31,
            TraceEventKind::JmsRedeliver { .. } => 0x32,
            TraceEventKind::JmsDeadLetter => 0x33,
            TraceEventKind::DbCommit { .. } => 0x40,
            TraceEventKind::DbLockWait { .. } => 0x41,
            TraceEventKind::DbIo { .. } => 0x42,
            TraceEventKind::Retry { .. } => 0x50,
            TraceEventKind::BreakerOpen => 0x51,
            TraceEventKind::BreakerHalfOpen => 0x52,
            TraceEventKind::BreakerClosed => 0x53,
            TraceEventKind::GcPauseStart { .. } => 0x60,
            TraceEventKind::GcPauseEnd { .. } => 0x61,
            TraceEventKind::AllocEpoch { .. } => 0x70,
            TraceEventKind::CoreQuantum { .. } => 0x80,
            TraceEventKind::HpmSample { .. } => 0x90,
        }
    }

    /// The single `u64` argument carried on the wire (0 for payload-free
    /// variants).
    #[must_use]
    pub fn arg(self) -> u64 {
        match self {
            TraceEventKind::RequestAdmitted { kind } => u64::from(kind),
            TraceEventKind::PoolGranted { pool } | TraceEventKind::PoolQueued { pool } => {
                u64::from(pool)
            }
            TraceEventKind::PoolSeized { level } => level,
            TraceEventKind::JmsSend { queue } | TraceEventKind::JmsDeliver { queue } => {
                u64::from(queue)
            }
            TraceEventKind::JmsRedeliver { attempt } | TraceEventKind::Retry { attempt } => {
                u64::from(attempt)
            }
            TraceEventKind::DbCommit { instructions } => instructions,
            TraceEventKind::DbLockWait { table } => table,
            TraceEventKind::DbIo { misses } => misses,
            TraceEventKind::GcPauseStart { used_bytes } => used_bytes,
            TraceEventKind::GcPauseEnd { pause_nanos } => pause_nanos,
            TraceEventKind::AllocEpoch { allocated_bytes } => allocated_bytes,
            TraceEventKind::CoreQuantum { cycles } => cycles,
            TraceEventKind::HpmSample { instructions } => instructions,
            TraceEventKind::RequestDone
            | TraceEventKind::RequestFailed
            | TraceEventKind::RmiDispatch
            | TraceEventKind::JmsDeadLetter
            | TraceEventKind::BreakerOpen
            | TraceEventKind::BreakerHalfOpen
            | TraceEventKind::BreakerClosed => 0,
        }
    }

    /// Reconstructs a kind from its wire `(code, arg)` pair (the inverse
    /// of [`TraceEventKind::code`] + [`TraceEventKind::arg`]).
    #[must_use]
    pub fn from_code(code: u64, arg: u64) -> Option<TraceEventKind> {
        Some(match code {
            0x01 => TraceEventKind::RequestAdmitted { kind: arg as u8 },
            0x02 => TraceEventKind::RequestDone,
            0x03 => TraceEventKind::RequestFailed,
            0x10 => TraceEventKind::PoolGranted { pool: arg as u8 },
            0x11 => TraceEventKind::PoolQueued { pool: arg as u8 },
            0x12 => TraceEventKind::PoolSeized { level: arg },
            0x20 => TraceEventKind::RmiDispatch,
            0x30 => TraceEventKind::JmsSend { queue: arg as u32 },
            0x31 => TraceEventKind::JmsDeliver { queue: arg as u32 },
            0x32 => TraceEventKind::JmsRedeliver {
                attempt: arg as u32,
            },
            0x33 => TraceEventKind::JmsDeadLetter,
            0x40 => TraceEventKind::DbCommit { instructions: arg },
            0x41 => TraceEventKind::DbLockWait { table: arg },
            0x42 => TraceEventKind::DbIo { misses: arg },
            0x50 => TraceEventKind::Retry {
                attempt: arg as u32,
            },
            0x51 => TraceEventKind::BreakerOpen,
            0x52 => TraceEventKind::BreakerHalfOpen,
            0x53 => TraceEventKind::BreakerClosed,
            0x60 => TraceEventKind::GcPauseStart { used_bytes: arg },
            0x61 => TraceEventKind::GcPauseEnd { pause_nanos: arg },
            0x70 => TraceEventKind::AllocEpoch {
                allocated_bytes: arg,
            },
            0x80 => TraceEventKind::CoreQuantum { cycles: arg },
            0x90 => TraceEventKind::HpmSample { instructions: arg },
            _ => return None,
        })
    }

    /// The category this kind belongs to (drives `--trace` filtering).
    #[must_use]
    pub fn category(self) -> TraceCategory {
        match self {
            TraceEventKind::RequestAdmitted { .. }
            | TraceEventKind::RequestDone
            | TraceEventKind::RequestFailed => TraceCategory::Request,
            TraceEventKind::PoolGranted { .. }
            | TraceEventKind::PoolQueued { .. }
            | TraceEventKind::PoolSeized { .. } => TraceCategory::Pool,
            TraceEventKind::RmiDispatch => TraceCategory::Rmi,
            TraceEventKind::JmsSend { .. }
            | TraceEventKind::JmsDeliver { .. }
            | TraceEventKind::JmsRedeliver { .. }
            | TraceEventKind::JmsDeadLetter => TraceCategory::Jms,
            TraceEventKind::DbCommit { .. }
            | TraceEventKind::DbLockWait { .. }
            | TraceEventKind::DbIo { .. } => TraceCategory::Db,
            TraceEventKind::Retry { .. }
            | TraceEventKind::BreakerOpen
            | TraceEventKind::BreakerHalfOpen
            | TraceEventKind::BreakerClosed => TraceCategory::Resilience,
            TraceEventKind::GcPauseStart { .. } | TraceEventKind::GcPauseEnd { .. } => {
                TraceCategory::Gc
            }
            TraceEventKind::AllocEpoch { .. } => TraceCategory::Alloc,
            TraceEventKind::CoreQuantum { .. } => TraceCategory::Quantum,
            TraceEventKind::HpmSample { .. } => TraceCategory::Hpm,
        }
    }

    /// Short export label (the `name` field in chrome://tracing output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::RequestAdmitted { .. } => "req-admit",
            TraceEventKind::RequestDone => "req-done",
            TraceEventKind::RequestFailed => "req-fail",
            TraceEventKind::PoolGranted { .. } => "pool-grant",
            TraceEventKind::PoolQueued { .. } => "pool-queue",
            TraceEventKind::PoolSeized { .. } => "pool-seize",
            TraceEventKind::RmiDispatch => "rmi-dispatch",
            TraceEventKind::JmsSend { .. } => "jms-send",
            TraceEventKind::JmsDeliver { .. } => "jms-deliver",
            TraceEventKind::JmsRedeliver { .. } => "jms-redeliver",
            TraceEventKind::JmsDeadLetter => "jms-dead-letter",
            TraceEventKind::DbCommit { .. } => "db-commit",
            TraceEventKind::DbLockWait { .. } => "db-lock-wait",
            TraceEventKind::DbIo { .. } => "db-io",
            TraceEventKind::Retry { .. } => "retry",
            TraceEventKind::BreakerOpen => "breaker-open",
            TraceEventKind::BreakerHalfOpen => "breaker-half-open",
            TraceEventKind::BreakerClosed => "breaker-closed",
            TraceEventKind::GcPauseStart { .. } => "gc-pause-start",
            TraceEventKind::GcPauseEnd { .. } => "gc-pause-end",
            TraceEventKind::AllocEpoch { .. } => "alloc-epoch",
            TraceEventKind::CoreQuantum { .. } => "core-quantum",
            TraceEventKind::HpmSample { .. } => "hpm-sample",
        }
    }
}

/// One sim-timestamped trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim-clock instant the event was recorded.
    pub at: SimTime,
    /// Trace id: `task index + 1` for request-scoped events, the core
    /// index for [`TraceEventKind::CoreQuantum`], 0 for system-wide
    /// events (GC, HPM samples, pool seizure).
    pub trace_id: u64,
    /// What happened.
    pub what: TraceEventKind,
}
// --- Checkpoint persistence ---

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for TraceEventKind {
    // Reuses the stable wire encoding: `(code, arg)` round-trips every
    // variant via `from_code`.
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut code = self.code();
        let mut arg = self.arg();
        io.word(&mut code);
        io.word(&mut arg);
        if !io.saving() {
            *self = TraceEventKind::from_code(code, arg).unwrap_or_default();
        }
    }
}

impl Default for TraceEvent {
    fn default() -> Self {
        TraceEvent {
            at: SimTime::ZERO,
            trace_id: 0,
            what: TraceEventKind::default(),
        }
    }
}

impl Persist for TraceEvent {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.at.persist(io);
        self.trace_id.persist(io);
        self.what.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every variant, payload bits set high enough to
    /// catch truncation in the wire round-trip.
    fn zoo() -> Vec<TraceEventKind> {
        vec![
            TraceEventKind::RequestAdmitted { kind: 4 },
            TraceEventKind::RequestDone,
            TraceEventKind::RequestFailed,
            TraceEventKind::PoolGranted { pool: 3 },
            TraceEventKind::PoolQueued { pool: 1 },
            TraceEventKind::PoolSeized { level: 37 },
            TraceEventKind::RmiDispatch,
            TraceEventKind::JmsSend { queue: 9 },
            TraceEventKind::JmsDeliver { queue: 9 },
            TraceEventKind::JmsRedeliver { attempt: 2 },
            TraceEventKind::JmsDeadLetter,
            TraceEventKind::DbCommit {
                instructions: 1 << 40,
            },
            TraceEventKind::DbLockWait { table: 6 },
            TraceEventKind::DbIo { misses: 11 },
            TraceEventKind::Retry { attempt: 3 },
            TraceEventKind::BreakerOpen,
            TraceEventKind::BreakerHalfOpen,
            TraceEventKind::BreakerClosed,
            TraceEventKind::GcPauseStart {
                used_bytes: 200 << 20,
            },
            TraceEventKind::GcPauseEnd {
                pause_nanos: 350_000_000,
            },
            TraceEventKind::AllocEpoch {
                allocated_bytes: 3 << 30,
            },
            TraceEventKind::CoreQuantum { cycles: 123_456 },
            TraceEventKind::HpmSample {
                instructions: 1 << 50,
            },
        ]
    }

    #[test]
    fn codes_are_distinct() {
        let mut codes: Vec<u64> = zoo().into_iter().map(TraceEventKind::code).collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate digest codes");
    }

    #[test]
    fn code_arg_round_trips_every_variant() {
        for kind in zoo() {
            let back = TraceEventKind::from_code(kind.code(), kind.arg());
            assert_eq!(back, Some(kind));
        }
        assert_eq!(TraceEventKind::from_code(0xFFFF, 0), None);
    }

    #[test]
    fn category_bits_are_distinct_and_cover_all() {
        let mut mask = 0u32;
        for c in TraceCategory::ALL {
            assert_eq!(mask & c.bit(), 0, "overlapping bit for {c:?}");
            mask |= c.bit();
        }
        assert_eq!(mask.count_ones() as usize, TraceCategory::ALL.len());
    }

    #[test]
    fn labels_and_names_are_nonempty_and_unique() {
        let labels: Vec<&str> = zoo().into_iter().map(TraceEventKind::label).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        for c in TraceCategory::ALL {
            assert!(!c.name().is_empty());
        }
    }
}
