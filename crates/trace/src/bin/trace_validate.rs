//! `trace-validate` — checks an exported chrome://tracing JSON trace
//! against the checked-in schema (`docs/trace-schema.json`).
//!
//! The CI `trace-smoke` job runs this offline; the validator therefore
//! implements the small JSON-Schema subset the checked-in schema uses
//! (`type`, `required`, `properties`, `items`, `enum`, `minItems`) on top
//! of the crate's own JSON parser — no external dependencies.

use jas_trace::json::{self, JsonValue};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (schema_path, trace_path) = match args.as_slice() {
        [schema, trace] => (schema, trace),
        _ => {
            eprintln!("usage: trace-validate <schema.json> <trace.json>");
            return ExitCode::FAILURE;
        }
    };
    let schema = match load(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trace-validate: schema {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match load(trace_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trace-validate: trace {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut errors = Vec::new();
    validate(&trace, &schema, "$", &mut errors);
    if errors.is_empty() {
        let events = trace
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .map_or(0, <[JsonValue]>::len);
        println!("trace-validate: OK ({events} events, schema {schema_path})");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("trace-validate: {e}");
        }
        eprintln!("trace-validate: FAILED with {} error(s)", errors.len());
        ExitCode::FAILURE
    }
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    json::parse(&text)
}

/// Validates `value` against the JSON-Schema subset in `schema`,
/// appending human-readable problems (with JSONPath-ish locations) to
/// `errors`.
fn validate(value: &JsonValue, schema: &JsonValue, path: &str, errors: &mut Vec<String>) {
    if let Some(expected) = schema.get("type").and_then(JsonValue::as_str) {
        if !type_matches(value, expected) {
            errors.push(format!(
                "{path}: expected {expected}, got {}",
                value.type_name()
            ));
            return;
        }
    }
    if let Some(allowed) = schema.get("enum").and_then(JsonValue::as_array) {
        if !allowed.contains(value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }
    if let Some(required) = schema.get("required").and_then(JsonValue::as_array) {
        for key in required {
            if let Some(name) = key.as_str() {
                if value.get(name).is_none() {
                    errors.push(format!("{path}: missing required member '{name}'"));
                }
            }
        }
    }
    if let Some(JsonValue::Object(props)) = schema.get("properties") {
        for (name, subschema) in props {
            if let Some(member) = value.get(name) {
                validate(member, subschema, &format!("{path}.{name}"), errors);
            }
        }
    }
    if let Some(min) = schema.get("minItems").and_then(JsonValue::as_f64) {
        if let Some(items) = value.as_array() {
            if (items.len() as f64) < min {
                errors.push(format!("{path}: fewer than {min} items"));
            }
        }
    }
    if let Some(item_schema) = schema.get("items") {
        if let Some(items) = value.as_array() {
            for (i, item) in items.iter().enumerate() {
                validate(item, item_schema, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn type_matches(value: &JsonValue, expected: &str) -> bool {
    match expected {
        "integer" => value
            .as_f64()
            .is_some_and(|n| n.is_finite() && n.fract() == 0.0),
        other => value.type_name() == other,
    }
}
