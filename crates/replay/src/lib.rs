//! jas-replay: checkpoint/restore, trace-driven replay, and witness
//! reduction for the `jas2004` simulator.
//!
//! This crate is the instrument face of three engine capabilities
//! (cf. the record-reduce-replay pattern of Wasm-R3 and the gem5
//! standardized-resources argument that checkpoints plus pinned replayable
//! artifacts are what make a simulator a reusable instrument):
//!
//! * **Checkpoint/restore** — [`checkpoint_bytes`] serializes the full
//!   mutable simulation state into a versioned, FNV-1a-digested `.jckpt`
//!   stream; [`restore_engine`] resumes it bit-identically at any
//!   `--threads` value. Layout: `docs/jckpt-format.md`, pinned by
//!   `tests/format_pin.rs`.
//! * **Trace-driven replay** — [`record_run`] captures the request stream
//!   (arrivals + compiled plans) a run consumed; [`replay_run`] re-executes
//!   it through the appserver/db/jvm tiers without the workload generator,
//!   reproducing the same per-request verdicts and `TRACE_DIGEST`.
//! * **Witness reduction** — [`reduce_divergence`] binary-searches the
//!   checkpoint timeline between two diverging runs down to the smallest
//!   `[checkpoint, window]` witness, emitted as a self-contained
//!   [`DivergenceWitness`] artifact.
//!
//! CI's `replay-smoke` job drives all three through the `jas2004` binary's
//! `--checkpoint-at` / `--restore-from` / `--record` / `--replay` /
//! `--reduce` flags; the heavy full-length smokes moved to the nightly
//! workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;

pub use jas2004::checkpoint::{
    checkpoint_bytes, config_fingerprint, restore_engine, validate_checkpoint, JCKPT_MAGIC,
    JCKPT_VERSION,
};
pub use jas2004::reduce::{reduce_divergence, DivergenceWitness, WITNESS_MAGIC};
pub use jas2004::{Engine, RunArtifacts, RunPlan, SchedMode, SutConfig};
pub use jas_workload::{ReplayLog, ReplayScenario};

/// Runs `cfg`/`plan` to completion while recording the request stream,
/// returning the run's artifacts and the replay log.
///
/// The log substitutes for the workload generator: feeding it back through
/// [`replay_run`] under the same configuration reproduces the run's
/// verdicts and digests without drawing a single arrival.
#[must_use]
pub fn record_run(cfg: &SutConfig, plan: RunPlan) -> (RunArtifacts, ReplayLog) {
    let mut engine = Engine::new(cfg.clone(), plan);
    engine.start_recording();
    engine.run_to_end();
    let log = engine
        .take_recording()
        .expect("recording was started and never taken");
    (jas2004::run_artifacts_from(cfg.clone(), plan, engine), log)
}

/// Re-executes a recorded request stream under `cfg`/`plan`, bypassing the
/// workload generator entirely.
#[must_use]
pub fn replay_run(cfg: &SutConfig, plan: RunPlan, log: ReplayLog) -> RunArtifacts {
    let mut engine = Engine::new(cfg.clone(), plan);
    engine.arm_replay(log);
    engine.run_to_end();
    jas2004::run_artifacts_from(cfg.clone(), plan, engine)
}

/// Restores a `.jckpt` stream and runs the engine to the end of its plan,
/// returning the finished run's artifacts.
///
/// # Errors
///
/// Fails on any [`restore_engine`] validation error.
pub fn resume_run(cfg: &SutConfig, plan: RunPlan, bytes: &[u8]) -> Result<RunArtifacts, String> {
    let mut engine = restore_engine(cfg, plan, bytes)?;
    engine.run_to_end();
    Ok(jas2004::run_artifacts_from(cfg.clone(), plan, engine))
}

/// Writes a `.jckpt` (or witness, or replay-log) byte stream to `path`.
///
/// # Errors
///
/// Fails with a user-facing message on any I/O error.
pub fn write_artifact(path: &Path, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("cannot write '{}': {e}", path.display()))
}

/// Reads an artifact byte stream written by [`write_artifact`].
///
/// # Errors
///
/// Fails with a user-facing message on any I/O error.
pub fn read_artifact(path: &Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read '{}': {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jas_simkernel::SimTime;

    fn quick_cfg() -> SutConfig {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        cfg
    }

    #[test]
    fn recorded_replay_reproduces_the_run() {
        let cfg = quick_cfg();
        let plan = RunPlan::quick();
        let (original, log) = record_run(&cfg, plan);
        assert!(!log.is_empty());
        let replayed = replay_run(&cfg, plan, log);
        assert_eq!(replayed.jops, original.jops);
        assert_eq!(replayed.trace_digest, original.trace_digest);
        assert_eq!(replayed.fault_digest, original.fault_digest);
    }

    #[test]
    fn replay_matches_under_different_thread_count() {
        let cfg = quick_cfg();
        let plan = RunPlan::quick();
        let (original, log) = record_run(&cfg, plan);
        let mut threaded = cfg.clone();
        threaded.threads = 4;
        let replayed = replay_run(&threaded, plan, log);
        assert_eq!(replayed.jops, original.jops);
        assert_eq!(replayed.trace_digest, original.trace_digest);
    }

    #[test]
    fn resume_finishes_a_checkpointed_run() {
        let cfg = quick_cfg();
        let plan = RunPlan::quick();
        let mut straight = Engine::new(cfg.clone(), plan);
        straight.run_to_end();
        let golden = straight.hpm_digest();

        let mut engine = Engine::new(cfg.clone(), plan);
        engine.run_to(SimTime::from_millis(300));
        let bytes = checkpoint_bytes(&mut engine);
        let resumed = resume_run(&cfg, plan, &bytes).unwrap();
        assert_eq!(resumed.hpm_digest, golden);
    }

    #[test]
    fn artifact_io_round_trips() {
        let path = std::env::temp_dir().join("jas-replay-artifact-io-test.bin");
        let payload = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        write_artifact(&path, &payload).unwrap();
        let back = read_artifact(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, payload);
        assert!(read_artifact(Path::new("/no/such/file.jckpt")).is_err());
    }
}
