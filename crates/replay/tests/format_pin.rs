//! Pins the `.jckpt`/witness/replay-log byte layouts to the spec in
//! `docs/jckpt-format.md`: magic words, header word order, trailer digest,
//! and the version constant. Any byte-layout change must update the doc,
//! bump `JCKPT_VERSION`, and adjust this test in the same commit.

use jas_replay::{
    checkpoint_bytes, config_fingerprint, Engine, RunPlan, SutConfig, JCKPT_MAGIC, JCKPT_VERSION,
    WITNESS_MAGIC,
};
use jas_simkernel::SimTime;

fn word_at(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap())
}

fn fnv1a_words(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn quick_cfg() -> SutConfig {
    let mut cfg = SutConfig::at_ir(10);
    cfg.machine.frequency_hz = 100_000.0;
    cfg.jvm.heap.capacity = 8 << 20;
    cfg.jvm.live_target = 2 << 20;
    cfg
}

#[test]
fn magic_words_match_the_spec() {
    // ASCII "JASCKPT1", "JASRPLY1", "JASWTNS1" read as big-endian u64.
    assert_eq!(JCKPT_MAGIC, u64::from_be_bytes(*b"JASCKPT1"));
    assert_eq!(WITNESS_MAGIC, u64::from_be_bytes(*b"JASWTNS1"));
    let log = jas_replay::ReplayLog::default().to_bytes();
    assert_eq!(word_at(&log, 0), u64::from_be_bytes(*b"JASRPLY1"));
}

#[test]
fn container_version_is_pinned() {
    // Bumping this constant invalidates every committed checkpoint: do it
    // only with a matching docs/jckpt-format.md update. Version 3 widened
    // the fault counters for the fleet kinds, added the breaker's
    // half-open probe spacing, and added the front-end outcome counters.
    assert_eq!(JCKPT_VERSION, 3);
}

#[test]
fn jckpt_header_layout_is_pinned() {
    let cfg = quick_cfg();
    let plan = RunPlan::quick();
    let mut engine = Engine::new(cfg.clone(), plan);
    engine.run_to(SimTime::from_millis(200));
    let bytes = checkpoint_bytes(&mut engine);

    // Words 0-3: magic, version, fingerprint, payload length.
    assert_eq!(word_at(&bytes, 0), JCKPT_MAGIC);
    assert_eq!(word_at(&bytes, 1), JCKPT_VERSION);
    assert_eq!(word_at(&bytes, 2), config_fingerprint(&cfg));
    let payload_words = word_at(&bytes, 3) as usize;
    assert_eq!(bytes.len(), (4 + payload_words + 1) * 8);

    // The trailer is the FNV-1a fold of every preceding byte in stream
    // order (per docs/jckpt-format.md, word bytes are little-endian, so
    // folding bytes equals folding words).
    let trailer = word_at(&bytes, 4 + payload_words);
    assert_eq!(trailer, fnv1a_words(&bytes[..bytes.len() - 8]));
}

#[test]
fn fingerprint_is_thread_hostprof_and_sched_invariant_only() {
    let cfg = quick_cfg();
    let mut threaded = cfg.clone();
    threaded.threads = 8;
    threaded.host_prof = true;
    threaded.sched = jas_replay::SchedMode::Event;
    assert_eq!(config_fingerprint(&cfg), config_fingerprint(&threaded));

    let mut reseeded = cfg.clone();
    reseeded.seed ^= 1;
    assert_ne!(config_fingerprint(&cfg), config_fingerprint(&reseeded));
}
