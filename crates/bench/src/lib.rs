//! Shared support for the figure-regeneration benches.
//!
//! Each bench target regenerates one table or figure of the paper from a
//! cached baseline run (printed to stdout alongside Criterion's timing of
//! the corresponding analysis routine), so `cargo bench` both re-derives
//! the paper's evaluation and tracks the analysis-path performance.

use jas2004::{run_experiment, RunArtifacts, RunPlan, SutConfig};
use jas_simkernel::SimDuration;
use std::sync::OnceLock;

/// The baseline run every figure bench reads (IR 40, tuned system).
///
/// Executed once per bench binary; the steady window is shortened relative
/// to the paper's 30-60 minutes (steady state arrives quickly — paper
/// Section 4.1) to keep `cargo bench --workspace` reasonable.
pub fn baseline() -> &'static RunArtifacts {
    static RUN: OnceLock<RunArtifacts> = OnceLock::new();
    RUN.get_or_init(|| run_experiment(SutConfig::at_ir(40), bench_plan()))
}

/// The timing plan used by the benches.
#[must_use]
pub fn bench_plan() -> RunPlan {
    RunPlan {
        ramp_up: SimDuration::from_secs(10),
        steady: SimDuration::from_secs(60),
        hpm_period: SimDuration::from_millis(500),
        throughput_bin: SimDuration::from_secs(10),
    }
}

/// A shorter plan for sweeps (ablations, utilization table).
#[must_use]
pub fn sweep_plan() -> RunPlan {
    RunPlan {
        ramp_up: SimDuration::from_secs(10),
        steady: SimDuration::from_secs(45),
        hpm_period: SimDuration::from_millis(500),
        throughput_bin: SimDuration::from_secs(10),
    }
}
