//! Regenerates Figure 3 (garbage collection statistics) and benchmarks its analysis routine.

use criterion::{criterion_group, criterion_main, Criterion};
use jas2004::{figures, report};
use jas_bench::baseline;

fn bench(c: &mut Criterion) {
    let art = baseline();
    println!("{}", report::render_fig3(&figures::fig3_gc(art)));
    c.bench_function("fig3_gc", |b| {
        b.iter(|| figures::fig3_gc(std::hint::black_box(art)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
