//! Ablations of the design choices the paper calls out as optimization
//! opportunities (DESIGN.md Section 5):
//!
//! 1. large pages for the Java heap (paper: in use; +25% DTLB hits),
//! 2. large pages for executable/JIT code (paper's proposal),
//! 3. a doubled L2 (paper: working set exceeds the L2),
//! 4. GC mark traversal order (paper: locality-respecting marking),
//! 5. heap size vs GC overhead (paper: the "GC is slow" myth comes from
//!    small heaps).

use criterion::{criterion_group, criterion_main, Criterion};
use jas2004::{figures, run_experiment, SutConfig};
use jas_bench::sweep_plan;
use jas_jvm::Traversal;

fn run(cfg: SutConfig) -> jas2004::RunArtifacts {
    run_experiment(cfg, sweep_plan())
}

fn page_ablation() {
    println!("Ablation: page size policy (paper Section 4.2.2)");
    println!("  config                    DTLB/instr   ITLB/instr   CPI");
    let mut small = SutConfig::at_ir(40);
    small.machine.addr_map.heap_large_pages = false;
    let mut code_too = SutConfig::at_ir(40);
    code_too.machine.addr_map.code_large_pages = true;
    for (name, cfg) in [
        ("4K everywhere", small),
        ("16M heap (baseline)", SutConfig::at_ir(40)),
        ("16M heap + code", code_too),
    ] {
        let art = run(cfg);
        let f = figures::fig7_tlb(&art);
        let cpi = figures::fig5_cpi(&art).cpi;
        println!(
            "  {:<24}  {:>9.2e}   {:>9.2e}   {:.2}",
            name, f.dtlb_per_instr, f.itlb_per_instr, cpi
        );
    }
}

fn l2_ablation() {
    println!("Ablation: L2 capacity (paper: a bigger L2 could help)");
    println!("  L2 size    L2 hit of L1 misses   CPI");
    for (name, bytes) in [("1.44 MB", 1440u64 * 1024), ("2.88 MB", 2880 * 1024)] {
        let mut cfg = SutConfig::at_ir(40);
        cfg.machine.l2.size_bytes = bytes;
        let art = run(cfg);
        let f9 = figures::fig9_data_from(&art);
        let cpi = figures::fig5_cpi(&art).cpi;
        println!(
            "  {:<9}  {:>8.1}%             {:.2}",
            name,
            f9.l2_fraction * 100.0,
            cpi
        );
    }
}

fn traversal_ablation() {
    println!("Ablation: GC mark traversal order (paper Section 4.1.1)");
    println!("  order            mean pause ms   mark jump (bytes)");
    for t in [
        Traversal::DepthFirst,
        Traversal::BreadthFirst,
        Traversal::AddressOrdered,
    ] {
        let mut cfg = SutConfig::at_ir(40);
        cfg.jvm.gc.traversal = t;
        let art = run(cfg);
        let pause = art.gc_summary.map_or(f64::NAN, |s| s.mean_pause_ms);
        let jump = art
            .gc_entries
            .last()
            .map_or(f64::NAN, |e| e.cycle.report.mark_jump_mean);
        println!("  {t:<16?} {pause:>10.0}      {jump:>12.0}");
    }
}

fn heap_size_ablation() {
    // The live set stays FIXED while the heap shrinks — exactly how small
    // heaps made past GC studies look bad (headroom vanishes, collections
    // become frequent).
    println!("Ablation: heap size vs GC overhead (paper Section 6)");
    println!("  heap (scaled)  GC interval s  GC % of runtime");
    for (name, capacity) in [
        ("20 MB", 20u64 << 20),
        ("32 MB", 32 << 20),
        ("64 MB", 64 << 20),
    ] {
        let mut cfg = SutConfig::at_ir(40);
        cfg.jvm.heap.capacity = capacity;
        cfg.jvm.live_target = (64u64 << 20) / 5;
        let art = run(cfg);
        match art.gc_summary {
            Some(s) => println!(
                "  {:<13}  {:>8.1}       {:>6.2}%",
                name,
                s.mean_interval_s,
                s.runtime_fraction * 100.0
            ),
            None => println!("  {name:<13}  (fewer than two GCs)"),
        }
    }
}

fn bench(c: &mut Criterion) {
    page_ablation();
    l2_ablation();
    traversal_ablation();
    heap_size_ablation();
    let art = jas_bench::baseline();
    c.bench_function("ablations_analysis", |b| {
        b.iter(|| figures::fig7_tlb(std::hint::black_box(art)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
