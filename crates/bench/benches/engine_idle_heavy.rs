//! Host-time payoff of the event-driven scheduler on an idle-heavy
//! scenario: a trickle of requests (IR 1) on a slow clock leaves most
//! quanta with nothing to do, which is exactly the dead time `--sched
//! event` fast-forwards over. Both scheduler modes run the same seeded
//! simulation (bit-identical results, gated by `integration_sched.rs`);
//! the rows differ only in host wall-clock. The CI perf gate requires the
//! event row to beat the quantum row by at least 1.3x.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jas2004::{Engine, HpmEvent, RunPlan, SchedMode, SutConfig};
use jas_simkernel::SimDuration;
use std::time::Duration;

fn idle_plan() -> RunPlan {
    RunPlan {
        ramp_up: SimDuration::from_secs(5),
        steady: SimDuration::from_secs(55),
        // A 1 s sampler period lets the event scheduler batch ~31 idle
        // quanta per skip instead of waking every 500 ms.
        hpm_period: SimDuration::from_secs(1),
        throughput_bin: SimDuration::from_secs(5),
    }
}

fn idle_cfg(sched: SchedMode) -> SutConfig {
    let mut cfg = SutConfig::at_ir(1);
    // A slow modeled clock keeps busy quanta cheap, so per-quantum fixed
    // costs dominate the host time.
    cfg.machine.frequency_hz = 250_000.0;
    // Worker threads are the realistic operating point — and the thread
    // scope spawned for every executed quantum is exactly the fixed cost
    // that skipping an idle quantum avoids.
    cfg.threads = 4;
    cfg.sched = sched;
    cfg
}

/// Runs the scenario and reports `((simulated_cycles, micro_ops),
/// extra-fields)` so the JSON row records simulation throughput plus the
/// scheduler's skip fraction.
fn run(sched: SchedMode) -> ((f64, f64), Vec<(&'static str, f64)>) {
    let mut engine = Engine::new(idle_cfg(sched), idle_plan());
    engine.run_to_end();
    black_box(engine.completed_requests());
    let totals = engine.total_counters();
    let stats = engine.sched_stats();
    (
        (
            totals.get(HpmEvent::Cycles) as f64,
            totals.get(HpmEvent::InstCompleted) as f64,
        ),
        vec![("idle_skip_fraction", stats.skip_fraction())],
    )
}

fn bench(c: &mut Criterion) {
    c.bench_function("engine_idle_heavy/sched=quantum", |b| {
        b.iter_with_work_fields(|| run(SchedMode::Quantum))
    });
    c.bench_function("engine_idle_heavy/sched=event", |b| {
        b.iter_with_work_fields(|| run(SchedMode::Event))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
