//! Regenerates the locking/SYNC table (Section 4.2.4) and benchmarks its analysis routine.

use criterion::{criterion_group, criterion_main, Criterion};
use jas2004::{figures, report};
use jas_bench::baseline;

fn bench(c: &mut Criterion) {
    let art = baseline();
    println!("{}", report::render_locking(&figures::locking_table(art)));
    c.bench_function("tbl_locking", |b| {
        b.iter(|| figures::locking_table(std::hint::black_box(art)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
