//! Host-time cost of the flash-crowd scenario: the pinned
//! `scenarios/flash-crowd.toml` spec (6x spike on a 3-node least-conn
//! fleet with the reactive autoscaler armed) run end to end through the
//! fleet path. The row's extra fields record the fraction of offered
//! load shed by admission control (`shed_fraction`) and the fraction of
//! completions that missed the web p90 SLO (`p99_slo_miss`); the work
//! fields are the fleet-aggregate simulated cycles and instructions.
//! The machine is scaled down the same way the cluster_failover bench
//! scales it — the digest-pinned full-scale runs live in the CI
//! scenario matrix, this row tracks host cost and SLO headroom.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jas2004::{run_cluster_with, HpmEvent, RunPlan, SutConfig};
use jas_scenario::ScenarioSpec;
use jas_simkernel::SimDuration;
use std::time::Duration;

fn spec() -> ScenarioSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/flash-crowd.toml"
    );
    let text = std::fs::read_to_string(path).expect("seed scenario readable");
    ScenarioSpec::parse(&text).expect("seed scenario parses")
}

/// Runs the scenario and reports `((simulated_cycles, instructions),
/// extra-fields)` so the JSON row records simulation throughput plus the
/// shed fraction and SLO-miss fraction under the spike.
fn run() -> ((f64, f64), Vec<(&'static str, f64)>) {
    let spec = spec();
    let mut cfg = SutConfig::at_ir(spec.ir);
    cfg.machine.frequency_hz = 100_000.0;
    cfg.seed = 7;
    cfg.curve = spec.compile_curve();
    cfg.faults.plan = spec.plan();
    let plan = RunPlan {
        ramp_up: SimDuration::from_secs(spec.ramp_s),
        steady: SimDuration::from_secs(spec.steady_s),
        hpm_period: SimDuration::from_millis(500),
        throughput_bin: SimDuration::from_secs(5),
    };
    let art = run_cluster_with(
        &cfg,
        plan,
        spec.nodes,
        spec.dispatch,
        spec.autoscale,
        Some(spec.max_in_flight),
        None,
    );
    black_box(art.hpm_digest);
    assert_eq!(art.verdict.lost, 0, "flash crowd lost requests");
    let agg = art.fleet_hpm.aggregate();
    (
        (
            agg.get(HpmEvent::Cycles) as f64,
            agg.get(HpmEvent::InstCompleted) as f64,
        ),
        vec![
            ("shed_fraction", art.verdict.shed_fraction),
            (
                "p99_slo_miss",
                art.metrics.slo_miss_fraction(spec.slo.web_p90_s),
            ),
        ],
    )
}

fn bench(c: &mut Criterion) {
    c.bench_function("scenario_flash_crowd/nodes=3", |b| {
        b.iter_with_work_fields(run)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
