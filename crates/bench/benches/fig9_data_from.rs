//! Regenerates Figure 9 (data loaded from) and benchmarks its analysis routine.

use criterion::{criterion_group, criterion_main, Criterion};
use jas2004::{figures, report};
use jas_bench::baseline;

fn bench(c: &mut Criterion) {
    let art = baseline();
    println!("{}", report::render_fig9(&figures::fig9_data_from(art)));
    c.bench_function("fig9_data_from", |b| {
        b.iter(|| figures::fig9_data_from(std::hint::black_box(art)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
