//! Regenerates the utilization / run-rules table across an injection-rate
//! sweep: the paper's "~100% CPU at IR47, 80/20 user/system, 1.6 JOPS/IR"
//! observations, plus where the response-time rules stop passing.

use criterion::{criterion_group, criterion_main, Criterion};
use jas2004::{figures, run_experiment, SutConfig};
use jas_bench::sweep_plan;

fn bench(c: &mut Criterion) {
    println!("Utilization sweep (paper: ~90% at IR40, saturation near IR47)");
    println!("  IR   busy%  user%  sys%  iowait%  JOPS  JOPS/IR  web p90  verdict");
    for ir in [10, 25, 40, 47, 55] {
        let art = run_experiment(SutConfig::at_ir(ir), sweep_plan());
        let t = figures::utilization_table(&art);
        println!(
            "  {:>2}   {:>4.0}   {:>4.0}  {:>4.0}   {:>5.1}   {:>5.1}  {:>6.2}  {:>6.2}s  {}",
            ir,
            (t.user + t.system) * 100.0,
            t.user * 100.0,
            t.system * 100.0,
            t.iowait * 100.0,
            t.jops,
            t.jops_per_ir,
            t.web_p90,
            if t.passed { "PASSED" } else { "FAILED" }
        );
    }
    // Criterion times the cheap analysis step over the cached baseline.
    let art = jas_bench::baseline();
    c.bench_function("tbl_utilization", |b| {
        b.iter(|| figures::utilization_table(std::hint::black_box(art)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
