//! Host-time cost of the load-balanced fleet riding out a crash storm:
//! three engine stacks behind the LB, seeded crash-stops with warm
//! restarts from quiescent snapshots, redispatch of idempotent in-flight
//! work, and admission control. The row's extra fields record the mean
//! simulated crash-to-restart latency (`failover_ms`) and the fraction
//! of offered load shed under the storm (`shed_fraction`); the work
//! fields are the fleet-aggregate simulated cycles and instructions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jas2004::{run_cluster, DispatchPolicy, FaultPlan, HpmEvent, RunPlan, SutConfig};
use jas_simkernel::SimDuration;
use std::time::Duration;

fn storm_plan() -> RunPlan {
    RunPlan {
        ramp_up: SimDuration::from_secs(2),
        steady: SimDuration::from_secs(12),
        hpm_period: SimDuration::from_millis(500),
        throughput_bin: SimDuration::from_secs(2),
    }
}

fn storm_cfg() -> SutConfig {
    let mut cfg = SutConfig::at_ir(8);
    cfg.machine.frequency_hz = 100_000.0;
    cfg.seed = 7;
    cfg.faults.plan = FaultPlan::parse("node-crash@4-10:0.1,node-slow@5-9:0.4,partition@6-8:0.5")
        .expect("storm spec parses");
    cfg
}

/// Runs the fleet and reports `((simulated_cycles, instructions),
/// extra-fields)` so the JSON row records simulation throughput plus the
/// failover latency and shed fraction.
fn run() -> ((f64, f64), Vec<(&'static str, f64)>) {
    let art = run_cluster(&storm_cfg(), storm_plan(), 3, DispatchPolicy::LeastConn);
    black_box(art.hpm_digest);
    assert_eq!(art.verdict.lost, 0, "failover lost requests");
    let agg = art.fleet_hpm.aggregate();
    (
        (
            agg.get(HpmEvent::Cycles) as f64,
            agg.get(HpmEvent::InstCompleted) as f64,
        ),
        vec![
            ("failover_ms", art.failover_ms),
            ("shed_fraction", art.verdict.shed_fraction),
        ],
    )
}

fn bench(c: &mut Criterion) {
    c.bench_function("cluster_failover/nodes=3", |b| b.iter_with_work_fields(run));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
