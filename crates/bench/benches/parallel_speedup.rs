//! Wall-clock speedup of the two-phase parallel engine: the same seeded
//! simulation executed serially (`threads = 1`) and with the parallel
//! phase spread over worker threads. Results are bit-identical by
//! construction (CI enforces this separately); this bench tracks the
//! wall-clock payoff on `Engine::run_to_end`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jas2004::{Engine, HpmEvent, RunPlan, SutConfig};
use jas_simkernel::SimDuration;
use std::time::Duration;

fn speedup_plan() -> RunPlan {
    RunPlan {
        ramp_up: SimDuration::from_secs(5),
        steady: SimDuration::from_secs(15),
        hpm_period: SimDuration::from_millis(500),
        throughput_bin: SimDuration::from_secs(5),
    }
}

/// Runs the scenario and reports `(simulated_cycles, micro_ops)` so the
/// bench JSON records simulation throughput, not just wall time.
fn run(threads: usize) -> (f64, f64) {
    let mut cfg = SutConfig::at_ir(30);
    cfg.threads = threads;
    let mut engine = Engine::new(cfg, speedup_plan());
    engine.run_to_end();
    black_box(engine.completed_requests());
    let totals = engine.total_counters();
    (
        totals.get(HpmEvent::Cycles) as f64,
        totals.get(HpmEvent::InstCompleted) as f64,
    )
}

fn bench(c: &mut Criterion) {
    c.bench_function("engine_run_to_end/threads=1", |b| {
        b.iter_with_work(|| run(1))
    });
    // An oversubscribed worker pool on a single-CPU host measures scheduler
    // thrash, not engine speedup — the row would read as a false regression.
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if host_cpus > 1 {
        c.bench_function("engine_run_to_end/threads=8", |b| {
            b.iter_with_work(|| run(8))
        });
    } else {
        println!("engine_run_to_end/threads=8              skipped: host has 1 CPU");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
