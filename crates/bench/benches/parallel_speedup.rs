//! Wall-clock speedup of the two-phase parallel engine: the same seeded
//! simulation executed serially (`threads = 1`) and with the parallel
//! phase spread over worker threads. Results are bit-identical by
//! construction (CI enforces this separately); this bench tracks the
//! wall-clock payoff on `Engine::run_to_end`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jas2004::{Engine, RunPlan, SutConfig};
use jas_simkernel::SimDuration;
use std::time::Duration;

fn speedup_plan() -> RunPlan {
    RunPlan {
        ramp_up: SimDuration::from_secs(5),
        steady: SimDuration::from_secs(15),
        hpm_period: SimDuration::from_millis(500),
        throughput_bin: SimDuration::from_secs(5),
    }
}

fn run(threads: usize) -> u64 {
    let mut cfg = SutConfig::at_ir(30);
    cfg.threads = threads;
    let mut engine = Engine::new(cfg, speedup_plan());
    engine.run_to_end();
    engine.completed_requests()
}

fn bench(c: &mut Criterion) {
    c.bench_function("engine_run_to_end/threads=1", |b| {
        b.iter(|| black_box(run(1)))
    });
    c.bench_function("engine_run_to_end/threads=8", |b| {
        b.iter(|| black_box(run(8)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
