//! Cost of writing and restoring a `.jckpt` engine checkpoint.
//!
//! The row's `mean_ns` covers the whole scenario (build, run to the
//! checkpoint tick, write, restore); the interesting numbers are the
//! `ckpt_write_ms`/`restore_ms` fields the routine times itself — those
//! are what CI's perf-regression gate tracks, since the replay-smoke path
//! pays them on every run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jas2004::{checkpoint_bytes, restore_engine, Engine, RunPlan, SutConfig};
use jas_simkernel::{SimDuration, SimTime};
use std::time::{Duration, Instant};

fn checkpoint_plan() -> RunPlan {
    RunPlan {
        ramp_up: SimDuration::from_secs(2),
        steady: SimDuration::from_secs(8),
        hpm_period: SimDuration::from_millis(500),
        throughput_bin: SimDuration::from_secs(2),
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("engine_checkpoint/roundtrip", |b| {
        b.iter_with_fields(|| {
            let cfg = SutConfig::at_ir(20);
            let plan = checkpoint_plan();
            let mut engine = Engine::new(cfg.clone(), plan);
            engine.run_to(SimTime::from_secs(3));

            let start = Instant::now();
            let bytes = checkpoint_bytes(&mut engine);
            let ckpt_write_ms = start.elapsed().as_secs_f64() * 1e3;

            let start = Instant::now();
            let restored = restore_engine(&cfg, plan, &bytes).expect("self round-trip restores");
            let restore_ms = start.elapsed().as_secs_f64() * 1e3;

            black_box((bytes.len(), restored.now()));
            vec![("ckpt_write_ms", ckpt_write_ms), ("restore_ms", restore_ms)]
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
