//! Address-translation structures: ERATs and the unified TLB.
//!
//! POWER4 translates effective → real addresses through two
//! effective-to-real address translation tables (IERAT for instructions,
//! DERAT for data) backed by a unified, hardware-walked TLB. Two details
//! matter for reproducing the paper's Figure 7:
//!
//! * **ERAT entries are 4 KB-grained even for 16 MB pages** — so enabling
//!   large pages barely changes ERAT behaviour, while the TLB (which holds
//!   one entry per *page*, so one entry per 16 MB) improves dramatically.
//! * An ERAT miss that hits the TLB costs ~14 cycles; an ERAT miss that also
//!   misses the TLB pays a hardware table walk.

use crate::address::PageSize;

/// Sentinel for "no slot" in [`TranslationCache`] links and map buckets.
const NIL: u32 = u32::MAX;

/// One resident tag plus its position in the intrusive recency list.
#[derive(Clone, Copy, Debug)]
struct Slot {
    tag: u64,
    prev: u32, // towards MRU
    next: u32, // towards LRU
}

/// A fully associative translation cache with LRU replacement, keyed by an
/// opaque tag (a 4 KB frame number for ERATs, a page base for the TLB).
///
/// Lookups and inserts are O(1): an open-addressed tag→slot map (linear
/// probing, backward-shift deletion) finds the entry, and an intrusive
/// doubly-linked list over the slot array maintains recency order, so the
/// LRU victim is always the list tail. This replaces a linear scan of the
/// whole entry vector per access — the unified TLB holds 1024 entries and
/// is consulted on every ERAT miss, so the scan dominated the translation
/// cost at steady state.
///
/// Equivalence with the previous tick-stamped vector implementation: ticks
/// increased strictly monotonically, so the minimum-stamp victim was exactly
/// the least recently *touched* entry — which is exactly the list tail here.
#[derive(Clone, Debug)]
pub struct TranslationCache {
    slots: Vec<Slot>,
    /// Open-addressed hash map from tag to slot index; `NIL` marks an empty
    /// bucket. Sized to a power of two ≥ 4× capacity so probe chains stay
    /// short (load factor ≤ 25 %).
    map: Vec<u32>,
    mask: usize,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

/// SplitMix64 finalizer: cheap, well-mixed bucket index for frame/page tags
/// (which are themselves highly sequential).
#[inline]
fn mix_tag(tag: u64) -> u64 {
    let mut z = tag.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TranslationCache {
    /// Creates a cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "translation cache needs at least one entry");
        assert!(capacity < NIL as usize / 4, "translation cache too large");
        let buckets = (capacity * 4).next_power_of_two();
        TranslationCache {
            slots: Vec::with_capacity(capacity),
            map: vec![NIL; buckets],
            mask: buckets - 1,
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Finds the slot holding `tag`, if resident.
    #[inline]
    fn find(&self, tag: u64) -> Option<u32> {
        let mut i = mix_tag(tag) as usize & self.mask;
        loop {
            let e = self.map[i];
            if e == NIL {
                return None;
            }
            if self.slots[e as usize].tag == tag {
                return Some(e);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts a map entry for `tag` pointing at `slot` (tag must be absent).
    fn map_insert(&mut self, tag: u64, slot: u32) {
        let mut i = mix_tag(tag) as usize & self.mask;
        while self.map[i] != NIL {
            i = (i + 1) & self.mask;
        }
        self.map[i] = slot;
    }

    /// Removes the map entry for `tag` using backward-shift deletion, which
    /// keeps every remaining probe chain intact without tombstones.
    fn map_remove(&mut self, tag: u64) {
        let mut i = mix_tag(tag) as usize & self.mask;
        while self.map[i] == NIL || self.slots[self.map[i] as usize].tag != tag {
            i = (i + 1) & self.mask;
        }
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let e = self.map[j];
            if e == NIL {
                break;
            }
            let k = mix_tag(self.slots[e as usize].tag) as usize & self.mask;
            // Shift `e` back into the vacated bucket unless its home bucket
            // lies (cyclically) between the hole and its current position.
            let between = if i <= j {
                i < k && k <= j
            } else {
                i < k || k <= j
            };
            if !between {
                self.map[i] = e;
                i = j;
            }
        }
        self.map[i] = NIL;
    }

    /// Detaches `slot` from the recency list.
    #[inline]
    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Links `slot` in at the MRU end of the recency list.
    #[inline]
    fn push_front(&mut self, slot: u32) {
        let old = self.head;
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = old;
        if old == NIL {
            self.tail = slot;
        } else {
            self.slots[old as usize].prev = slot;
        }
        self.head = slot;
    }

    /// Moves an already-resident `slot` to the MRU position.
    #[inline]
    fn touch(&mut self, slot: u32) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Admits `tag`, reusing the LRU victim's slot when full. The tag must
    /// not already be resident.
    fn admit(&mut self, tag: u64) {
        if self.slots.len() < self.capacity {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                tag,
                prev: NIL,
                next: NIL,
            });
            self.map_insert(tag, slot);
            self.push_front(slot);
        } else {
            let victim = self.tail;
            let old_tag = self.slots[victim as usize].tag;
            self.map_remove(old_tag);
            self.slots[victim as usize].tag = tag;
            self.map_insert(tag, victim);
            self.touch(victim);
        }
    }

    /// Looks up `tag`, refreshing recency on a hit.
    pub fn lookup(&mut self, tag: u64) -> bool {
        if let Some(slot) = self.find(tag) {
            self.touch(slot);
            true
        } else {
            false
        }
    }

    /// Inserts `tag`, evicting the least recently used entry if full.
    pub fn insert(&mut self, tag: u64) {
        if let Some(slot) = self.find(tag) {
            self.touch(slot);
        } else {
            self.admit(tag);
        }
    }

    /// Combined lookup-and-fill: returns `true` on a hit (recency
    /// refreshed), and on a miss admits `tag` before returning `false`.
    /// Equivalent to `lookup` followed by `insert` on the miss path, but
    /// probes the tag map once instead of twice.
    pub fn lookup_or_insert(&mut self, tag: u64) -> bool {
        if let Some(slot) = self.find(tag) {
            self.touch(slot);
            true
        } else {
            self.admit(tag);
            false
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// Drops all entries (context switch / partition flush).
    pub fn flush(&mut self) {
        self.slots.clear();
        self.map.fill(NIL);
        self.head = NIL;
        self.tail = NIL;
    }
}

/// Outcome of one address translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TranslationOutcome {
    /// ERAT hit: translation available immediately.
    EratHit,
    /// ERAT miss satisfied by the TLB (~14-cycle penalty class).
    EratMissTlbHit,
    /// ERAT and TLB both missed: hardware table walk.
    TlbMiss,
}

/// One side (instruction or data) of the translation machinery, sharing the
/// unified TLB with the other side.
///
/// The unified TLB itself is owned by [`Mmu`]; this struct holds only the
/// per-side ERAT.
#[derive(Clone, Debug)]
pub struct Erat {
    cache: TranslationCache,
}

impl Erat {
    /// Creates an ERAT with `entries` 4 KB-grained slots (POWER4: 128).
    #[must_use]
    pub fn new(entries: usize) -> Self {
        Erat {
            cache: TranslationCache::new(entries),
        }
    }

    #[inline]
    fn frame_of(addr: u64) -> u64 {
        addr >> 12 // ERATs are 4 KB-grained regardless of page size
    }
}

/// The memory-management unit of one core: IERAT + DERAT + unified TLB.
#[derive(Clone, Debug)]
pub struct Mmu {
    ierat: Erat,
    derat: Erat,
    tlb: TranslationCache,
}

/// Configuration for [`Mmu`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmuConfig {
    /// IERAT entries (POWER4: 128).
    pub ierat_entries: usize,
    /// DERAT entries (POWER4: 128).
    pub derat_entries: usize,
    /// Unified TLB entries (POWER4: 1024).
    pub tlb_entries: usize,
}

impl Default for MmuConfig {
    fn default() -> Self {
        MmuConfig {
            ierat_entries: 128,
            derat_entries: 128,
            tlb_entries: 1024,
        }
    }
}

impl Mmu {
    /// Builds the MMU from its configuration.
    #[must_use]
    pub fn new(cfg: MmuConfig) -> Self {
        Mmu {
            ierat: Erat::new(cfg.ierat_entries),
            derat: Erat::new(cfg.derat_entries),
            tlb: TranslationCache::new(cfg.tlb_entries),
        }
    }

    /// Translates a data reference to `addr` on a page of size `page`.
    pub fn translate_data(&mut self, addr: u64, page: PageSize) -> TranslationOutcome {
        Self::translate(&mut self.derat, &mut self.tlb, addr, page)
    }

    /// Translates an instruction fetch from `addr` on a page of size `page`.
    pub fn translate_inst(&mut self, addr: u64, page: PageSize) -> TranslationOutcome {
        Self::translate(&mut self.ierat, &mut self.tlb, addr, page)
    }

    fn translate(
        erat: &mut Erat,
        tlb: &mut TranslationCache,
        addr: u64,
        page: PageSize,
    ) -> TranslationOutcome {
        let frame = Erat::frame_of(addr);
        if erat.cache.lookup_or_insert(frame) {
            return TranslationOutcome::EratHit;
        }
        // TLB entries are page-grained: one entry covers a whole 16 MB large
        // page, which is precisely why large pages help the TLB so much.
        let page_tag = page.page_base(addr)
            | match page {
                PageSize::Small4K => 0,
                PageSize::Large16M => 1, // disambiguate tag spaces
            };
        if tlb.lookup_or_insert(page_tag) {
            TranslationOutcome::EratMissTlbHit
        } else {
            TranslationOutcome::TlbMiss
        }
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Default for Slot {
    fn default() -> Self {
        Slot {
            tag: 0,
            prev: NIL,
            next: NIL,
        }
    }
}

impl Persist for Slot {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.tag.persist(io);
        self.prev.persist(io);
        self.next.persist(io);
    }
}

impl Persist for TranslationCache {
    /// `mask` and `capacity` are config-derived; the slot array (which
    /// grows lazily up to capacity), hash map array, and LRU chain
    /// endpoints are the mutable state.
    // jas-lint: allow(D009, reason = "capacity and mask are config-derived sizing, rebuilt by construction")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_vec(io, &mut self.slots);
        snap::persist_slice(io, &mut self.map);
        self.head.persist(io);
        self.tail.persist(io);
    }
}

impl Persist for Erat {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.cache.persist(io);
    }
}

impl Persist for Mmu {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.ierat.persist(io);
        self.derat.persist(io);
        self.tlb.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Region;

    #[test]
    fn cache_hits_after_insert() {
        let mut c = TranslationCache::new(4);
        assert!(!c.lookup(7));
        c.insert(7);
        assert!(c.lookup(7));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn cache_evicts_lru() {
        let mut c = TranslationCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.lookup(1)); // refresh 1
        c.insert(3); // evicts 2
        assert!(c.lookup(1));
        assert!(!c.lookup(2));
        assert!(c.lookup(3));
    }

    #[test]
    fn cache_flush_empties() {
        let mut c = TranslationCache::new(2);
        c.insert(1);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.lookup(1));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = TranslationCache::new(0);
    }

    #[test]
    fn lookup_or_insert_fills_on_miss() {
        let mut c = TranslationCache::new(2);
        assert!(!c.lookup_or_insert(9)); // miss admits the tag…
        assert!(c.lookup_or_insert(9)); // …so the retry hits
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lookup_or_insert_evicts_lru_like_insert() {
        let mut c = TranslationCache::new(2);
        assert!(!c.lookup_or_insert(1));
        assert!(!c.lookup_or_insert(2));
        assert!(c.lookup_or_insert(1)); // refresh 1 → LRU is now 2
        assert!(!c.lookup_or_insert(3)); // evicts 2
        assert!(c.lookup(1));
        assert!(!c.lookup(2));
        assert!(c.lookup(3));
    }

    #[test]
    fn capacity_one_keeps_most_recent_tag() {
        let mut c = TranslationCache::new(1);
        for tag in 0..32u64 {
            assert!(!c.lookup_or_insert(tag));
            assert!(c.lookup(tag));
            assert_eq!(c.occupancy(), 1);
        }
    }

    #[test]
    fn first_touch_misses_everything() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let a = Region::JavaHeap.base();
        assert_eq!(
            mmu.translate_data(a, PageSize::Large16M),
            TranslationOutcome::TlbMiss
        );
        assert_eq!(
            mmu.translate_data(a, PageSize::Large16M),
            TranslationOutcome::EratHit
        );
    }

    #[test]
    fn large_page_covers_many_erat_frames() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let base = Region::JavaHeap.base();
        // First touch: full miss.
        assert_eq!(
            mmu.translate_data(base, PageSize::Large16M),
            TranslationOutcome::TlbMiss
        );
        // A different 4 KB frame of the SAME 16 MB page: ERAT misses
        // (4 KB-grained) but the TLB hits (page-grained).
        assert_eq!(
            mmu.translate_data(base + 8192, PageSize::Large16M),
            TranslationOutcome::EratMissTlbHit
        );
    }

    #[test]
    fn small_pages_miss_tlb_per_4k() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let base = Region::DbBufferPool.base();
        assert_eq!(
            mmu.translate_data(base, PageSize::Small4K),
            TranslationOutcome::TlbMiss
        );
        // Next 4 KB page: both ERAT and TLB miss again.
        assert_eq!(
            mmu.translate_data(base + 4096, PageSize::Small4K),
            TranslationOutcome::TlbMiss
        );
    }

    #[test]
    fn inst_and_data_erats_are_separate() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let a = Region::JitCode.base();
        assert_eq!(
            mmu.translate_data(a, PageSize::Small4K),
            TranslationOutcome::TlbMiss
        );
        // Same address as instruction fetch: IERAT misses (separate ERAT)
        // but TLB (unified) hits.
        assert_eq!(
            mmu.translate_inst(a, PageSize::Small4K),
            TranslationOutcome::EratMissTlbHit
        );
    }

    #[test]
    fn erat_capacity_pressure_causes_repeat_misses() {
        let mut mmu = Mmu::new(MmuConfig {
            ierat_entries: 4,
            derat_entries: 4,
            tlb_entries: 1024,
        });
        let base = Region::Stacks.base();
        // Touch 8 distinct 4 KB frames, twice around: with only 4 ERAT
        // entries the second pass still misses the ERAT but hits the TLB.
        for round in 0..2 {
            for i in 0..8u64 {
                let outcome = mmu.translate_data(base + i * 4096, PageSize::Small4K);
                if round == 1 {
                    assert_eq!(outcome, TranslationOutcome::EratMissTlbHit, "frame {i}");
                }
            }
        }
    }
}
