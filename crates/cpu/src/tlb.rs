//! Address-translation structures: ERATs and the unified TLB.
//!
//! POWER4 translates effective → real addresses through two
//! effective-to-real address translation tables (IERAT for instructions,
//! DERAT for data) backed by a unified, hardware-walked TLB. Two details
//! matter for reproducing the paper's Figure 7:
//!
//! * **ERAT entries are 4 KB-grained even for 16 MB pages** — so enabling
//!   large pages barely changes ERAT behaviour, while the TLB (which holds
//!   one entry per *page*, so one entry per 16 MB) improves dramatically.
//! * An ERAT miss that hits the TLB costs ~14 cycles; an ERAT miss that also
//!   misses the TLB pays a hardware table walk.

use crate::address::PageSize;

/// A fully associative translation cache with LRU replacement, keyed by an
/// opaque tag (a 4 KB frame number for ERATs, a page base for the TLB).
#[derive(Clone, Debug)]
pub struct TranslationCache {
    entries: Vec<(u64, u64)>, // (tag, last-use tick)
    capacity: usize,
    tick: u64,
}

impl TranslationCache {
    /// Creates a cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "translation cache needs at least one entry");
        TranslationCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
        }
    }

    /// Looks up `tag`, refreshing recency on a hit.
    pub fn lookup(&mut self, tag: u64) -> bool {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == tag) {
            e.1 = self.tick;
            true
        } else {
            false
        }
    }

    /// Inserts `tag`, evicting the least recently used entry if full.
    pub fn insert(&mut self, tag: u64) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == tag) {
            e.1 = self.tick;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((tag, self.tick));
            return;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.1)
            .map(|(i, _)| i)
            .expect("cache is non-empty when full");
        self.entries[victim] = (tag, self.tick);
    }

    /// Number of resident entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Drops all entries (context switch / partition flush).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

/// Outcome of one address translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TranslationOutcome {
    /// ERAT hit: translation available immediately.
    EratHit,
    /// ERAT miss satisfied by the TLB (~14-cycle penalty class).
    EratMissTlbHit,
    /// ERAT and TLB both missed: hardware table walk.
    TlbMiss,
}

/// One side (instruction or data) of the translation machinery, sharing the
/// unified TLB with the other side.
///
/// The unified TLB itself is owned by [`Mmu`]; this struct holds only the
/// per-side ERAT.
#[derive(Clone, Debug)]
pub struct Erat {
    cache: TranslationCache,
}

impl Erat {
    /// Creates an ERAT with `entries` 4 KB-grained slots (POWER4: 128).
    #[must_use]
    pub fn new(entries: usize) -> Self {
        Erat {
            cache: TranslationCache::new(entries),
        }
    }

    #[inline]
    fn frame_of(addr: u64) -> u64 {
        addr >> 12 // ERATs are 4 KB-grained regardless of page size
    }
}

/// The memory-management unit of one core: IERAT + DERAT + unified TLB.
#[derive(Clone, Debug)]
pub struct Mmu {
    ierat: Erat,
    derat: Erat,
    tlb: TranslationCache,
}

/// Configuration for [`Mmu`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmuConfig {
    /// IERAT entries (POWER4: 128).
    pub ierat_entries: usize,
    /// DERAT entries (POWER4: 128).
    pub derat_entries: usize,
    /// Unified TLB entries (POWER4: 1024).
    pub tlb_entries: usize,
}

impl Default for MmuConfig {
    fn default() -> Self {
        MmuConfig {
            ierat_entries: 128,
            derat_entries: 128,
            tlb_entries: 1024,
        }
    }
}

impl Mmu {
    /// Builds the MMU from its configuration.
    #[must_use]
    pub fn new(cfg: MmuConfig) -> Self {
        Mmu {
            ierat: Erat::new(cfg.ierat_entries),
            derat: Erat::new(cfg.derat_entries),
            tlb: TranslationCache::new(cfg.tlb_entries),
        }
    }

    /// Translates a data reference to `addr` on a page of size `page`.
    pub fn translate_data(&mut self, addr: u64, page: PageSize) -> TranslationOutcome {
        Self::translate(&mut self.derat, &mut self.tlb, addr, page)
    }

    /// Translates an instruction fetch from `addr` on a page of size `page`.
    pub fn translate_inst(&mut self, addr: u64, page: PageSize) -> TranslationOutcome {
        Self::translate(&mut self.ierat, &mut self.tlb, addr, page)
    }

    fn translate(
        erat: &mut Erat,
        tlb: &mut TranslationCache,
        addr: u64,
        page: PageSize,
    ) -> TranslationOutcome {
        let frame = Erat::frame_of(addr);
        if erat.cache.lookup(frame) {
            return TranslationOutcome::EratHit;
        }
        erat.cache.insert(frame);
        // TLB entries are page-grained: one entry covers a whole 16 MB large
        // page, which is precisely why large pages help the TLB so much.
        let page_tag = page.page_base(addr)
            | match page {
                PageSize::Small4K => 0,
                PageSize::Large16M => 1, // disambiguate tag spaces
            };
        if tlb.lookup(page_tag) {
            TranslationOutcome::EratMissTlbHit
        } else {
            tlb.insert(page_tag);
            TranslationOutcome::TlbMiss
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Region;

    #[test]
    fn cache_hits_after_insert() {
        let mut c = TranslationCache::new(4);
        assert!(!c.lookup(7));
        c.insert(7);
        assert!(c.lookup(7));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn cache_evicts_lru() {
        let mut c = TranslationCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.lookup(1)); // refresh 1
        c.insert(3); // evicts 2
        assert!(c.lookup(1));
        assert!(!c.lookup(2));
        assert!(c.lookup(3));
    }

    #[test]
    fn cache_flush_empties() {
        let mut c = TranslationCache::new(2);
        c.insert(1);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.lookup(1));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = TranslationCache::new(0);
    }

    #[test]
    fn first_touch_misses_everything() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let a = Region::JavaHeap.base();
        assert_eq!(
            mmu.translate_data(a, PageSize::Large16M),
            TranslationOutcome::TlbMiss
        );
        assert_eq!(
            mmu.translate_data(a, PageSize::Large16M),
            TranslationOutcome::EratHit
        );
    }

    #[test]
    fn large_page_covers_many_erat_frames() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let base = Region::JavaHeap.base();
        // First touch: full miss.
        assert_eq!(
            mmu.translate_data(base, PageSize::Large16M),
            TranslationOutcome::TlbMiss
        );
        // A different 4 KB frame of the SAME 16 MB page: ERAT misses
        // (4 KB-grained) but the TLB hits (page-grained).
        assert_eq!(
            mmu.translate_data(base + 8192, PageSize::Large16M),
            TranslationOutcome::EratMissTlbHit
        );
    }

    #[test]
    fn small_pages_miss_tlb_per_4k() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let base = Region::DbBufferPool.base();
        assert_eq!(
            mmu.translate_data(base, PageSize::Small4K),
            TranslationOutcome::TlbMiss
        );
        // Next 4 KB page: both ERAT and TLB miss again.
        assert_eq!(
            mmu.translate_data(base + 4096, PageSize::Small4K),
            TranslationOutcome::TlbMiss
        );
    }

    #[test]
    fn inst_and_data_erats_are_separate() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let a = Region::JitCode.base();
        assert_eq!(
            mmu.translate_data(a, PageSize::Small4K),
            TranslationOutcome::TlbMiss
        );
        // Same address as instruction fetch: IERAT misses (separate ERAT)
        // but TLB (unified) hits.
        assert_eq!(
            mmu.translate_inst(a, PageSize::Small4K),
            TranslationOutcome::EratMissTlbHit
        );
    }

    #[test]
    fn erat_capacity_pressure_causes_repeat_misses() {
        let mut mmu = Mmu::new(MmuConfig {
            ierat_entries: 4,
            derat_entries: 4,
            tlb_entries: 1024,
        });
        let base = Region::Stacks.base();
        // Touch 8 distinct 4 KB frames, twice around: with only 4 ERAT
        // entries the second pass still misses the ERAT but hits the TLB.
        for round in 0..2 {
            for i in 0..8u64 {
                let outcome = mmu.translate_data(base + i * 4096, PageSize::Small4K);
                if round == 1 {
                    assert_eq!(outcome, TranslationOutcome::EratMissTlbHit, "frame {i}");
                }
            }
        }
    }
}
