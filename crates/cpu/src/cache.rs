//! Set-associative cache model with MESI line states.
//!
//! One structure serves every level: the 2-way FIFO write-through L1 D-cache,
//! the direct-mapped L1 I-cache, the 8-way shared L2 (the system's coherence
//! point), and the MCM-attached L3. Caches operate on *line addresses*
//! (`addr >> line_shift`); coherence state is kept per line so the hierarchy
//! can classify remote hits as shared vs. modified interventions the way the
//! POWER4 HPM does.

/// MESI coherence state of a cached line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Not present.
    #[default]
    Invalid,
    /// Present, clean, possibly also cached elsewhere.
    Shared,
    /// Present, clean, only copy.
    Exclusive,
    /// Present, dirty, only copy.
    Modified,
}

/// Replacement policy for a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replacement {
    /// First-in-first-out (POWER4's L1 D-cache).
    Fifo,
    /// Least-recently-used (approximated; used for L2/L3/I-cache).
    Lru,
}

/// Static configuration of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// POWER4 L1 D-cache: 32 KB, 2-way, FIFO, 128 B lines.
    #[must_use]
    pub fn power4_l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 128,
            ways: 2,
            replacement: Replacement::Fifo,
        }
    }

    /// POWER4 L1 I-cache: 64 KB, direct-mapped, 128 B lines.
    #[must_use]
    pub fn power4_l1i() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 128,
            ways: 1,
            replacement: Replacement::Lru,
        }
    }

    /// POWER4 shared L2: ~1.4 MB, 8-way, 128 B lines.
    #[must_use]
    pub fn power4_l2() -> Self {
        CacheConfig {
            size_bytes: 1440 * 1024,
            line_bytes: 128,
            ways: 8,
            replacement: Replacement::Lru,
        }
    }

    /// POWER4 MCM-attached L3: 32 MB, 8-way, 512 B lines.
    #[must_use]
    pub fn power4_l3() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024 * 1024,
            line_bytes: 512,
            ways: 8,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets implied by the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not internally consistent (sizes not
    /// powers of two, capacity not divisible by `line_bytes * ways`, or any
    /// field zero).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "need at least one way");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways as u64) && lines > 0,
            "capacity must be a whole number of sets"
        );
        // POWER4's L2 has 1440 sets, so set counts need not be powers of two;
        // indexing uses modulo rather than a mask.
        (lines / self.ways as u64) as usize
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64, // full line address; simpler than split tag/index and just as fast here
    state: Mesi,
    stamp: u64, // LRU timestamp or FIFO insertion order
}

/// A set-associative cache over line addresses.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: u64,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache from its configuration.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        SetAssocCache {
            cfg,
            sets: sets as u64,
            lines: vec![Line::default(); sets * cfg.ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line address (cache-line granule) of a byte address.
    #[inline]
    #[must_use]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes
    }

    /// Byte address of the start of line `line` — the inverse of
    /// [`SetAssocCache::line_of`]. Used when turning line-granule events
    /// (e.g. prefetches) back into addresses for the shared-hierarchy
    /// event buffers.
    #[inline]
    #[must_use]
    pub fn addr_of_line(&self, line: u64) -> u64 {
        line * self.cfg.line_bytes
    }

    #[inline]
    fn set_range(&self, line: u64) -> core::ops::Range<usize> {
        let set = (line % self.sets) as usize;
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    /// Looks up `line`; on a hit updates recency and returns the state.
    /// Counts toward hit/miss statistics.
    pub fn access(&mut self, line: u64) -> Option<Mesi> {
        self.tick += 1;
        let tick = self.tick;
        let is_lru = self.cfg.replacement == Replacement::Lru;
        let range = self.set_range(line);
        for l in &mut self.lines[range] {
            if l.state != Mesi::Invalid && l.tag == line {
                if is_lru {
                    l.stamp = tick;
                }
                self.hits += 1;
                return Some(l.state);
            }
        }
        self.misses += 1;
        None
    }

    /// Looks up `line` without disturbing recency or statistics (a coherence
    /// snoop from another cache).
    #[must_use]
    pub fn probe(&self, line: u64) -> Option<Mesi> {
        let range = self.set_range(line);
        self.lines[range]
            .iter()
            .find(|l| l.state != Mesi::Invalid && l.tag == line)
            .map(|l| l.state)
    }

    /// Inserts `line` in `state`, evicting the replacement victim if the set
    /// is full. Returns the evicted `(line, state)` if a valid line was
    /// displaced.
    ///
    /// Inserting a line that is already present just updates its state.
    pub fn insert(&mut self, line: u64, state: Mesi) -> Option<(u64, Mesi)> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        // Already present: refresh state.
        for l in &mut self.lines[range.clone()] {
            if l.state != Mesi::Invalid && l.tag == line {
                l.state = state;
                l.stamp = tick;
                return None;
            }
        }
        // Free way?
        for l in &mut self.lines[range.clone()] {
            if l.state == Mesi::Invalid {
                *l = Line {
                    tag: line,
                    state,
                    stamp: tick,
                };
                return None;
            }
        }
        // Evict: lowest stamp is both LRU victim and FIFO head (FIFO never
        // refreshes stamps on access, so the lowest stamp is oldest-inserted).
        let victim_idx = {
            let lines = &self.lines[range.clone()];
            let mut best = 0;
            for (i, l) in lines.iter().enumerate() {
                if l.stamp < lines[best].stamp {
                    best = i;
                }
            }
            range.start + best
        };
        let victim = self.lines[victim_idx];
        self.lines[victim_idx] = Line {
            tag: line,
            state,
            stamp: tick,
        };
        Some((victim.tag, victim.state))
    }

    /// Changes the state of a present line (coherence downgrade/upgrade).
    /// No-op when the line is absent.
    pub fn set_state(&mut self, line: u64, state: Mesi) {
        let range = self.set_range(line);
        for l in &mut self.lines[range] {
            if l.state != Mesi::Invalid && l.tag == line {
                l.state = state;
                return;
            }
        }
    }

    /// Invalidates a line. Returns its former state if it was present.
    pub fn invalidate(&mut self, line: u64) -> Option<Mesi> {
        let range = self.set_range(line);
        for l in &mut self.lines[range] {
            if l.state != Mesi::Invalid && l.tag == line {
                let s = l.state;
                l.state = Mesi::Invalid;
                return Some(s);
            }
        }
        None
    }

    /// `(hits, misses)` counted by [`SetAssocCache::access`].
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid lines currently held.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.state != Mesi::Invalid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, replacement: Replacement) -> SetAssocCache {
        // 4 sets when 2-way x 128B lines: 1 KB.
        SetAssocCache::new(CacheConfig {
            size_bytes: (128 * ways * 4) as u64,
            line_bytes: 128,
            ways,
            replacement,
        })
    }

    #[test]
    fn power4_shapes_are_consistent() {
        assert_eq!(CacheConfig::power4_l1d().sets(), 128);
        assert_eq!(CacheConfig::power4_l1i().sets(), 512);
        assert_eq!(CacheConfig::power4_l2().sets(), 1440);
        assert_eq!(CacheConfig::power4_l3().sets(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        let _ = CacheConfig {
            size_bytes: 300,
            line_bytes: 100,
            ways: 1,
            replacement: Replacement::Lru,
        }
        .sets();
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny(2, Replacement::Lru);
        let line = c.line_of(0x1000);
        assert_eq!(c.access(line), None);
        c.insert(line, Mesi::Exclusive);
        assert_eq!(c.access(line), Some(Mesi::Exclusive));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, Replacement::Lru);
        // Three lines mapping to the same set (stride = sets * line).
        let a = 0u64;
        let b = 4; // same set in a 4-set cache (line addresses)
        let d = 8;
        c.insert(a, Mesi::Shared);
        c.insert(b, Mesi::Shared);
        assert!(c.access(a).is_some()); // a is now most recent
        let evicted = c.insert(d, Mesi::Shared).expect("must evict");
        assert_eq!(evicted.0, b);
        assert!(c.probe(a).is_some());
        assert!(c.probe(b).is_none());
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = tiny(2, Replacement::Fifo);
        let (a, b, d) = (0u64, 4, 8);
        c.insert(a, Mesi::Shared);
        c.insert(b, Mesi::Shared);
        assert!(c.access(a).is_some()); // touching a must NOT save it under FIFO
        let evicted = c.insert(d, Mesi::Shared).expect("must evict");
        assert_eq!(evicted.0, a, "FIFO evicts oldest insertion");
    }

    #[test]
    fn insert_existing_updates_state() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(3, Mesi::Shared);
        assert_eq!(c.insert(3, Mesi::Modified), None);
        assert_eq!(c.probe(3), Some(Mesi::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(5, Mesi::Modified);
        c.set_state(5, Mesi::Shared);
        assert_eq!(c.probe(5), Some(Mesi::Shared));
        assert_eq!(c.invalidate(5), Some(Mesi::Shared));
        assert_eq!(c.probe(5), None);
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn probe_does_not_affect_lru_or_stats() {
        let mut c = tiny(2, Replacement::Lru);
        let (a, b, d) = (0u64, 4, 8);
        c.insert(a, Mesi::Shared);
        c.insert(b, Mesi::Shared);
        let _ = c.probe(a); // must not refresh a
        let evicted = c.insert(d, Mesi::Shared).expect("must evict");
        assert_eq!(evicted.0, a);
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny(1, Replacement::Lru); // direct-mapped, 4 sets
        for line in 0..4u64 {
            assert_eq!(c.insert(line, Mesi::Shared), None);
        }
        assert_eq!(c.occupancy(), 4);
        for line in 0..4u64 {
            assert!(c.access(line).is_some());
        }
    }

    #[test]
    fn line_of_uses_configured_line_size() {
        let c = tiny(2, Replacement::Lru);
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(127), 0);
        assert_eq!(c.line_of(128), 1);
    }
}
