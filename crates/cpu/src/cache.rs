//! Set-associative cache model with MESI line states.
//!
//! One structure serves every level: the 2-way FIFO write-through L1 D-cache,
//! the direct-mapped L1 I-cache, the 8-way shared L2 (the system's coherence
//! point), and the MCM-attached L3. Caches operate on *line addresses*
//! (`addr >> line_shift`); coherence state is kept per line so the hierarchy
//! can classify remote hits as shared vs. modified interventions the way the
//! POWER4 HPM does.

/// MESI coherence state of a cached line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Not present.
    #[default]
    Invalid,
    /// Present, clean, possibly also cached elsewhere.
    Shared,
    /// Present, clean, only copy.
    Exclusive,
    /// Present, dirty, only copy.
    Modified,
}

/// Replacement policy for a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replacement {
    /// First-in-first-out (POWER4's L1 D-cache).
    Fifo,
    /// Least-recently-used (approximated; used for L2/L3/I-cache).
    Lru,
}

/// Static configuration of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// POWER4 L1 D-cache: 32 KB, 2-way, FIFO, 128 B lines.
    #[must_use]
    pub fn power4_l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 128,
            ways: 2,
            replacement: Replacement::Fifo,
        }
    }

    /// POWER4 L1 I-cache: 64 KB, direct-mapped, 128 B lines.
    #[must_use]
    pub fn power4_l1i() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 128,
            ways: 1,
            replacement: Replacement::Lru,
        }
    }

    /// POWER4 shared L2: ~1.4 MB, 8-way, 128 B lines.
    #[must_use]
    pub fn power4_l2() -> Self {
        CacheConfig {
            size_bytes: 1440 * 1024,
            line_bytes: 128,
            ways: 8,
            replacement: Replacement::Lru,
        }
    }

    /// POWER4 MCM-attached L3: 32 MB, 8-way, 512 B lines.
    #[must_use]
    pub fn power4_l3() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024 * 1024,
            line_bytes: 512,
            ways: 8,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets implied by the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not internally consistent (sizes not
    /// powers of two, capacity not divisible by `line_bytes * ways`, or any
    /// field zero).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "need at least one way");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways as u64) && lines > 0,
            "capacity must be a whole number of sets"
        );
        // POWER4's L2 has 1440 sets, so set counts need not be powers of two;
        // indexing uses modulo rather than a mask.
        (lines / self.ways as u64) as usize
    }
}

/// High 64 bits of `lowbits * d`, where `lowbits` is a full 128-bit value.
/// Never overflows: the sum is bounded by `2^64 * d - 1 < 2^128`.
#[inline]
pub(crate) const fn mul128_hi64(lowbits: u128, d: u64) -> u64 {
    let bottom = ((lowbits as u64 as u128) * d as u128) >> 64;
    let top = (lowbits >> 64) * d as u128;
    ((bottom + top) >> 64) as u64
}

/// Precomputed magic constant for [`fastmod64`]: `ceil(2^128 / d)`.
/// For `d == 1` the wrapping add yields 0, and `fastmod64` then correctly
/// returns `x % 1 == 0` for every `x`.
#[inline]
pub(crate) const fn fastmod_magic(d: u64) -> u128 {
    (u128::MAX / d as u128).wrapping_add(1)
}

/// Exact `x % d` via Lemire's fastmod: one 128-bit multiply-low and one
/// 128×64 high multiply instead of a hardware divide. `m` must be
/// `fastmod_magic(d)`. POWER4's L2 has 1440 (non-power-of-two) sets, so set
/// indexing cannot be a mask and the per-access `%` showed up hot.
#[inline]
pub(crate) const fn fastmod64(x: u64, m: u128, d: u64) -> u64 {
    mul128_hi64(m.wrapping_mul(x as u128), d)
}

/// A set-associative cache over line addresses.
///
/// Lines are stored as parallel arrays (tags / states / stamps) rather than
/// an array of structs: a set walk that only compares tags then touches one
/// host cache line per 8-way set instead of three, which is what the
/// reconcile-phase L2 walks are bound by. Field-for-field the stored values
/// and every observable result are identical to the former layout.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: u64,
    /// `fastmod_magic(sets)`, fixed at construction.
    fastmod_m: u128,
    /// `log2(line_bytes)`; line size is asserted to be a power of two.
    line_shift: u32,
    /// Full line address per slot (simpler than split tag/index and just
    /// as fast here); meaningful only where `states` is not `Invalid`.
    tags: Vec<u64>,
    states: Vec<Mesi>,
    /// LRU timestamp or FIFO insertion order.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache from its configuration.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let slots = sets * cfg.ways;
        SetAssocCache {
            cfg,
            sets: sets as u64,
            fastmod_m: fastmod_magic(sets as u64),
            line_shift: cfg.line_bytes.trailing_zeros(),
            tags: vec![0; slots],
            states: vec![Mesi::Invalid; slots],
            stamps: vec![0; slots],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line address (cache-line granule) of a byte address.
    #[inline]
    #[must_use]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Byte address of the start of line `line` — the inverse of
    /// [`SetAssocCache::line_of`]. Used when turning line-granule events
    /// (e.g. prefetches) back into addresses for the shared-hierarchy
    /// event buffers.
    #[inline]
    #[must_use]
    pub fn addr_of_line(&self, line: u64) -> u64 {
        line << self.line_shift
    }

    #[inline]
    fn set_range(&self, line: u64) -> core::ops::Range<usize> {
        let set = fastmod64(line, self.fastmod_m, self.sets) as usize;
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    /// Looks up `line`; on a hit updates recency and returns the state.
    /// Counts toward hit/miss statistics.
    pub fn access(&mut self, line: u64) -> Option<Mesi> {
        self.access_at(line).map(|(_, state)| state)
    }

    /// Like [`SetAssocCache::access`], additionally reporting the global
    /// slot index of the hit line so a caller holding strong residency
    /// knowledge (the MRU line filter in `machine.rs`) can re-touch the
    /// line later via [`SetAssocCache::rehit`] without repeating the walk.
    pub(crate) fn access_at(&mut self, line: u64) -> Option<(usize, Mesi)> {
        self.tick += 1;
        let tick = self.tick;
        let is_lru = self.cfg.replacement == Replacement::Lru;
        for i in self.set_range(line) {
            if self.tags[i] == line && self.states[i] != Mesi::Invalid {
                if is_lru {
                    self.stamps[i] = tick;
                }
                self.hits += 1;
                return Some((i, self.states[i]));
            }
        }
        self.misses += 1;
        None
    }

    /// Replays a hit on a known-resident line at `slot`: identical counter,
    /// tick, and recency effects to [`SetAssocCache::access`] hitting that
    /// line, minus the set walk. The caller must guarantee residency (the
    /// MRU filters do, by invalidating their note whenever an insert could
    /// have displaced the line).
    pub(crate) fn rehit(&mut self, slot: usize) -> Mesi {
        self.tick += 1;
        self.hits += 1;
        debug_assert!(
            self.states[slot] != Mesi::Invalid,
            "rehit of an invalid slot"
        );
        if self.cfg.replacement == Replacement::Lru {
            self.stamps[slot] = self.tick;
        }
        self.states[slot]
    }

    /// Replays a known miss: identical counter and tick effects to
    /// [`SetAssocCache::access`] missing, minus the set walk.
    pub(crate) fn remiss(&mut self) {
        self.tick += 1;
        self.misses += 1;
    }

    /// Looks up `line` without disturbing recency or statistics (a coherence
    /// snoop from another cache).
    #[must_use]
    pub fn probe(&self, line: u64) -> Option<Mesi> {
        self.set_range(line)
            .find(|&i| self.tags[i] == line && self.states[i] != Mesi::Invalid)
            .map(|i| self.states[i])
    }

    /// Inserts `line` in `state`, evicting the replacement victim if the set
    /// is full. Returns the evicted `(line, state)` if a valid line was
    /// displaced.
    ///
    /// Inserting a line that is already present just updates its state.
    pub fn insert(&mut self, line: u64, state: Mesi) -> Option<(u64, Mesi)> {
        self.insert_at(line, state).1
    }

    /// Like [`SetAssocCache::insert`], additionally reporting the global
    /// slot index the line landed in (for the MRU line filter).
    pub(crate) fn insert_at(&mut self, line: u64, state: Mesi) -> (usize, Option<(u64, Mesi)>) {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        // Already present: refresh state.
        for i in range.clone() {
            if self.tags[i] == line && self.states[i] != Mesi::Invalid {
                self.states[i] = state;
                self.stamps[i] = tick;
                return (i, None);
            }
        }
        // Free way?
        for i in range.clone() {
            if self.states[i] == Mesi::Invalid {
                self.tags[i] = line;
                self.states[i] = state;
                self.stamps[i] = tick;
                return (i, None);
            }
        }
        // Evict: lowest stamp is both LRU victim and FIFO head (FIFO never
        // refreshes stamps on access, so the lowest stamp is oldest-inserted).
        let mut best = range.start;
        for i in range {
            if self.stamps[i] < self.stamps[best] {
                best = i;
            }
        }
        let victim = (self.tags[best], self.states[best]);
        self.tags[best] = line;
        self.states[best] = state;
        self.stamps[best] = tick;
        (best, Some(victim))
    }

    /// Changes the state of a present line (coherence downgrade/upgrade).
    /// No-op when the line is absent.
    pub fn set_state(&mut self, line: u64, state: Mesi) {
        for i in self.set_range(line) {
            if self.tags[i] == line && self.states[i] != Mesi::Invalid {
                self.states[i] = state;
                return;
            }
        }
    }

    /// Changes the state of the line at a known slot — the walk-free form
    /// of [`SetAssocCache::set_state`] for callers that just located the
    /// line via [`SetAssocCache::access_at`].
    pub(crate) fn set_state_at(&mut self, slot: usize, state: Mesi) {
        debug_assert!(
            self.states[slot] != Mesi::Invalid,
            "set_state_at of an invalid slot"
        );
        self.states[slot] = state;
    }

    /// Invalidates a line. Returns its former state if it was present.
    pub fn invalidate(&mut self, line: u64) -> Option<Mesi> {
        for i in self.set_range(line) {
            if self.tags[i] == line && self.states[i] != Mesi::Invalid {
                let s = self.states[i];
                self.states[i] = Mesi::Invalid;
                return Some(s);
            }
        }
        None
    }

    /// `(hits, misses)` counted by [`SetAssocCache::access`].
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid lines currently held.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.states
            .iter()
            .filter(|&&st| st != Mesi::Invalid)
            .count()
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for Mesi {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag = match self {
            Mesi::Invalid => 0u64,
            Mesi::Shared => 1,
            Mesi::Exclusive => 2,
            Mesi::Modified => 3,
        };
        io.word(&mut tag);
        *self = match tag {
            1 => Mesi::Shared,
            2 => Mesi::Exclusive,
            3 => Mesi::Modified,
            _ => Mesi::Invalid,
        };
    }
}

impl Persist for SetAssocCache {
    /// Sizing (`cfg`, `sets`, fastmod constants) is config-derived and
    /// rebuilt by construction; only line contents and statistics persist.
    // jas-lint: allow(D009, reason = "cfg and the sets/fastmod_m/line_shift sizing are config-derived, rebuilt by construction")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.tags);
        snap::persist_slice(io, &mut self.states);
        snap::persist_slice(io, &mut self.stamps);
        self.tick.persist(io);
        self.hits.persist(io);
        self.misses.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, replacement: Replacement) -> SetAssocCache {
        // 4 sets when 2-way x 128B lines: 1 KB.
        SetAssocCache::new(CacheConfig {
            size_bytes: (128 * ways * 4) as u64,
            line_bytes: 128,
            ways,
            replacement,
        })
    }

    #[test]
    fn power4_shapes_are_consistent() {
        assert_eq!(CacheConfig::power4_l1d().sets(), 128);
        assert_eq!(CacheConfig::power4_l1i().sets(), 512);
        assert_eq!(CacheConfig::power4_l2().sets(), 1440);
        assert_eq!(CacheConfig::power4_l3().sets(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        let _ = CacheConfig {
            size_bytes: 300,
            line_bytes: 100,
            ways: 1,
            replacement: Replacement::Lru,
        }
        .sets();
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny(2, Replacement::Lru);
        let line = c.line_of(0x1000);
        assert_eq!(c.access(line), None);
        c.insert(line, Mesi::Exclusive);
        assert_eq!(c.access(line), Some(Mesi::Exclusive));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, Replacement::Lru);
        // Three lines mapping to the same set (stride = sets * line).
        let a = 0u64;
        let b = 4; // same set in a 4-set cache (line addresses)
        let d = 8;
        c.insert(a, Mesi::Shared);
        c.insert(b, Mesi::Shared);
        assert!(c.access(a).is_some()); // a is now most recent
        let evicted = c.insert(d, Mesi::Shared).expect("must evict");
        assert_eq!(evicted.0, b);
        assert!(c.probe(a).is_some());
        assert!(c.probe(b).is_none());
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = tiny(2, Replacement::Fifo);
        let (a, b, d) = (0u64, 4, 8);
        c.insert(a, Mesi::Shared);
        c.insert(b, Mesi::Shared);
        assert!(c.access(a).is_some()); // touching a must NOT save it under FIFO
        let evicted = c.insert(d, Mesi::Shared).expect("must evict");
        assert_eq!(evicted.0, a, "FIFO evicts oldest insertion");
    }

    #[test]
    fn insert_existing_updates_state() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(3, Mesi::Shared);
        assert_eq!(c.insert(3, Mesi::Modified), None);
        assert_eq!(c.probe(3), Some(Mesi::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(5, Mesi::Modified);
        c.set_state(5, Mesi::Shared);
        assert_eq!(c.probe(5), Some(Mesi::Shared));
        assert_eq!(c.invalidate(5), Some(Mesi::Shared));
        assert_eq!(c.probe(5), None);
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn probe_does_not_affect_lru_or_stats() {
        let mut c = tiny(2, Replacement::Lru);
        let (a, b, d) = (0u64, 4, 8);
        c.insert(a, Mesi::Shared);
        c.insert(b, Mesi::Shared);
        let _ = c.probe(a); // must not refresh a
        let evicted = c.insert(d, Mesi::Shared).expect("must evict");
        assert_eq!(evicted.0, a);
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny(1, Replacement::Lru); // direct-mapped, 4 sets
        for line in 0..4u64 {
            assert_eq!(c.insert(line, Mesi::Shared), None);
        }
        assert_eq!(c.occupancy(), 4);
        for line in 0..4u64 {
            assert!(c.access(line).is_some());
        }
    }

    #[test]
    fn line_of_uses_configured_line_size() {
        let c = tiny(2, Replacement::Lru);
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(127), 0);
        assert_eq!(c.line_of(128), 1);
    }

    /// Pins the Lemire reduction against the hardware `%` for every set
    /// count the POWER4 shapes use, plus adversarial divisors and line
    /// addresses (edge-of-range, near-multiple, and pseudo-random values).
    #[test]
    fn fastmod_matches_modulo_for_all_power4_set_counts() {
        let divisors: [u64; 9] = [
            CacheConfig::power4_l1d().sets() as u64, // 128
            CacheConfig::power4_l1i().sets() as u64, // 512
            CacheConfig::power4_l2().sets() as u64,  // 1440 (non-power-of-2)
            CacheConfig::power4_l3().sets() as u64,  // 8192
            1,
            3,
            1439,
            u64::MAX,
            u64::MAX - 1,
        ];
        for &d in &divisors {
            let m = fastmod_magic(d);
            let mut probes: Vec<u64> = vec![
                0,
                1,
                d.wrapping_sub(1),
                d,
                d.wrapping_add(1),
                d.wrapping_mul(3),
                d.wrapping_mul(3).wrapping_sub(1),
                u64::MAX,
                u64::MAX - 1,
                u64::MAX / 2,
            ];
            // Pseudo-random 64-bit probes (SplitMix64-style walk).
            let mut z = 0x1234_5678_9ABC_DEF0u64;
            for _ in 0..10_000 {
                z = z
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                probes.push(z);
            }
            for x in probes {
                assert_eq!(fastmod64(x, m, d), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn slot_indexed_paths_match_walked_paths() {
        // Drive two identical caches: one via access/insert, one via the
        // slot-returning variants plus rehit, and require identical stats,
        // recency, and victim choices.
        for replacement in [Replacement::Lru, Replacement::Fifo] {
            let mut a = tiny(2, replacement);
            let mut b = tiny(2, replacement);
            let lines = [0u64, 4, 0, 0, 8, 4, 0, 12, 8, 0];
            let mut last: Option<(u64, usize)> = None;
            for &line in &lines {
                let sa = a.access(line);
                let hit_b = match last {
                    Some((l, slot)) if l == line => Some((slot, b.rehit(slot))),
                    _ => b.access_at(line),
                };
                assert_eq!(sa, hit_b.map(|(_, s)| s));
                match hit_b {
                    Some((slot, _)) => last = Some((line, slot)),
                    None => {
                        a.insert(line, Mesi::Shared);
                        let (slot, _) = b.insert_at(line, Mesi::Shared);
                        last = Some((line, slot));
                    }
                }
            }
            assert_eq!(a.stats(), b.stats());
            // Force evictions in both and require identical victims.
            for conflict in [16u64, 20, 24, 28] {
                assert_eq!(
                    a.insert(conflict, Mesi::Shared),
                    b.insert(conflict, Mesi::Shared),
                    "victim divergence ({replacement:?})"
                );
            }
        }
    }
}
