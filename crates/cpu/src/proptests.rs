//! Property-based tests for the microarchitectural structures: each model
//! is checked against a simple reference implementation or an invariant
//! that must hold for every access sequence.

use crate::branch::{BranchConfig, BranchUnit};
use crate::cache::{CacheConfig, Mesi, Replacement, SetAssocCache};
use crate::prefetch::{PrefetchConfig, Prefetcher};
use crate::tlb::TranslationCache;
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model of a fully associative LRU cache of `cap` entries.
struct RefLru {
    cap: usize,
    entries: Vec<u64>, // most recent last
}

impl RefLru {
    fn new(cap: usize) -> Self {
        RefLru {
            cap,
            entries: Vec::new(),
        }
    }
    fn lookup(&mut self, tag: u64) -> bool {
        if let Some(i) = self.entries.iter().position(|&t| t == tag) {
            self.entries.remove(i);
            self.entries.push(tag);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, tag: u64) {
        if let Some(i) = self.entries.iter().position(|&t| t == tag) {
            self.entries.remove(i);
        } else if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(tag);
    }
}

proptest! {
    /// The translation cache behaves exactly like a reference LRU.
    #[test]
    fn translation_cache_matches_reference_lru(
        cap in 1usize..16,
        ops in proptest::collection::vec((any::<bool>(), 0u64..32), 1..300),
    ) {
        let mut sut = TranslationCache::new(cap);
        let mut reference = RefLru::new(cap);
        for (is_insert, tag) in ops {
            if is_insert {
                sut.insert(tag);
                reference.insert(tag);
            } else {
                // Lookups refresh recency in both models on hit.
                prop_assert_eq!(sut.lookup(tag), reference.lookup(tag));
            }
            prop_assert!(sut.occupancy() <= cap);
        }
    }

    /// A second access to the same line always hits, regardless of history,
    /// as long as no other access mapped to the same set in between.
    #[test]
    fn cache_immediate_reaccess_hits(lines in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 128,
            ways: 2,
            replacement: Replacement::Fifo,
        });
        for line in lines {
            if c.access(line).is_none() {
                c.insert(line, Mesi::Shared);
            }
            prop_assert!(c.probe(line).is_some(), "line just inserted must be present");
        }
    }

    /// Occupancy never exceeds capacity and eviction returns only lines
    /// that were actually resident.
    #[test]
    fn cache_occupancy_bounded(lines in proptest::collection::vec(0u64..100_000, 1..500)) {
        let cfg = CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 128,
            ways: 2,
            replacement: Replacement::Lru,
        };
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        let mut c = SetAssocCache::new(cfg);
        let mut resident: HashMap<u64, ()> = HashMap::new();
        for line in lines {
            if let Some((victim, _)) = c.insert(line, Mesi::Shared) {
                prop_assert!(resident.remove(&victim).is_some(), "evicted a non-resident line");
            }
            resident.insert(line, ());
            prop_assert!(c.occupancy() <= capacity);
            prop_assert_eq!(c.occupancy(), resident.len());
        }
    }

    /// The branch predictor's misprediction rate on a fully biased branch
    /// converges to ~0 for any interleaving of other sites.
    #[test]
    fn biased_branch_learned_despite_noise(
        noise_sites in proptest::collection::vec(1u64..64, 0..200),
    ) {
        let mut b = BranchUnit::new(BranchConfig::default());
        // Warm up the target site.
        for _ in 0..8 {
            b.resolve_conditional(0xDEAD_0000, true);
        }
        let mut miss = 0;
        for (i, &site) in noise_sites.iter().enumerate() {
            b.resolve_conditional(site * 0x9E37_79B9, i % 2 == 0);
            if !b.resolve_conditional(0xDEAD_0000, true).correct {
                miss += 1;
            }
        }
        // Aliasing could cause occasional misses but never systematic ones.
        prop_assert!(miss * 5 <= noise_sites.len().max(4), "missed {miss}/{}", noise_sites.len());
    }

    /// The prefetcher never emits more lines than its configured depth and
    /// never reports both an allocation and an advance for one access.
    #[test]
    fn prefetcher_output_bounded(lines in proptest::collection::vec(0u64..2_000, 1..400)) {
        let cfg = PrefetchConfig::default();
        let mut p = Prefetcher::new(cfg);
        for line in lines {
            let d = p.on_l1_load(line, true);
            prop_assert!(d.l1_lines.len() + d.l2_lines.len() <= cfg.max_depth as usize);
            prop_assert!(!(d.allocated && d.advanced));
            prop_assert!(p.active_streams() <= cfg.streams);
        }
    }

    /// A pure ascending walk eventually turns (almost) every access into a
    /// stream hit.
    #[test]
    fn prefetcher_locks_onto_any_ascending_walk(start in 0u64..1_000_000, len in 16usize..200) {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        let mut advanced = 0;
        for i in 0..len as u64 {
            if p.on_l1_load(start + i, true).advanced {
                advanced += 1;
            }
        }
        // All but the first couple of accesses ride the stream.
        prop_assert!(advanced >= len - 4, "only {advanced}/{len} advanced");
    }
}
