//! Property-based tests for the microarchitectural structures: each model
//! is checked against a simple reference implementation or an invariant
//! that must hold for every access sequence.

use crate::branch::{BranchConfig, BranchUnit};
use crate::cache::{CacheConfig, Mesi, Replacement, SetAssocCache};
use crate::prefetch::{PrefetchConfig, Prefetcher};
use crate::tlb::TranslationCache;
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model of a fully associative LRU cache of `cap` entries.
struct RefLru {
    cap: usize,
    entries: Vec<u64>, // most recent last
}

impl RefLru {
    fn new(cap: usize) -> Self {
        RefLru {
            cap,
            entries: Vec::new(),
        }
    }
    fn lookup(&mut self, tag: u64) -> bool {
        if let Some(i) = self.entries.iter().position(|&t| t == tag) {
            self.entries.remove(i);
            self.entries.push(tag);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, tag: u64) {
        if let Some(i) = self.entries.iter().position(|&t| t == tag) {
            self.entries.remove(i);
        } else if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(tag);
    }
}

proptest! {
    /// The translation cache behaves exactly like a reference LRU, through
    /// all three entry points (`lookup`, `insert`, `lookup_or_insert`).
    #[test]
    fn translation_cache_matches_reference_lru(
        cap in 1usize..16,
        ops in proptest::collection::vec((0u8..3, 0u64..32), 1..300),
    ) {
        let mut sut = TranslationCache::new(cap);
        let mut reference = RefLru::new(cap);
        for (kind, tag) in ops {
            match kind {
                0 => {
                    sut.insert(tag);
                    reference.insert(tag);
                }
                1 => {
                    // Lookups refresh recency in both models on hit.
                    prop_assert_eq!(sut.lookup(tag), reference.lookup(tag));
                }
                _ => {
                    let hit = reference.lookup(tag);
                    if !hit {
                        reference.insert(tag);
                    }
                    prop_assert_eq!(sut.lookup_or_insert(tag), hit);
                }
            }
            prop_assert!(sut.occupancy() <= cap);
        }
    }

    /// A second access to the same line always hits, regardless of history,
    /// as long as no other access mapped to the same set in between.
    #[test]
    fn cache_immediate_reaccess_hits(lines in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 128,
            ways: 2,
            replacement: Replacement::Fifo,
        });
        for line in lines {
            if c.access(line).is_none() {
                c.insert(line, Mesi::Shared);
            }
            prop_assert!(c.probe(line).is_some(), "line just inserted must be present");
        }
    }

    /// Occupancy never exceeds capacity and eviction returns only lines
    /// that were actually resident.
    #[test]
    fn cache_occupancy_bounded(lines in proptest::collection::vec(0u64..100_000, 1..500)) {
        let cfg = CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 128,
            ways: 2,
            replacement: Replacement::Lru,
        };
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        let mut c = SetAssocCache::new(cfg);
        let mut resident: HashMap<u64, ()> = HashMap::new();
        for line in lines {
            if let Some((victim, _)) = c.insert(line, Mesi::Shared) {
                prop_assert!(resident.remove(&victim).is_some(), "evicted a non-resident line");
            }
            resident.insert(line, ());
            prop_assert!(c.occupancy() <= capacity);
            prop_assert_eq!(c.occupancy(), resident.len());
        }
    }

    /// The branch predictor's misprediction rate on a fully biased branch
    /// converges to ~0 for any interleaving of other sites.
    #[test]
    fn biased_branch_learned_despite_noise(
        noise_sites in proptest::collection::vec(1u64..64, 0..200),
    ) {
        let mut b = BranchUnit::new(BranchConfig::default());
        // Warm up the target site.
        for _ in 0..8 {
            b.resolve_conditional(0xDEAD_0000, true);
        }
        let mut miss = 0;
        for (i, &site) in noise_sites.iter().enumerate() {
            b.resolve_conditional(site * 0x9E37_79B9, i % 2 == 0);
            if !b.resolve_conditional(0xDEAD_0000, true).correct {
                miss += 1;
            }
        }
        // Aliasing could cause occasional misses but never systematic ones.
        prop_assert!(miss * 5 <= noise_sites.len().max(4), "missed {miss}/{}", noise_sites.len());
    }

    /// The prefetcher never emits more lines than its configured depth and
    /// never reports both an allocation and an advance for one access.
    #[test]
    fn prefetcher_output_bounded(lines in proptest::collection::vec(0u64..2_000, 1..400)) {
        let cfg = PrefetchConfig::default();
        let mut p = Prefetcher::new(cfg);
        for line in lines {
            let d = p.on_l1_load(line, true);
            prop_assert!(d.l1_lines.len() + d.l2_lines.len() <= cfg.max_depth as usize);
            prop_assert!(!(d.allocated && d.advanced));
            prop_assert!(p.active_streams() <= cfg.streams);
        }
    }

    /// The exact-equivalence fast paths (MRU line filter in front of the
    /// L1 D-cache, IERAT/DERAT frame filters, slot-replay hits) must be
    /// bit-identical to the full paths: same HPM counters, same cycle
    /// charges, same cache statistics and occupancy, and same replacement
    /// victims afterwards.
    #[test]
    fn fast_paths_are_bit_identical(
        ops in proptest::collection::vec((0u8..8, 0u64..96, any::<bool>()), 1..400),
    ) {
        use crate::address::Region;
        use crate::machine::{Machine, MachineConfig};
        use crate::uop::MicroOp;

        let build = |fast_paths: bool| {
            Machine::new(MachineConfig {
                fast_paths,
                ..MachineConfig::default()
            })
        };
        let mut on = build(true);
        let mut off = build(false);
        let heap = Region::JavaHeap.base();
        let code = Region::JitCode.base();
        let mut ia = code;
        for (i, &(kind, idx, flag)) in ops.iter().enumerate() {
            // Mix of tight same-line reuse (16 B steps — the allocation
            // write pattern), line strides (sequential, wakes the
            // prefetcher), and frame strides (ERAT/TLB pressure).
            let ea = match kind % 3 {
                0 => heap + idx * 16,
                1 => heap + idx * 128,
                _ => heap + idx * 4096,
            };
            let op = match kind {
                0 | 1 => MicroOp::Load { ea },
                2 | 3 => MicroOp::Store { ea },
                4 => MicroOp::Larx { ea },
                5 => MicroOp::CondBranch { site: idx, taken: flag },
                6 => MicroOp::Sync,
                _ => MicroOp::Alu,
            };
            // Fetch addresses advance like real code: mostly sequential,
            // occasionally jumping to a new page.
            ia = if idx % 13 == 0 { code + idx * 4096 } else { ia + 4 };
            let ca = on.exec(0, ia, op);
            let cb = off.exec(0, ia, op);
            prop_assert_eq!(ca.to_bits(), cb.to_bits(), "cycle divergence at op {}", i);
            if kind == 4 {
                // A LARX is always followed by its STCX in real streams.
                let st = MicroOp::Stcx { ea, fail: flag };
                ia += 4;
                prop_assert_eq!(on.exec(0, ia, st).to_bits(), off.exec(0, ia, st).to_bits());
            }
        }
        prop_assert_eq!(on.counters(0), off.counters(0));
        prop_assert_eq!(on.l1d(0).stats(), off.l1d(0).stats());
        prop_assert_eq!(on.l1i(0).stats(), off.l1i(0).stats());
        prop_assert_eq!(on.l1d(0).occupancy(), off.l1d(0).occupancy());
        prop_assert_eq!(on.l1i(0).occupancy(), off.l1i(0).occupancy());
        // Identical replacement victims from here on: force evictions in
        // cloned L1 Ds and require the same line to fall out of every set.
        let mut va = on.l1d(0).clone();
        let mut vb = off.l1d(0).clone();
        for probe in 0..96u64 {
            let conflict = va.line_of(heap + probe * 4096) ^ 0x5555;
            prop_assert_eq!(
                va.insert(conflict, Mesi::Shared),
                vb.insert(conflict, Mesi::Shared),
                "victim divergence at probe {}", probe
            );
        }
    }

    /// The back-to-back store replay note in `MemorySystem` is bit-identical
    /// to the full store path: same return values and identical L2/L3
    /// internals (lines, states, stamps, ticks, hit/miss counts) for any
    /// interleaving of stores, load misses, fetches, and prefetches across
    /// chips. The `slow` system has its note cleared before every event, so
    /// every one of its stores takes the full invalidate-walk path.
    #[test]
    fn store_replay_note_is_bit_identical(
        ops in proptest::collection::vec((0u8..8, 0usize..2, 0u64..512), 1..400),
    ) {
        use crate::hierarchy::{MemorySystem, Topology};
        let mk = || {
            MemorySystem::new(
                Topology::default(),
                CacheConfig {
                    size_bytes: 16 * 1024,
                    line_bytes: 128,
                    ways: 2,
                    replacement: Replacement::Lru,
                },
                CacheConfig {
                    size_bytes: 64 * 1024,
                    line_bytes: 512,
                    ways: 4,
                    replacement: Replacement::Fifo,
                },
            )
        };
        let mut fast = mk();
        let mut slow = mk();
        for (i, &(kind, chip, blk)) in ops.iter().enumerate() {
            // 16 B strides: eight consecutive blocks share a 128 B line,
            // reproducing the allocation-write runs the note targets.
            let addr = blk * 16;
            slow.clear_store_note();
            match kind {
                // Biased toward stores — the path under test.
                0..=4 => prop_assert_eq!(
                    fast.store(chip, addr),
                    slow.store(chip, addr),
                    "store divergence at op {}", i
                ),
                5 => prop_assert_eq!(fast.load_miss(chip, addr), slow.load_miss(chip, addr)),
                6 => prop_assert_eq!(fast.fetch_inst(chip, addr), slow.fetch_inst(chip, addr)),
                _ => {
                    fast.prefetch_into_l2(chip, addr);
                    slow.prefetch_into_l2(chip, addr);
                }
            }
        }
        // The note itself differs by construction (slow's is cleared before
        // every event); drop both so the compare covers only cache state.
        fast.clear_store_note();
        slow.clear_store_note();
        prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
    }

    /// The prefetcher's no-match scan-note replay is bit-identical to the
    /// full stream scan: same decisions and same internal state for any
    /// access sequence. The `slow` engine has its note cleared before every
    /// call, so it always walks the stream table.
    #[test]
    fn prefetch_scan_note_is_bit_identical(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..500),
    ) {
        let mut fast = Prefetcher::new(PrefetchConfig::default());
        let mut slow = Prefetcher::new(PrefetchConfig::default());
        for (i, &(line, miss)) in ops.iter().enumerate() {
            slow.clear_scan_note();
            prop_assert_eq!(
                fast.on_l1_load(line, miss),
                slow.on_l1_load(line, miss),
                "decision divergence at op {}", i
            );
        }
        // The note itself differs by construction; drop both so the compare
        // covers streams, recent-miss filter, and tick.
        fast.clear_scan_note();
        slow.clear_scan_note();
        prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
    }

    /// A pure ascending walk eventually turns (almost) every access into a
    /// stream hit.
    #[test]
    fn prefetcher_locks_onto_any_ascending_walk(start in 0u64..1_000_000, len in 16usize..200) {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        let mut advanced = 0;
        for i in 0..len as u64 {
            if p.on_l1_load(start + i, true).advanced {
                advanced += 1;
            }
        }
        // All but the first couple of accesses ride the stream.
        prop_assert!(advanced >= len - 4, "only {advanced}/{len} advanced");
    }
}
