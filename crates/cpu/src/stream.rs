//! Synthetic instruction-stream generation.
//!
//! The upper layers of the simulator (JVM, application server, database,
//! kernel) know *what* is running — which method, over which data — and
//! describe it as a [`StreamProfile`]: instruction mix, branch behaviour,
//! code footprint, and a weighted set of data regions with access patterns.
//! [`StreamGen`] turns a profile into a concrete stream of `(ia, MicroOp)`
//! pairs whose *statistics* (reuse distances, branch biases, page walks)
//! drive the machine model's real caches, TLBs, and predictors.
//!
//! This is the central substitution of the reproduction (see DESIGN.md):
//! instead of executing PowerPC binaries we execute statistically
//! representative streams, so every figure's numbers *emerge* from the same
//! microarchitectural mechanisms the paper measured.

use crate::cache::{fastmod64, fastmod_magic};
use crate::uop::MicroOp;
use jas_simkernel::dist::Zipf;
use jas_simkernel::Rng;

/// A contiguous window of the address space used by a profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// First byte of the window.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Window {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn new(base: u64, len: u64) -> Self {
        assert!(len > 0, "window must be non-empty");
        Window { base, len }
    }
}

/// How a data region is accessed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AccessPattern {
    /// Intense reuse of a small footprint (stack frames, hot locals).
    Hot {
        /// Bytes of the region actually cycled through.
        footprint: u64,
    },
    /// Skewed object/page popularity: a Zipf-weighted hot subset receives
    /// `hot_fraction` of references; the rest scatter uniformly over the
    /// whole window (the cold tail that stresses L2/L3/memory).
    Skewed {
        /// Bytes covered by the hot subset.
        hot_bytes: u64,
        /// Granule of an "object" or "page" within the region.
        granule: u64,
        /// Fraction of references that go to the hot subset.
        hot_fraction: f64,
        /// Consecutive references issued within one 4 KB frame before a new
        /// granule is drawn — real code clusters its accesses (object field
        /// walks, row processing), which is what keeps ERAT miss spacing in
        /// the paper's >100-instruction band.
        burst: u32,
    },
    /// Sequential walk with the given stride (GC marking, table scans).
    Sequential {
        /// Bytes advanced per reference.
        stride: u64,
    },
    /// Uniform random over the window, with page-burst locality.
    Uniform {
        /// Consecutive references within one 4 KB frame per draw.
        burst: u32,
    },
}

/// A weighted data region within a profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataRegion {
    /// The address window.
    pub window: Window,
    /// Relative probability of a reference landing in this region.
    pub weight: f64,
    /// Access pattern within the region.
    pub pattern: AccessPattern,
}

/// Statistical description of the instruction stream produced while a given
/// kind of code runs.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamProfile {
    /// Code window instruction fetches walk through.
    pub code: Window,
    /// Probability per instruction of a control transfer to a new code
    /// location (function call, taken branch out of line).
    pub code_jump_rate: f64,
    /// Fraction of control transfers that stay within the current 4 KB code
    /// page (loops, near branches); the rest are far calls drawn from the
    /// code-popularity distribution.
    pub code_local: f64,
    /// Bytes of the "active method set" — the code that far calls mostly
    /// target over short windows. The full `code` window is still visited
    /// (10% of far calls go anywhere), so the multi-megabyte footprint
    /// keeps pressuring the I-caches while the ITLB sees page reuse.
    pub code_active: u64,
    /// Zipf exponent of code-location popularity (lower = flatter profile;
    /// the paper's workload is famously flat).
    pub code_zipf: f64,
    /// Loads per instruction (paper: 1/3.2 for the workload).
    pub loads_per_instr: f64,
    /// Stores per instruction (paper: 1/4.5).
    pub stores_per_instr: f64,
    /// Conditional branches per instruction.
    pub cond_branch_per_instr: f64,
    /// Indirect branches (virtual calls) per instruction.
    pub ind_branch_per_instr: f64,
    /// Probability that a conditional branch follows its site's bias
    /// (higher = more predictable).
    pub cond_bias_strength: f64,
    /// Distinct conditional-branch sites in the code window.
    pub cond_sites: usize,
    /// Distinct indirect-branch sites.
    pub ind_sites: usize,
    /// Maximum receiver polymorphism of an indirect site (distinct targets).
    pub ind_targets_max: u32,
    /// LARX (lock acquisition) per instruction (paper: ~1/600).
    pub larx_per_instr: f64,
    /// Probability a STCX fails (contention).
    pub stcx_fail_prob: f64,
    /// SYNC barriers per instruction.
    pub sync_per_instr: f64,
    /// Subroutine calls per instruction (each is eventually balanced by a
    /// return, so control-transfer overhead is twice this rate). Calls and
    /// returns displace ALU work only, leaving the calibrated memory and
    /// branch mixes untouched.
    pub call_per_instr: f64,
    /// Fraction of stores that are *allocation writes*: object
    /// initialization walking a fresh bump pointer through lines never
    /// loaded. On a write-through, no-allocate-on-store-miss L1 (POWER4),
    /// every such store misses — the mechanism behind the paper's store
    /// miss rate (1 in 5) being far higher than the load miss rate
    /// (1 in 12).
    pub store_fresh_fraction: f64,
    /// Weighted data regions.
    pub data: Vec<DataRegion>,
}

impl StreamProfile {
    /// Validates internal consistency, panicking with a description of the
    /// first problem found. Called by [`StreamGen::new`].
    ///
    /// # Panics
    ///
    /// Panics if rates are negative, exceed 1 in total, or no data region is
    /// given while loads/stores are nonzero.
    pub fn validate(&self) {
        let rates = [
            self.loads_per_instr,
            self.stores_per_instr,
            self.cond_branch_per_instr,
            self.ind_branch_per_instr,
            self.larx_per_instr,
            self.sync_per_instr,
            self.call_per_instr * 2.0, // calls plus their returns
        ];
        for r in rates {
            assert!(
                (0.0..=1.0).contains(&r),
                "per-instruction rate out of range: {r}"
            );
        }
        let total: f64 = rates.iter().sum();
        assert!(total <= 1.0, "instruction mix exceeds 1.0: {total}");
        if self.loads_per_instr > 0.0 || self.stores_per_instr > 0.0 {
            assert!(
                !self.data.is_empty(),
                "memory ops require at least one data region"
            );
        }
        assert!((0.0..=1.0).contains(&self.cond_bias_strength));
        assert!((0.0..=1.0).contains(&self.stcx_fail_prob));
        assert!((0.0..=1.0).contains(&self.store_fresh_fraction));
        assert!(
            self.cond_sites > 0 && self.ind_sites > 0,
            "need branch sites"
        );
        assert!(self.ind_targets_max > 0, "need at least one target");
    }
}

const HOT_RANKS: usize = 4096;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Precomputed per-profile sampling state: the instruction-mix ladder as
/// cumulative fixed-point thresholds, plus the scalar parameters the
/// generator needs per op (copied out to satisfy borrow rules). Built once
/// in [`StreamGen::new`] instead of being reassembled on every op.
///
/// **Exactness.** `Rng::next_f64()` yields `m * 2^-53` with
/// `m = next_u64() >> 11`, so the original comparison `roll < acc` is
/// precisely `m < acc * 2^53`. Scaling an f64 by 2^53 only shifts its
/// exponent (exact for all finite values in range), and for an integer `m`
/// and real `x`, `m < x` ⟺ `m < ceil(x)` (when `x` is an integer
/// `ceil(x) = x`; otherwise no integer lies in `[x, ceil(x))`). The
/// cumulative sums below perform the identical f64 additions in the
/// identical order as the original per-op ladder, so each threshold — and
/// therefore every op-class decision — is bit-exact.
#[derive(Clone, Copy, Debug)]
struct MixTable {
    t_load: u64,
    t_store: u64,
    t_cond: u64,
    t_ind: u64,
    t_larx: u64,
    t_sync: u64,
    t_call: u64,
    /// Fixed-point forms of the per-op `Rng::chance(p)` probabilities
    /// (`chance(p)` is `m < p * 2^53` for the same 53-bit draw `m` — see
    /// the exactness note above): the code-jump rate, the conditional-bias
    /// follow rate, and the fresh-store (allocation write) fraction.
    t_jump: u64,
    t_bias: u64,
    t_fresh: u64,
    stcx_fail_prob: f64,
    cond_sites: usize,
    ind_sites: usize,
    ind_targets_max: u32,
    code_base: u64,
    code_len: u64,
    /// `fastmod_magic(code_len)` for the cold-code and indirect-target `%`.
    code_len_m: u128,
    /// Active-code slot count (`code_active.clamp(256, len) / 256`) and its
    /// fastmod magic — the far-call `%` divisor, invariant per profile.
    active_slots: u64,
    active_slots_m: u128,
}

impl MixTable {
    fn new(p: &StreamProfile) -> Self {
        const SCALE: f64 = (1u64 << 53) as f64;
        let fix = |acc: f64| (acc * SCALE).ceil() as u64;
        let mut acc = p.loads_per_instr;
        let t_load = fix(acc);
        acc += p.stores_per_instr;
        let t_store = fix(acc);
        acc += p.cond_branch_per_instr;
        let t_cond = fix(acc);
        acc += p.ind_branch_per_instr;
        let t_ind = fix(acc);
        acc += p.larx_per_instr;
        let t_larx = fix(acc);
        acc += p.sync_per_instr;
        let t_sync = fix(acc);
        acc += p.call_per_instr * 2.0;
        let t_call = fix(acc);
        let active_slots = p.code_active.clamp(256, p.code.len) / 256;
        MixTable {
            t_load,
            t_store,
            t_cond,
            t_ind,
            t_larx,
            t_sync,
            t_call,
            t_jump: fix(p.code_jump_rate),
            t_bias: fix(p.cond_bias_strength),
            t_fresh: fix(p.store_fresh_fraction),
            stcx_fail_prob: p.stcx_fail_prob,
            cond_sites: p.cond_sites,
            ind_sites: p.ind_sites,
            ind_targets_max: p.ind_targets_max,
            code_base: p.code.base,
            code_len: p.code.len,
            code_len_m: fastmod_magic(p.code.len),
            active_slots,
            active_slots_m: fastmod_magic(active_slots),
        }
    }
}

/// Ops generated ahead into the block buffer per refill. Batching shortens
/// the per-op call chain (one buffer bounds-check instead of the full
/// generation path) without changing the op sequence: the generator owns
/// its RNG exclusively, so drawing a block ahead of consumption is
/// invisible to every consumer.
const BLOCK_OPS: usize = 64;

/// Per-region generator state.
#[derive(Clone, Debug)]
struct RegionState {
    seq_pos: u64,
    burst_left: u32,
    burst_frame: u64,
}

/// Loop-invariant per-region address math, precomputed at construction.
/// Every `%` or `/` on the per-reference path whose divisor is fixed by the
/// profile (hot-footprint size, skewed slot counts, sequential window
/// length) is replaced by a Lemire [`fastmod64`] with a precomputed magic —
/// exact for all inputs, so generated addresses are bit-identical to the
/// direct `%` forms. The salt-derived hot-window placement (`base_off`) is
/// likewise constant per region and folded into `base`.
#[derive(Clone, Copy, Debug)]
enum PatternPre {
    Hot {
        /// `window.base + base_off` — the salted hot-footprint start.
        base: u64,
        fp: u64,
        fp_m: u128,
    },
    Skewed {
        hot_slots: u64,
        hot_m: u128,
        cold_slots: u64,
    },
    Sequential {
        len_m: u128,
    },
    Uniform,
}

impl PatternPre {
    fn new(r: &DataRegion, salt: u64) -> Self {
        let w = r.window;
        match r.pattern {
            AccessPattern::Hot { footprint } => {
                let fp = footprint.min(w.len).max(64);
                let max_off = w.len - fp;
                let base_off = if max_off == 0 {
                    0
                } else {
                    ((salt.wrapping_mul(0x9E37_79B9) * fp) % max_off) & !63
                };
                PatternPre::Hot {
                    base: w.base + base_off,
                    fp,
                    fp_m: fastmod_magic(fp),
                }
            }
            AccessPattern::Skewed {
                hot_bytes, granule, ..
            } => {
                let granule = granule.max(8);
                let hot_slots = (hot_bytes.min(w.len).max(granule) / granule).max(1);
                PatternPre::Skewed {
                    hot_slots,
                    hot_m: fastmod_magic(hot_slots),
                    cold_slots: (w.len / granule).max(1),
                }
            }
            AccessPattern::Sequential { .. } => PatternPre::Sequential {
                len_m: fastmod_magic(w.len),
            },
            AccessPattern::Uniform { .. } => PatternPre::Uniform,
        }
    }
}

/// Generates a concrete `(ia, MicroOp)` stream from a [`StreamProfile`].
///
/// The `salt` passed at construction privatizes the per-thread hot data
/// (stacks, allocation buffers, hot objects) so streams running on
/// different cores do not falsely share written lines — the mechanism
/// behind the paper's near-zero modified cache-to-cache traffic.
#[derive(Clone, Debug)]
pub struct StreamGen {
    profile: StreamProfile,
    mix: MixTable,
    rng: Rng,
    salt: u64,
    ia: u64,
    code_zipf: Zipf,
    hot_zipf: Zipf,
    /// Positive-weight regions `(index, weight)` in profile order, and their
    /// total — the loop-invariant parts of `Rng::pick_weighted`, hoisted out
    /// of the per-reference path. The per-draw float operations (the
    /// `x < w` / `x -= w` ladder over the same weights in the same order)
    /// are unchanged, so region choices are bit-identical.
    region_pos: Vec<(usize, f64)>,
    region_total: f64,
    region_state: Vec<RegionState>,
    region_pre: Vec<PatternPre>,
    pending_stcx: Option<u64>,
    /// Bump pointer for allocation writes: `(region index, offset)`.
    fresh: Option<(usize, u64)>,
    /// Software call stack mirrored by the hardware link stack.
    ret_stack: Vec<u64>,
    /// Ops generated ahead of consumption (see [`BLOCK_OPS`]).
    block: Vec<(u64, MicroOp)>,
    blk_pos: usize,
}

impl StreamGen {
    /// Number of code locations the generator distinguishes (function-entry
    /// granularity of 256 bytes, capped to keep construction cheap).
    fn code_slots(profile: &StreamProfile) -> usize {
        ((profile.code.len / 256).max(1) as usize).min(64 * 1024)
    }

    /// Creates a generator with its own deterministic random stream and a
    /// `salt` privatizing its thread-local data (use the core id).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`StreamProfile::validate`].
    #[must_use]
    pub fn new(profile: StreamProfile, rng: Rng, salt: u64) -> Self {
        profile.validate();
        let slots = Self::code_slots(&profile);
        let code_zipf = Zipf::new(slots, profile.code_zipf);
        let hot_zipf = Zipf::new(HOT_RANKS, 1.0);
        let region_weights: Vec<f64> = profile.data.iter().map(|r| r.weight).collect();
        // Same filter and summation order as `Rng::pick_weighted`.
        let region_total: f64 = region_weights.iter().copied().filter(|w| *w > 0.0).sum();
        let region_pos: Vec<(usize, f64)> = region_weights
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, w)| w > 0.0)
            .collect();
        let region_state = profile
            .data
            .iter()
            .enumerate()
            .map(|(i, r)| RegionState {
                seq_pos: match r.pattern {
                    AccessPattern::Sequential { stride } => {
                        (salt.wrapping_mul(9973).wrapping_add(i as u64) * stride.max(1) * 64)
                            % r.window.len
                    }
                    _ => 0,
                },
                burst_left: 0,
                burst_frame: r.window.base,
            })
            .collect();
        let ia = profile.code.base;
        // Allocation writes walk the largest data window (the heap).
        let fresh = profile
            .data
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.window.len)
            .map(|(i, r)| (i, (salt.wrapping_mul(0x1_0001) * 4096) % r.window.len));
        let region_pre = profile
            .data
            .iter()
            .map(|r| PatternPre::new(r, salt))
            .collect();
        let mix = MixTable::new(&profile);
        StreamGen {
            profile,
            mix,
            rng,
            salt,
            ia,
            code_zipf,
            hot_zipf,
            region_pos,
            region_total,
            region_state,
            region_pre,
            pending_stcx: None,
            fresh,
            ret_stack: Vec::new(),
            block: Vec::with_capacity(BLOCK_OPS),
            blk_pos: 0,
        }
    }

    /// The profile this generator was built from.
    #[must_use]
    pub fn profile(&self) -> &StreamProfile {
        &self.profile
    }

    /// Produces the next instruction: its fetch address and its effect.
    ///
    /// Ops are generated a block at a time ([`BLOCK_OPS`]) into a reusable
    /// buffer; this call just pops the next one.
    #[inline]
    pub fn next_op(&mut self) -> (u64, MicroOp) {
        if self.blk_pos == self.block.len() {
            self.refill_block();
        }
        let op = self.block[self.blk_pos];
        self.blk_pos += 1;
        op
    }

    /// Feeds ops to `consume` until it returns `false`. The engine's slice
    /// loop uses this to drain whole buffered blocks without a per-op
    /// cross-crate call.
    #[inline]
    pub fn drive(&mut self, mut consume: impl FnMut(u64, MicroOp) -> bool) {
        loop {
            while self.blk_pos < self.block.len() {
                let (ia, op) = self.block[self.blk_pos];
                self.blk_pos += 1;
                if !consume(ia, op) {
                    return;
                }
            }
            self.refill_block();
        }
    }

    #[cold]
    fn refill_block(&mut self) {
        self.block.clear();
        for _ in 0..BLOCK_OPS {
            let op = self.gen_op();
            self.block.push(op);
        }
        self.blk_pos = 0;
    }

    /// Generates one instruction directly from the profile and RNG.
    fn gen_op(&mut self) -> (u64, MicroOp) {
        // Scalar parameters are copied out up front so the borrow checker
        // allows the stateful helper calls below.
        let MixTable {
            t_load,
            t_store,
            t_cond,
            t_ind,
            t_larx,
            t_sync,
            t_call,
            t_bias,
            t_fresh,
            stcx_fail_prob,
            cond_sites,
            ind_sites,
            ind_targets_max,
            code_base,
            code_len,
            code_len_m,
            active_slots,
            active_slots_m,
            ..
        } = self.mix;

        // A STCX always follows its LARX after a short window.
        if let Some(ea) = self.pending_stcx.take() {
            let fail = self.rng.chance(stcx_fail_prob);
            let ia = self.advance_ia();
            return (ia, MicroOp::Stcx { ea, fail });
        }

        let ia = self.advance_ia();
        // Fixed-point form of the f64 ladder `roll < Σ rates`; bit-exact —
        // see [`MixTable`]. `m` is the 53-bit numerator `next_f64()` would
        // have used.
        let m = self.rng.next_u64() >> 11;
        if m < t_load {
            let ea = self.data_address();
            return (ia, MicroOp::Load { ea });
        }
        if m < t_store {
            let fresh_frac = self.profile.store_fresh_fraction;
            if fresh_frac > 0.0 && (self.rng.next_u64() >> 11) < t_fresh {
                if let Some((region, offset)) = self.fresh {
                    let w = self.profile.data[region].window;
                    let ea = w.base + offset;
                    // Initialization writes advance ~16 B per store; the
                    // offset stays below `w.len`, so the wrap is a single
                    // conditional subtraction (exactly `% w.len`).
                    let next = offset + 16;
                    let next = if next >= w.len { next - w.len } else { next };
                    self.fresh = Some((region, next));
                    return (ia, MicroOp::Store { ea });
                }
            }
            let ea = self.data_address();
            return (ia, MicroOp::Store { ea });
        }
        if m < t_cond {
            let site_rank = self.rng.next_below(cond_sites as u64);
            // Sites are hashed so that different components' site spaces do
            // not systematically collide in the predictor's index bits.
            let site = mix64(code_base ^ (site_rank * 0x61 + 0x1_0000_0001));
            // The site's inherent bias direction is a deterministic hash of
            // the site so the predictor can learn it; ~72% of branch sites
            // are taken-biased, as in typical integer code.
            let bias_taken = (site >> 8) % 100 < 72;
            let follows = (self.rng.next_u64() >> 11) < t_bias;
            let taken = if follows { bias_taken } else { !bias_taken };
            return (ia, MicroOp::CondBranch { site, taken });
        }
        if m < t_ind {
            let site_rank = self.rng.next_below(ind_sites as u64);
            let site = mix64(code_base ^ (site_rank * 0x95 + 0x2_0000_0001));
            // Receiver-type polymorphism as observed in Java systems: most
            // call sites are effectively monomorphic; a minority dispatch
            // over several receiver classes with one dominant type. The
            // minority is what produces the paper's ~5% target-misprediction
            // rate.
            let degree = if site_rank % 100 < 85 {
                1
            } else {
                2 + site_rank % u64::from(ind_targets_max.max(2) - 1)
            };
            let t = if degree == 1 || self.rng.chance(0.88) {
                0
            } else {
                self.rng.next_below(degree)
            };
            let target = code_base + fastmod64(site_rank * 31 + t * 7919, code_len_m, code_len);
            return (ia, MicroOp::IndBranch { site, target });
        }
        if m < t_larx {
            let ea = self.data_address();
            self.pending_stcx = Some(ea);
            return (ia, MicroOp::Larx { ea });
        }
        if m < t_sync {
            return (ia, MicroOp::Sync);
        }
        if m < t_call {
            // Balanced call/return traffic over the generator's own call
            // stack; the hardware link stack predicts the returns.
            // Call depth oscillates around a shallow working depth, as in
            // real call graphs (leaf-heavy): deeper stacks favour returns.
            let depth = self.ret_stack.len();
            let call_prob = if depth < 8 { 0.65 } else { 0.35 };
            let make_call = depth < 48 && (depth == 0 || self.rng.chance(call_prob));
            if make_call {
                let ret = ia + 4;
                self.ret_stack.push(ret);
                // Most call sites are monomorphic helpers nearby (the
                // paper's JIT inlines aggressively, and what remains is
                // clustered); a minority are far calls into the active
                // method set.
                if self.rng.chance(0.65) {
                    let base = ia.saturating_sub(8 << 10).max(code_base);
                    let span = (16u64 << 10).min(code_base + code_len - base);
                    self.ia = base + (self.rng.next_below(span) & !3);
                } else {
                    let sample = self.code_zipf.sample(&mut self.rng) as u64;
                    let slot = fastmod64(sample, active_slots_m, active_slots);
                    self.ia = code_base + slot * 256;
                }
                return (ia, MicroOp::Call { ret });
            }
            let to = self.ret_stack.pop().unwrap_or(code_base);
            self.ia = to;
            return (ia, MicroOp::Return { to });
        }
        (ia, MicroOp::Alu)
    }

    fn advance_ia(&mut self) -> u64 {
        let p = &self.profile;
        // Fixed-point `chance(code_jump_rate)` — same single draw, same
        // decision (see [`MixTable`]); this runs once per generated op.
        if (self.rng.next_u64() >> 11) < self.mix.t_jump {
            if self.rng.chance(p.code_local) {
                // Near transfer: loop back or skip within the current page.
                let page = self.ia & !0xFFF;
                self.ia = (page + (self.rng.next_below(4096) & !3))
                    .min(p.code.base + p.code.len - 4)
                    .max(p.code.base);
            } else if self.rng.chance(0.95) {
                // Far call into the active method set.
                let sample = self.code_zipf.sample(&mut self.rng) as u64;
                let slot = fastmod64(sample, self.mix.active_slots_m, self.mix.active_slots);
                self.ia = p.code.base + slot * 256;
            } else {
                // Cold method anywhere in the full code footprint.
                let slot = self.code_zipf.sample(&mut self.rng) as u64;
                self.ia = p.code.base + fastmod64(slot * 256, self.mix.code_len_m, p.code.len);
            }
        } else {
            self.ia += 4;
            if self.ia >= p.code.base + p.code.len {
                self.ia = p.code.base;
            }
        }
        self.ia
    }

    /// Draws an address within the 4 KB frame of `frame_addr`, clamped to
    /// the window.
    fn within_frame(&mut self, w: Window, frame_addr: u64) -> u64 {
        let frame = frame_addr & !0xFFF;
        let lo = frame.max(w.base);
        let hi = (frame + 4096).min(w.base + w.len);
        lo + self.rng.next_below((hi - lo).max(1))
    }

    fn data_address(&mut self) -> u64 {
        // Inlined `Rng::pick_weighted(&self.region_weights)`: identical
        // draw, identical float ladder over the precomputed positive
        // weights (see `region_pos`), without re-summing per reference.
        assert!(
            self.region_total > 0.0,
            "validated profile has positive region weights"
        );
        let mut x = self.rng.next_f64() * self.region_total;
        let mut idx = self.region_pos[self.region_pos.len() - 1].0;
        for &(i, w) in &self.region_pos {
            if x < w {
                idx = i;
                break;
            }
            x -= w;
        }
        let region = self.profile.data[idx];
        let w = region.window;
        match region.pattern {
            AccessPattern::Hot { .. } => {
                // Thread-private hot footprint: the salt slides it within
                // the window so cores do not share written lines. Placement
                // and footprint are precomputed (see [`PatternPre`]).
                let PatternPre::Hot { base, fp, fp_m } = self.region_pre[idx] else {
                    unreachable!("region_pre built from the same patterns")
                };
                let slot = self.hot_zipf.sample(&mut self.rng) as u64;
                base + fastmod64(slot * 64, fp_m, fp)
            }
            AccessPattern::Skewed {
                granule,
                hot_fraction,
                burst,
                ..
            } => {
                let PatternPre::Skewed {
                    hot_slots,
                    hot_m,
                    cold_slots,
                } = self.region_pre[idx]
                else {
                    unreachable!("region_pre built from the same patterns")
                };
                let granule = granule.max(8);
                let st = &mut self.region_state[idx];
                if st.burst_left > 0 {
                    st.burst_left -= 1;
                    // Burst within the drawn object/row: field-walk
                    // locality at granule (not page) width.
                    let base = st.burst_frame & !(granule - 1);
                    let lo = base.max(w.base);
                    let hi = (base + granule).min(w.base + w.len);
                    return lo + self.rng.next_below((hi - lo).max(1));
                }
                let addr = if self.rng.chance(hot_fraction) {
                    // Hot subset, rotated by the salt so each core's hot
                    // objects are (mostly) its own.
                    let rank = self.hot_zipf.sample(&mut self.rng) as u64;
                    let rank = fastmod64(rank + self.salt.wrapping_mul(131), hot_m, hot_slots);
                    w.base + rank * granule + self.rng.next_below(granule)
                } else {
                    // Cold tail: shared, uniform over the whole window.
                    let slot = self.rng.next_below(cold_slots);
                    w.base + slot * granule + self.rng.next_below(granule)
                };
                let st = &mut self.region_state[idx];
                st.burst_left = burst.saturating_sub(1);
                st.burst_frame = addr;
                addr
            }
            AccessPattern::Sequential { stride } => {
                let PatternPre::Sequential { len_m } = self.region_pre[idx] else {
                    unreachable!("region_pre built from the same patterns")
                };
                let st = &mut self.region_state[idx];
                let addr = w.base + st.seq_pos;
                st.seq_pos = fastmod64(st.seq_pos + stride.max(1), len_m, w.len);
                addr
            }
            AccessPattern::Uniform { burst } => {
                let st = &mut self.region_state[idx];
                if st.burst_left > 0 {
                    st.burst_left -= 1;
                    let frame = st.burst_frame;
                    return self.within_frame(w, frame);
                }
                let addr = w.base + self.rng.next_below(w.len);
                let st = &mut self.region_state[idx];
                st.burst_left = burst.saturating_sub(1);
                st.burst_frame = addr;
                addr
            }
        }
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for Window {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.base.persist(io);
        self.len.persist(io);
    }
}

impl Persist for RegionState {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.seq_pos.persist(io);
        self.burst_left.persist(io);
        self.burst_frame.persist(io);
    }
}

impl Persist for StreamGen {
    /// The profile, mix table, Zipf tables, and region weights are all
    /// config-derived; the RNG cursor, per-region walkers, reservation and
    /// allocation scratch, software return stack, and the buffered op
    /// block are the mutable state.
    // jas-lint: allow(D009, reason = "profile, mix, zipf and region tables and the salt are derived from config plus core id at construction")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.rng.persist(io);
        self.ia.persist(io);
        snap::persist_slice(io, &mut self.region_state);
        snap::persist_opt(io, &mut self.pending_stcx);
        snap::persist_opt(io, &mut self.fresh);
        snap::persist_vec(io, &mut self.ret_stack);
        snap::persist_vec(io, &mut self.block);
        self.blk_pos.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Region;

    fn test_profile() -> StreamProfile {
        StreamProfile {
            code: Window::new(Region::JitCode.base(), 4 * 1024 * 1024),
            code_jump_rate: 0.05,
            code_local: 0.7,
            code_active: 1 << 20,
            code_zipf: 0.6,
            loads_per_instr: 0.31,
            stores_per_instr: 0.22,
            cond_branch_per_instr: 0.15,
            ind_branch_per_instr: 0.02,
            cond_bias_strength: 0.93,
            cond_sites: 4096,
            ind_sites: 512,
            ind_targets_max: 8,
            larx_per_instr: 1.0 / 600.0,
            stcx_fail_prob: 0.02,
            sync_per_instr: 0.002,
            call_per_instr: 0.02,
            store_fresh_fraction: 0.1,
            data: vec![
                DataRegion {
                    window: Window::new(Region::Stacks.base(), 1 << 20),
                    weight: 0.5,
                    pattern: AccessPattern::Hot {
                        footprint: 8 * 1024,
                    },
                },
                DataRegion {
                    window: Window::new(Region::JavaHeap.base(), 512 << 20),
                    weight: 0.5,
                    pattern: AccessPattern::Skewed {
                        hot_bytes: 4 << 20,
                        granule: 512,
                        hot_fraction: 0.8,
                        burst: 10,
                    },
                },
            ],
        }
    }

    #[test]
    fn mix_matches_configured_rates() {
        let mut g = StreamGen::new(test_profile(), Rng::new(1), 0);
        let n = 200_000;
        let mut loads = 0u32;
        let mut stores = 0u32;
        let mut conds = 0u32;
        for _ in 0..n {
            match g.next_op().1 {
                MicroOp::Load { .. } => loads += 1,
                MicroOp::Store { .. } => stores += 1,
                MicroOp::CondBranch { .. } => conds += 1,
                _ => {}
            }
        }
        let lf = f64::from(loads) / f64::from(n);
        let sf = f64::from(stores) / f64::from(n);
        let cf = f64::from(conds) / f64::from(n);
        assert!((lf - 0.31).abs() < 0.01, "load fraction {lf}");
        assert!((sf - 0.22).abs() < 0.01, "store fraction {sf}");
        assert!((cf - 0.15).abs() < 0.01, "cond fraction {cf}");
    }

    #[test]
    fn larx_is_always_followed_by_stcx() {
        let mut g = StreamGen::new(test_profile(), Rng::new(2), 0);
        let mut prev_was_larx = false;
        for _ in 0..100_000 {
            let (_, op) = g.next_op();
            if prev_was_larx {
                assert!(
                    matches!(op, MicroOp::Stcx { .. }),
                    "LARX not followed by STCX"
                );
            }
            prev_was_larx = matches!(op, MicroOp::Larx { .. });
        }
    }

    #[test]
    fn addresses_stay_in_their_windows() {
        let mut g = StreamGen::new(test_profile(), Rng::new(3), 0);
        for _ in 0..50_000 {
            let (ia, op) = g.next_op();
            let code = g.profile().code;
            assert!(
                (code.base..code.base + code.len).contains(&ia),
                "ia {ia:#x} outside code window"
            );
            if let MicroOp::Load { ea } | MicroOp::Store { ea } = op {
                let ok = g
                    .profile()
                    .data
                    .iter()
                    .any(|r| (r.window.base..r.window.base + r.window.len).contains(&ea));
                assert!(ok, "ea {ea:#x} outside all data windows");
            }
        }
    }

    /// The fixed-point thresholds classify every possible 53-bit roll
    /// exactly like the original per-op f64 ladder (`roll < Σ rates`).
    #[test]
    fn fixed_point_thresholds_match_f64_ladder() {
        let classify_fix = |mix: &MixTable, m: u64| -> usize {
            let t = [
                mix.t_load,
                mix.t_store,
                mix.t_cond,
                mix.t_ind,
                mix.t_larx,
                mix.t_sync,
                mix.t_call,
            ];
            t.iter().position(|&cut| m < cut).unwrap_or(7)
        };
        let classify_f64 = |p: &StreamProfile, roll: f64| -> usize {
            let mut acc = p.loads_per_instr;
            let rest = [
                p.stores_per_instr,
                p.cond_branch_per_instr,
                p.ind_branch_per_instr,
                p.larx_per_instr,
                p.sync_per_instr,
                p.call_per_instr * 2.0,
            ];
            if roll < acc {
                return 0;
            }
            for (i, r) in rest.iter().enumerate() {
                acc += r;
                if roll < acc {
                    return i + 1;
                }
            }
            7
        };
        let mut profiles = vec![test_profile()];
        // Degenerate mixes: all-ALU, saturated (Σ = 1.0).
        let mut p = test_profile();
        p.loads_per_instr = 0.0;
        p.stores_per_instr = 0.0;
        p.cond_branch_per_instr = 0.0;
        p.ind_branch_per_instr = 0.0;
        p.larx_per_instr = 0.0;
        p.sync_per_instr = 0.0;
        p.call_per_instr = 0.0;
        profiles.push(p.clone());
        p.loads_per_instr = 0.5;
        p.stores_per_instr = 0.5;
        profiles.push(p);
        for profile in &profiles {
            let mix = MixTable::new(profile);
            let mut rng = Rng::new(42);
            // Boundary rolls (the exact threshold values) plus random ones.
            let mut rolls = vec![
                0,
                mix.t_load.saturating_sub(1),
                mix.t_load,
                mix.t_store,
                mix.t_call.saturating_sub(1),
                mix.t_call,
                (1u64 << 53) - 1,
            ];
            for _ in 0..200_000 {
                rolls.push(rng.next_u64() >> 11);
            }
            for m in rolls {
                let m = m.min((1u64 << 53) - 1);
                let roll = m as f64 * (1.0 / (1u64 << 53) as f64);
                assert_eq!(
                    classify_fix(&mix, m),
                    classify_f64(profile, roll),
                    "m={m} diverges"
                );
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StreamGen::new(test_profile(), Rng::new(7), 0);
        let mut b = StreamGen::new(test_profile(), Rng::new(7), 0);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn sequential_pattern_walks_forward() {
        let mut p = test_profile();
        // Isolate the sequential pattern: no allocation-write bump pointer
        // and no call/return control flow.
        p.store_fresh_fraction = 0.0;
        p.call_per_instr = 0.0;
        p.data = vec![DataRegion {
            window: Window::new(Region::JavaHeap.base(), 1 << 20),
            weight: 1.0,
            pattern: AccessPattern::Sequential { stride: 128 },
        }];
        let mut g = StreamGen::new(p, Rng::new(4), 0);
        let mut last: Option<u64> = None;
        let mut forward = 0;
        let mut total = 0;
        for _ in 0..10_000 {
            if let (_, MicroOp::Load { ea } | MicroOp::Store { ea }) = g.next_op() {
                if let Some(prev) = last {
                    total += 1;
                    if ea > prev {
                        forward += 1;
                    }
                }
                last = Some(ea);
            }
        }
        assert!(total > 100);
        assert!(forward * 100 / total > 95, "sequential walk mostly ascends");
    }

    #[test]
    #[should_panic(expected = "instruction mix exceeds 1.0")]
    fn overfull_mix_rejected() {
        let mut p = test_profile();
        p.loads_per_instr = 0.9;
        p.stores_per_instr = 0.9;
        let _ = StreamGen::new(p, Rng::new(1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one data region")]
    fn memory_ops_without_regions_rejected() {
        let mut p = test_profile();
        p.data.clear();
        let _ = StreamGen::new(p, Rng::new(1), 0);
    }

    #[test]
    fn hot_pattern_reuses_small_footprint() {
        let mut p = test_profile();
        p.data = vec![DataRegion {
            window: Window::new(Region::Stacks.base(), 1 << 20),
            weight: 1.0,
            pattern: AccessPattern::Hot { footprint: 4096 },
        }];
        let mut g = StreamGen::new(p, Rng::new(5), 0);
        for _ in 0..10_000 {
            if let (_, MicroOp::Load { ea } | MicroOp::Store { ea }) = g.next_op() {
                assert!(
                    ea < Region::Stacks.base() + 4096,
                    "hot access escaped footprint"
                );
            }
        }
    }
}
