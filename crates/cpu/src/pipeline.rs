//! The pipeline cost model: how microarchitectural events turn into cycles
//! and speculative dispatch.
//!
//! The model is deliberately an *accounting* model, not a cycle-accurate
//! pipeline: each event class charges a calibrated stall contribution, with
//! an overlap factor reflecting POWER4's ~100 instructions in flight. Two
//! behaviours called out by the paper are modeled explicitly:
//!
//! * **Miss bursts.** A single L1 D-miss satisfied from L2 is mostly hidden;
//!   a *burst* of misses stalls the pipeline (Section 4.3's explanation of
//!   why prefetch-stream allocations correlate with CPI). Misses arriving
//!   within [`CostModel::burst_window_ops`] of the previous miss are charged
//!   the burst overlap factor instead of the isolated one.
//! * **Dispatch-vs-complete speculation.** POWER4 dispatches ~2.3
//!   instructions for every one it retires (Figure 5): wrong-path work after
//!   mispredictions, ERAT-miss retries every 7 cycles, and group reissues
//!   after dispatch rejects. All three sources are charged separately.

use crate::counters::{CounterFile, HpmEvent};

/// Calibrated cost constants for the pipeline accounting model.
///
/// Latencies are in cycles and approximate POWER4 at 1.3 GHz. The stall
/// actually charged for a memory event is `latency x overlap`, where the
/// overlap factor depends on burstiness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cycles per instruction with no stall events (dispatch-limited).
    pub base_cpi: f64,
    /// Load-to-use latency of the local L2.
    pub l2_latency: f64,
    /// Latency of an off-chip same-MCM L2 hit (L2.5).
    pub l25_latency: f64,
    /// Latency of a cross-MCM L2 hit (L2.75).
    pub l275_latency: f64,
    /// Latency of the local MCM's L3.
    pub l3_latency: f64,
    /// Latency of a remote MCM's L3 (L3.5).
    pub l35_latency: f64,
    /// Memory latency.
    pub mem_latency: f64,
    /// Fraction of latency charged for an isolated load miss.
    pub overlap_isolated: f64,
    /// Fraction of latency charged for a miss within a burst.
    pub overlap_burst: f64,
    /// Misses closer together than this many ops form a burst.
    pub burst_window_ops: u64,
    /// Fraction of latency charged for instruction-side misses (front-end
    /// bubbles overlap less than data misses).
    pub inst_overlap: f64,
    /// Cycles for an ERAT miss satisfied by the TLB (paper: >= 14).
    pub erat_miss_cycles: f64,
    /// Cycles for a hardware TLB walk after ERAT+TLB miss.
    pub tlb_walk_cycles: f64,
    /// Pipeline-flush penalty of a branch misprediction.
    pub mispredict_cycles: f64,
    /// Wrong-path instructions dispatched per misprediction.
    pub wrong_path_dispatch: f64,
    /// A rejected instruction is retried every this many cycles (POWER4
    /// reissues a load every 7 cycles on a DERAT miss).
    pub reject_retry_cycles: f64,
    /// Instructions re-dispatched when a group is reissued.
    pub group_reissue_dispatch: f64,
    /// Probability that an L1 D-miss triggers a group reissue.
    pub reissue_on_miss_prob: f64,
    /// Extra dispatches per completed instruction from fetch-ahead past
    /// taken branches and other always-present speculation.
    pub baseline_overdispatch: f64,
    /// Cycles a SYNC occupies the store-reorder queue (drain time).
    pub sync_srq_cycles: f64,
    /// Stall charged for an L1 store miss (write-through, mostly hidden).
    pub store_miss_cycles: f64,
    /// Extra cost of a STCX (reservation check at the coherence point).
    pub stcx_cycles: f64,
    /// Completing group width (instructions retiring per completion cycle).
    pub completion_group_width: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_cpi: 0.75,
            l2_latency: 12.0,
            l25_latency: 80.0,
            l275_latency: 120.0,
            l3_latency: 100.0,
            l35_latency: 180.0,
            mem_latency: 320.0,
            overlap_isolated: 0.18,
            overlap_burst: 0.55,
            burst_window_ops: 12,
            inst_overlap: 0.35,
            erat_miss_cycles: 14.0,
            tlb_walk_cycles: 80.0,
            mispredict_cycles: 13.0,
            wrong_path_dispatch: 14.0,
            reject_retry_cycles: 7.0,
            group_reissue_dispatch: 5.0,
            reissue_on_miss_prob: 0.35,
            baseline_overdispatch: 0.75,
            sync_srq_cycles: 30.0,
            store_miss_cycles: 1.5,
            stcx_cycles: 6.0,
            completion_group_width: 5.0,
        }
    }
}

/// Accumulates fractional cycle-like quantities and flushes whole units into
/// a [`CounterFile`], carrying the remainder.
///
/// HPM counters are integers; the cost model produces fractional charges.
/// `FracCounter` keeps the long-run sums exact to within one count.
#[derive(Clone, Copy, Debug, Default)]
pub struct FracCounter {
    carry: f64,
}

impl FracCounter {
    /// Adds `amount` (may be fractional) of `event` into `counters`.
    ///
    /// The two compare-guarded early arms are exact shortcuts for the
    /// general `floor()` arm below them: with `carry >= 0`,
    /// `carry < 1.0` means `floor(carry) == 0` (nothing to flush) and
    /// `carry < 2.0` means `floor(carry) == 1.0`, so `carry -= 1.0`
    /// performs the identical f64 subtraction. They exist because this
    /// runs three times per simulated instruction and the typical
    /// per-instruction amounts are below 2, making `floor` + f64→u64
    /// conversion the hot loop's most expensive arithmetic.
    pub fn add(&mut self, counters: &mut CounterFile, event: HpmEvent, amount: f64) {
        debug_assert!(amount >= 0.0, "negative counter amount");
        self.carry += amount;
        if self.carry < 1.0 {
            return;
        }
        if self.carry < 2.0 {
            counters.add(event, 1);
            self.carry -= 1.0;
            return;
        }
        let whole = self.carry.floor();
        counters.add(event, whole as u64);
        self.carry -= whole;
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for FracCounter {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.carry.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_sane() {
        let c = CostModel::default();
        assert!(c.base_cpi > 0.0 && c.base_cpi < 1.5);
        assert!(c.l2_latency < c.l3_latency);
        assert!(c.l3_latency < c.mem_latency);
        assert!(c.overlap_isolated < c.overlap_burst);
        assert!(c.overlap_burst <= 1.0);
        assert!(
            c.erat_miss_cycles >= 14.0,
            "paper: translation takes at least 14 cycles"
        );
    }

    #[test]
    fn frac_counter_accumulates_exactly() {
        let mut fc = FracCounter::default();
        let mut counters = CounterFile::new();
        for _ in 0..10 {
            fc.add(&mut counters, HpmEvent::Cycles, 0.3);
        }
        // 10 x 0.3 = 3.0 cycles, within one count.
        let got = counters.get(HpmEvent::Cycles);
        assert!((2..=3).contains(&got), "got {got}");
        fc.add(&mut counters, HpmEvent::Cycles, 0.0);
        assert!(counters.get(HpmEvent::Cycles) <= 3);
    }

    #[test]
    fn frac_counter_handles_large_amounts() {
        let mut fc = FracCounter::default();
        let mut counters = CounterFile::new();
        fc.add(&mut counters, HpmEvent::Cycles, 320.5);
        assert_eq!(counters.get(HpmEvent::Cycles), 320);
        fc.add(&mut counters, HpmEvent::Cycles, 0.5);
        assert_eq!(counters.get(HpmEvent::Cycles), 321);
    }
}
