//! The hardware-performance-monitor (HPM) event set and counter file.
//!
//! POWER4's HPM exposes hundreds of events through eight physical counters.
//! We model the subset the paper uses: completion/dispatch, L1 and memory
//! hierarchy sources for data and instructions, address translation
//! (ERAT/TLB), branch prediction, prefetching, and synchronization. Every
//! simulated core owns a [`CounterFile`]; the measurement tools read either
//! a single core or the machine-wide sum.

use core::fmt;

/// A hardware event trackable by the simulated performance monitor.
///
/// Names follow the POWER4 `PM_*` vocabulary loosely; [`HpmEvent::name`]
/// returns the tool-facing mnemonic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum HpmEvent {
    /// Processor cycles.
    Cycles,
    /// Instructions completed (retired).
    InstCompleted,
    /// Instructions dispatched (includes wrong-path and reissued work).
    InstDispatched,
    /// Cycles in which at least one instruction completed.
    CyclesWithCompletion,
    /// Loads that accessed the L1 D-cache.
    LoadRefs,
    /// Stores that accessed the L1 D-cache.
    StoreRefs,
    /// Loads that missed the L1 D-cache.
    LoadMissL1,
    /// Stores that missed the L1 D-cache (write-through, no L1 allocate).
    StoreMissL1,
    /// L1 D-cache load misses satisfied from the local (on-chip) L2.
    DataFromL2,
    /// ... from an off-chip L2 on the same MCM, line in Shared state.
    DataFromL25Shr,
    /// ... from an off-chip L2 on the same MCM, line in Modified state.
    DataFromL25Mod,
    /// ... from an L2 on a different MCM, line in Shared state.
    DataFromL275Shr,
    /// ... from an L2 on a different MCM, line in Modified state.
    DataFromL275Mod,
    /// ... from the local MCM's L3.
    DataFromL3,
    /// ... from a different MCM's L3.
    DataFromL35,
    /// ... from memory.
    DataFromMem,
    /// Instruction fetches satisfied by the L1 I-cache.
    InstFromL1,
    /// Instruction fetches satisfied from L2.
    InstFromL2,
    /// Instruction fetches satisfied from L3 (any MCM).
    InstFromL3,
    /// Instruction fetches satisfied from memory.
    InstFromMem,
    /// Data ERAT (effective-to-real translation) misses.
    DeratMiss,
    /// Instruction ERAT misses.
    IeratMiss,
    /// Data TLB misses (ERAT miss that also missed the unified TLB).
    DtlbMiss,
    /// Instruction TLB misses.
    ItlbMiss,
    /// Conditional branches executed.
    Branches,
    /// Indirect (register-target) branches executed.
    IndirectBranches,
    /// Conditional branches whose direction was mispredicted.
    BrMpredCond,
    /// Indirect branches whose target was mispredicted (BTB miss).
    BrMpredTarget,
    /// LARX (load-and-reserve) instructions.
    Larx,
    /// STCX (store-conditional) instructions.
    Stcx,
    /// STCX instructions that failed (lost reservation).
    StcxFail,
    /// SYNC/LWSYNC/ISYNC instructions executed.
    SyncCount,
    /// Cycles during which a SYNC request occupied the store-reorder queue.
    SyncSrqCycles,
    /// Lines prefetched into the L1 D-cache by the sequential prefetcher.
    L1Prefetch,
    /// Lines prefetched into the L2 by the sequential prefetcher.
    L2Prefetch,
    /// New prefetch streams allocated.
    StreamAllocs,
    /// Instruction groups reissued after a dispatch reject (ERAT retry etc.).
    GroupReissues,
    /// Subroutine returns executed.
    Returns,
    /// Returns whose target the link stack mispredicted.
    RetMpred,
}

/// Number of distinct [`HpmEvent`]s.
pub const EVENT_COUNT: usize = 39;

impl HpmEvent {
    /// All events, in discriminant order.
    pub const ALL: [HpmEvent; EVENT_COUNT] = [
        HpmEvent::Cycles,
        HpmEvent::InstCompleted,
        HpmEvent::InstDispatched,
        HpmEvent::CyclesWithCompletion,
        HpmEvent::LoadRefs,
        HpmEvent::StoreRefs,
        HpmEvent::LoadMissL1,
        HpmEvent::StoreMissL1,
        HpmEvent::DataFromL2,
        HpmEvent::DataFromL25Shr,
        HpmEvent::DataFromL25Mod,
        HpmEvent::DataFromL275Shr,
        HpmEvent::DataFromL275Mod,
        HpmEvent::DataFromL3,
        HpmEvent::DataFromL35,
        HpmEvent::DataFromMem,
        HpmEvent::InstFromL1,
        HpmEvent::InstFromL2,
        HpmEvent::InstFromL3,
        HpmEvent::InstFromMem,
        HpmEvent::DeratMiss,
        HpmEvent::IeratMiss,
        HpmEvent::DtlbMiss,
        HpmEvent::ItlbMiss,
        HpmEvent::Branches,
        HpmEvent::IndirectBranches,
        HpmEvent::BrMpredCond,
        HpmEvent::BrMpredTarget,
        HpmEvent::Larx,
        HpmEvent::Stcx,
        HpmEvent::StcxFail,
        HpmEvent::SyncCount,
        HpmEvent::SyncSrqCycles,
        HpmEvent::L1Prefetch,
        HpmEvent::L2Prefetch,
        HpmEvent::StreamAllocs,
        HpmEvent::GroupReissues,
        HpmEvent::Returns,
        HpmEvent::RetMpred,
    ];

    /// Tool-facing mnemonic in the POWER4 `PM_*` style.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HpmEvent::Cycles => "PM_CYC",
            HpmEvent::InstCompleted => "PM_INST_CMPL",
            HpmEvent::InstDispatched => "PM_INST_DISP",
            HpmEvent::CyclesWithCompletion => "PM_CYC_GRP_CMPL",
            HpmEvent::LoadRefs => "PM_LD_REF_L1",
            HpmEvent::StoreRefs => "PM_ST_REF_L1",
            HpmEvent::LoadMissL1 => "PM_LD_MISS_L1",
            HpmEvent::StoreMissL1 => "PM_ST_MISS_L1",
            HpmEvent::DataFromL2 => "PM_DATA_FROM_L2",
            HpmEvent::DataFromL25Shr => "PM_DATA_FROM_L25_SHR",
            HpmEvent::DataFromL25Mod => "PM_DATA_FROM_L25_MOD",
            HpmEvent::DataFromL275Shr => "PM_DATA_FROM_L275_SHR",
            HpmEvent::DataFromL275Mod => "PM_DATA_FROM_L275_MOD",
            HpmEvent::DataFromL3 => "PM_DATA_FROM_L3",
            HpmEvent::DataFromL35 => "PM_DATA_FROM_L35",
            HpmEvent::DataFromMem => "PM_DATA_FROM_MEM",
            HpmEvent::InstFromL1 => "PM_INST_FROM_L1",
            HpmEvent::InstFromL2 => "PM_INST_FROM_L2",
            HpmEvent::InstFromL3 => "PM_INST_FROM_L3",
            HpmEvent::InstFromMem => "PM_INST_FROM_MEM",
            HpmEvent::DeratMiss => "PM_DERAT_MISS",
            HpmEvent::IeratMiss => "PM_IERAT_MISS",
            HpmEvent::DtlbMiss => "PM_DTLB_MISS",
            HpmEvent::ItlbMiss => "PM_ITLB_MISS",
            HpmEvent::Branches => "PM_BR_CMPL",
            HpmEvent::IndirectBranches => "PM_BR_IND",
            HpmEvent::BrMpredCond => "PM_BR_MPRED_CR",
            HpmEvent::BrMpredTarget => "PM_BR_MPRED_TA",
            HpmEvent::Larx => "PM_LARX",
            HpmEvent::Stcx => "PM_STCX",
            HpmEvent::StcxFail => "PM_STCX_FAIL",
            HpmEvent::SyncCount => "PM_SYNC",
            HpmEvent::SyncSrqCycles => "PM_SYNC_SRQ_CYC",
            HpmEvent::L1Prefetch => "PM_L1_PREF",
            HpmEvent::L2Prefetch => "PM_L2_PREF",
            HpmEvent::StreamAllocs => "PM_PREF_STREAM_ALLOC",
            HpmEvent::GroupReissues => "PM_GRP_DISP_REJECT",
            HpmEvent::Returns => "PM_RET",
            HpmEvent::RetMpred => "PM_RET_MPRED",
        }
    }

    /// Index of the event within a [`CounterFile`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for HpmEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A full set of cumulative event counters for one core (or a machine-wide
/// aggregate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterFile {
    counts: [u64; EVENT_COUNT],
}

impl Default for CounterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterFile {
    /// Creates a zeroed counter file.
    #[must_use]
    pub fn new() -> Self {
        CounterFile {
            counts: [0; EVENT_COUNT],
        }
    }

    /// Adds `n` occurrences of `event`.
    #[inline]
    pub fn add(&mut self, event: HpmEvent, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Increments `event` by one.
    #[inline]
    pub fn bump(&mut self, event: HpmEvent) {
        self.counts[event.index()] += 1;
    }

    /// Cumulative count of `event`.
    #[inline]
    #[must_use]
    pub fn get(&self, event: HpmEvent) -> u64 {
        self.counts[event.index()]
    }

    /// Adds every counter of `other` into `self` (machine-wide aggregation).
    pub fn merge(&mut self, other: &CounterFile) {
        for i in 0..EVENT_COUNT {
            self.counts[i] += other.counts[i];
        }
    }

    /// Per-event difference `self - earlier` (for interval sampling).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds `self`'s —
    /// counters are cumulative and must not run backwards.
    #[must_use]
    pub fn delta_since(&self, earlier: &CounterFile) -> CounterFile {
        let mut out = CounterFile::new();
        for i in 0..EVENT_COUNT {
            debug_assert!(self.counts[i] >= earlier.counts[i], "counter ran backwards");
            out.counts[i] = self.counts[i] - earlier.counts[i];
        }
        out
    }

    /// Cycles per completed instruction over this counter file; `None` when
    /// no instructions completed.
    #[must_use]
    pub fn cpi(&self) -> Option<f64> {
        let inst = self.get(HpmEvent::InstCompleted);
        if inst == 0 {
            None
        } else {
            Some(self.get(HpmEvent::Cycles) as f64 / inst as f64)
        }
    }

    /// `event` count per completed instruction; `None` when no instructions
    /// completed.
    #[must_use]
    pub fn per_instruction(&self, event: HpmEvent) -> Option<f64> {
        let inst = self.get(HpmEvent::InstCompleted);
        if inst == 0 {
            None
        } else {
            Some(self.get(event) as f64 / inst as f64)
        }
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for CounterFile {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.counts.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_unique_sequential_indices() {
        for (i, e) in HpmEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "event {e} out of order");
        }
    }

    #[test]
    fn names_are_unique_and_pm_prefixed() {
        let mut names: Vec<&str> = HpmEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate event names");
        for n in names {
            assert!(n.starts_with("PM_"), "{n}");
        }
    }

    #[test]
    fn add_get_merge() {
        let mut a = CounterFile::new();
        a.add(HpmEvent::Cycles, 100);
        a.bump(HpmEvent::Cycles);
        let mut b = CounterFile::new();
        b.add(HpmEvent::Cycles, 9);
        b.add(HpmEvent::InstCompleted, 50);
        a.merge(&b);
        assert_eq!(a.get(HpmEvent::Cycles), 110);
        assert_eq!(a.get(HpmEvent::InstCompleted), 50);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut early = CounterFile::new();
        early.add(HpmEvent::LoadRefs, 10);
        let mut late = early.clone();
        late.add(HpmEvent::LoadRefs, 5);
        late.add(HpmEvent::StoreRefs, 3);
        let d = late.delta_since(&early);
        assert_eq!(d.get(HpmEvent::LoadRefs), 5);
        assert_eq!(d.get(HpmEvent::StoreRefs), 3);
    }

    #[test]
    fn cpi_and_per_instruction() {
        let mut c = CounterFile::new();
        assert_eq!(c.cpi(), None);
        c.add(HpmEvent::Cycles, 300);
        c.add(HpmEvent::InstCompleted, 100);
        c.add(HpmEvent::LoadMissL1, 10);
        assert_eq!(c.cpi(), Some(3.0));
        assert_eq!(c.per_instruction(HpmEvent::LoadMissL1), Some(0.1));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(HpmEvent::DeratMiss.to_string(), "PM_DERAT_MISS");
    }
}
