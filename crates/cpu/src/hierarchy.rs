//! The shared memory hierarchy: per-chip L2s, per-MCM L3s, memory, and the
//! MCM topology that classifies where a load was satisfied from.
//!
//! On the paper's POWER4 system two cores share an on-chip L2 (the coherence
//! point); chips sit on multi-chip modules (MCMs), each with an attached L3.
//! The HPM classifies an L1 load miss by its supplier:
//!
//! * `L2` — the local chip's L2;
//! * `L2.5` — an L2 on another chip of the *same* MCM;
//! * `L2.75` — an L2 on a *different* MCM;
//! * `L3` / `L3.5` — the local / a remote MCM's L3;
//! * `Memory`.
//!
//! Remote-L2 hits are further split by the MESI state of the line
//! (*shared* vs *modified* intervention) — the paper's evidence that
//! `jas2004` has almost no cross-thread modified sharing lives in exactly
//! this classification.

use crate::cache::{CacheConfig, Mesi, SetAssocCache};

/// Shape of the multi-chip system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of multi-chip modules.
    pub mcms: usize,
    /// Chips per MCM (each chip has one shared L2).
    pub chips_per_mcm: usize,
    /// Cores per chip (POWER4: 2 "sibling" cores share the L2).
    pub cores_per_chip: usize,
}

impl Default for Topology {
    /// The paper's system: 2 MCMs, each with one live 2-core chip — hence 4
    /// cores, one L2 per MCM (so no L2.5 traffic is possible, matching the
    /// paper's footnote 3) and one L3 per MCM.
    fn default() -> Self {
        Topology {
            mcms: 2,
            chips_per_mcm: 1,
            cores_per_chip: 2,
        }
    }
}

impl Topology {
    /// Total core count.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.mcms * self.chips_per_mcm * self.cores_per_chip
    }

    /// Total chip count.
    #[must_use]
    pub fn chips(&self) -> usize {
        self.mcms * self.chips_per_mcm
    }

    /// Chip hosting `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn chip_of_core(&self, core: usize) -> usize {
        assert!(core < self.cores(), "core {core} out of range");
        core / self.cores_per_chip
    }

    /// MCM hosting `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    #[must_use]
    pub fn mcm_of_chip(&self, chip: usize) -> usize {
        assert!(chip < self.chips(), "chip {chip} out of range");
        chip / self.chips_per_mcm
    }
}

/// Where an L1 D-cache load miss was satisfied from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Local chip's L2.
    L2,
    /// Off-chip L2, same MCM, line was Shared/Exclusive.
    L25Shared,
    /// Off-chip L2, same MCM, line was Modified (cache-to-cache dirty transfer).
    L25Modified,
    /// L2 on a different MCM, line was Shared/Exclusive.
    L275Shared,
    /// L2 on a different MCM, line was Modified.
    L275Modified,
    /// Local MCM's L3.
    L3,
    /// A different MCM's L3.
    L35,
    /// Main memory.
    Memory,
}

/// Where an instruction fetch (after an L1 I-cache miss) was satisfied from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstSource {
    /// Any L2 (local or remote — the paper's instruction-side counters do
    /// not distinguish).
    L2,
    /// Any L3.
    L3,
    /// Main memory.
    Memory,
}

/// One shared-hierarchy access recorded by a core during the parallel
/// (core-private) execution phase.
///
/// Cores append these to a per-core ordered buffer instead of touching the
/// shared [`MemorySystem`] directly; a reconciliation pass drains the
/// buffers in fixed core order and replays each event against the shared
/// state (see `jas_cpu::reconcile_core`). Buffer order is program order
/// within a core, so the replay is deterministic regardless of how many
/// host threads executed the recording phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MemEvent {
    /// L1 I-cache miss: instruction fetch at `addr` needs a supplier.
    InstMiss {
        /// Instruction address that missed.
        addr: u64,
    },
    /// L1 D-cache demand load miss, with the pipeline overlap factor the
    /// core computed from its burst window when the miss was recorded.
    LoadMiss {
        /// Effective address that missed.
        addr: u64,
        /// Fraction of the miss latency exposed to the pipeline.
        overlap: f64,
    },
    /// Write-through store (always reaches the L2, hit or miss).
    Store {
        /// Effective address stored to.
        addr: u64,
    },
    /// Hardware prefetch staged into the L2.
    Prefetch {
        /// Address of the prefetched line.
        addr: u64,
    },
}

/// The shared levels of the memory hierarchy.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    topo: Topology,
    l2s: Vec<SetAssocCache>,
    l3s: Vec<SetAssocCache>,
    /// Exact replay note for back-to-back stores to one line from one chip
    /// (the allocation-write pattern: eight 16-byte stores per 128-byte
    /// line arrive adjacent in the reconcile event stream, because L1 load
    /// hits emit no events). After a store completes, the line is Modified
    /// in `chip`'s L2 at `slot` and resident in **no** other L2 — the store
    /// just invalidated every remote copy. A repeated store from the same
    /// chip to the same line therefore replays as a single
    /// [`SetAssocCache::rehit`]: the remote invalidates would find nothing
    /// (pure no-ops), the local access would hit that same slot, and the
    /// line is already Modified, so `set_state` would be idempotent. Every
    /// other mutation through the hierarchy clears the note.
    last_store: Option<(usize, u64, usize)>,
}

impl MemorySystem {
    /// Builds L2s (one per chip) and L3s (one per MCM).
    #[must_use]
    pub fn new(topo: Topology, l2_cfg: CacheConfig, l3_cfg: CacheConfig) -> Self {
        MemorySystem {
            topo,
            l2s: (0..topo.chips())
                .map(|_| SetAssocCache::new(l2_cfg))
                .collect(),
            l3s: (0..topo.mcms).map(|_| SetAssocCache::new(l3_cfg)).collect(),
            last_store: None,
        }
    }

    /// The topology this hierarchy was built for.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn l2_line(&self, addr: u64) -> u64 {
        self.l2s[0].line_of(addr)
    }

    fn l3_line(&self, addr: u64) -> u64 {
        self.l3s[0].line_of(addr)
    }

    /// Handles an L1 D-cache **load** miss from `chip` for `addr`, returning
    /// the satisfying source and updating all coherence state.
    pub fn load_miss(&mut self, chip: usize, addr: u64) -> DataSource {
        self.last_store = None;
        let line = self.l2_line(addr);
        let my_mcm = self.topo.mcm_of_chip(chip);

        // 1. Local L2.
        if self.l2s[chip].access(line).is_some() {
            return DataSource::L2;
        }

        // 2. Snoop remote L2s.
        let mut remote_hit: Option<(usize, Mesi)> = None;
        for (c, l2) in self.l2s.iter().enumerate() {
            if c == chip {
                continue;
            }
            if let Some(state) = l2.probe(line) {
                remote_hit = Some((c, state));
                break;
            }
        }
        if let Some((rc, state)) = remote_hit {
            // Dirty or clean intervention: the remote copy is demoted to
            // Shared and the local L2 receives a Shared copy.
            self.l2s[rc].set_state(line, Mesi::Shared);
            self.fill_l2(chip, line, Mesi::Shared);
            let same_mcm = self.topo.mcm_of_chip(rc) == my_mcm;
            let modified = state == Mesi::Modified;
            return match (same_mcm, modified) {
                (true, false) => DataSource::L25Shared,
                (true, true) => DataSource::L25Modified,
                (false, false) => DataSource::L275Shared,
                (false, true) => DataSource::L275Modified,
            };
        }

        // 3. Local MCM's L3, then remote L3s.
        let l3line = self.l3_line(addr);
        if self.l3s[my_mcm].access(l3line).is_some() {
            self.fill_l2(chip, line, Mesi::Exclusive);
            return DataSource::L3;
        }
        for (m, l3) in self.l3s.iter().enumerate() {
            if m != my_mcm && l3.probe(l3line).is_some() {
                self.fill_l2(chip, line, Mesi::Exclusive);
                return DataSource::L35;
            }
        }

        // 4. Memory: fill the local L2 and the local MCM's L3.
        self.fill_l2(chip, line, Mesi::Exclusive);
        self.l3s[my_mcm].insert(l3line, Mesi::Shared);
        DataSource::Memory
    }

    /// Handles a **store** from `chip` to `addr` (write-through from L1).
    ///
    /// Gains exclusive ownership: any remote L2 copy is invalidated and the
    /// local L2 line becomes Modified (allocated on miss, per POWER4's
    /// store-through-to-L2 policy). Returns `true` when the local L2 already
    /// held the line (an L2 store hit).
    pub fn store(&mut self, chip: usize, addr: u64) -> bool {
        let line = self.l2_line(addr);
        if let Some((c, l, slot)) = self.last_store {
            if c == chip && l == line {
                // Replay fast path — see the `last_store` field docs for
                // the exactness argument. The previous event was a store of
                // this very (chip, line), so all three steps of the full
                // path below collapse into one slot re-touch.
                self.l2s[chip].rehit(slot);
                return true;
            }
        }
        for (c, l2) in self.l2s.iter_mut().enumerate() {
            if c != chip {
                l2.invalidate(line);
            }
        }
        let (hit, slot) = match self.l2s[chip].access_at(line) {
            Some((slot, _)) => {
                self.l2s[chip].set_state_at(slot, Mesi::Modified);
                (true, slot)
            }
            None => (false, self.fill_l2(chip, line, Mesi::Modified)),
        };
        self.last_store = Some((chip, line, slot));
        hit
    }

    /// Handles an instruction fetch from `chip` at `addr` after an L1
    /// I-cache miss. Instructions are read-only; remote L2/L3 hits are
    /// folded into [`InstSource::L2`]/[`InstSource::L3`] as on the real HPM.
    pub fn fetch_inst(&mut self, chip: usize, addr: u64) -> InstSource {
        self.last_store = None;
        let line = self.l2_line(addr);
        if self.l2s[chip].access(line).is_some() {
            return InstSource::L2;
        }
        for (c, l2) in self.l2s.iter().enumerate() {
            if c != chip && l2.probe(line).is_some() {
                self.fill_l2(chip, line, Mesi::Shared);
                return InstSource::L2;
            }
        }
        let l3line = self.l3_line(addr);
        let my_mcm = self.topo.mcm_of_chip(chip);
        for (m, l3) in self.l3s.iter_mut().enumerate() {
            let present = if m == my_mcm {
                l3.access(l3line).is_some()
            } else {
                l3.probe(l3line).is_some()
            };
            if present {
                self.fill_l2(chip, line, Mesi::Shared);
                return InstSource::L3;
            }
        }
        self.fill_l2(chip, line, Mesi::Shared);
        self.l3s[my_mcm].insert(l3line, Mesi::Shared);
        InstSource::Memory
    }

    /// Stages a prefetched line into `chip`'s L2 (no source classification —
    /// prefetches are not demand misses).
    pub fn prefetch_into_l2(&mut self, chip: usize, addr: u64) {
        self.last_store = None;
        let line = self.l2_line(addr);
        if self.l2s[chip].probe(line).is_none() {
            self.fill_l2(chip, line, Mesi::Shared);
        }
    }

    /// Drops the store-replay note, forcing the next store through the
    /// full path. Test-only: lets the differential proptest replay the
    /// same event sequence with the fast path disabled.
    #[cfg(test)]
    pub(crate) fn clear_store_note(&mut self) {
        self.last_store = None;
    }

    /// `true` when `chip`'s L2 currently holds the line of `addr`.
    #[must_use]
    pub fn l2_holds(&self, chip: usize, addr: u64) -> bool {
        self.l2s[chip].probe(self.l2_line(addr)).is_some()
    }

    fn fill_l2(&mut self, chip: usize, line: u64, state: Mesi) -> usize {
        let (slot, victim) = self.l2s[chip].insert_at(line, state);
        if let Some((victim_line, victim_state)) = victim {
            // Modified victims spill into the local MCM's L3 (simplified
            // victim handling; clean victims are dropped).
            if victim_state == Mesi::Modified {
                let mcm = self.topo.mcm_of_chip(chip);
                let bytes = victim_line * self.l2s[chip].config().line_bytes;
                let l3line = self.l3_line(bytes);
                self.l3s[mcm].insert(l3line, Mesi::Modified);
            }
        }
        slot
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for MemorySystem {
    /// The topology is config-derived; every shared cache bank and the
    /// store-combining scratch survive the checkpoint.
    // jas-lint: allow(D009, reason = "topo is the machine topology, pure configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.l2s);
        snap::persist_slice(io, &mut self.l3s);
        snap::persist_opt(io, &mut self.last_store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemorySystem {
        MemorySystem::new(
            Topology::default(),
            CacheConfig::power4_l2(),
            CacheConfig::power4_l3(),
        )
    }

    #[test]
    fn default_topology_matches_paper() {
        let t = Topology::default();
        assert_eq!(t.cores(), 4);
        assert_eq!(t.chips(), 2);
        assert_eq!(t.chip_of_core(0), 0);
        assert_eq!(t.chip_of_core(1), 0);
        assert_eq!(t.chip_of_core(2), 1);
        assert_eq!(t.mcm_of_chip(0), 0);
        assert_eq!(t.mcm_of_chip(1), 1);
    }

    #[test]
    fn cold_load_comes_from_memory_then_l2() {
        let mut m = system();
        assert_eq!(m.load_miss(0, 0x1_0000), DataSource::Memory);
        assert_eq!(m.load_miss(0, 0x1_0000), DataSource::L2);
    }

    #[test]
    fn l3_supplies_after_l2_eviction_of_dirty_line() {
        let mut m = system();
        let addr = 0x5_0000;
        m.store(0, addr); // line Modified in chip 0's L2
                          // Evict it by filling the set; L2 has 1440 sets x 128B lines, so
                          // lines that collide are 1440 lines apart.
        let stride = 1440 * 128;
        for k in 1..=9u64 {
            let _ = m.load_miss(0, addr + k * stride);
        }
        // The dirty victim must now be in MCM0's L3.
        assert_eq!(m.load_miss(0, addr), DataSource::L3);
    }

    #[test]
    fn remote_clean_copy_classified_l275_shared() {
        let mut m = system();
        let addr = 0x9_0000;
        let _ = m.load_miss(0, addr); // chip 0 (MCM 0) now caches it
                                      // Chip 1 lives on MCM 1 in the default topology → L2.75.
        assert_eq!(m.load_miss(1, addr), DataSource::L275Shared);
    }

    #[test]
    fn remote_dirty_copy_classified_l275_modified() {
        let mut m = system();
        let addr = 0xA_0000;
        m.store(0, addr);
        assert_eq!(m.load_miss(1, addr), DataSource::L275Modified);
        // After the intervention both copies are Shared: a third access from
        // chip 0 hits locally.
        assert_eq!(m.load_miss(0, addr), DataSource::L2);
    }

    #[test]
    fn l25_classification_when_chips_share_an_mcm() {
        let topo = Topology {
            mcms: 1,
            chips_per_mcm: 2,
            cores_per_chip: 2,
        };
        let mut m = MemorySystem::new(topo, CacheConfig::power4_l2(), CacheConfig::power4_l3());
        let addr = 0xB_0000;
        m.store(0, addr);
        assert_eq!(m.load_miss(1, addr), DataSource::L25Modified);
        let addr2 = 0xC_0000;
        let _ = m.load_miss(0, addr2);
        assert_eq!(m.load_miss(1, addr2), DataSource::L25Shared);
    }

    #[test]
    fn store_invalidates_remote_copies() {
        let mut m = system();
        let addr = 0xD_0000;
        let _ = m.load_miss(0, addr);
        let _ = m.load_miss(1, addr); // both chips now share the line
        m.store(0, addr); // chip 0 takes ownership
                          // Chip 1's copy must be gone: its next load is a remote-modified hit.
        assert_eq!(m.load_miss(1, addr), DataSource::L275Modified);
    }

    #[test]
    fn store_hit_vs_miss_reported() {
        let mut m = system();
        let addr = 0xE_0000;
        assert!(!m.store(0, addr), "cold store is an L2 miss");
        assert!(m.store(0, addr), "second store hits L2");
    }

    #[test]
    fn inst_fetch_walks_hierarchy() {
        let mut m = system();
        let addr = 0xF_0000;
        assert_eq!(m.fetch_inst(0, addr), InstSource::Memory);
        assert_eq!(m.fetch_inst(0, addr), InstSource::L2);
        // Remote chip's fetch finds it in chip 0's L2 (classified L2).
        assert_eq!(m.fetch_inst(1, addr), InstSource::L2);
    }

    #[test]
    fn inst_fetch_hits_l3_after_memory_fill() {
        let mut m = system();
        let addr = 0x11_0000;
        assert_eq!(m.fetch_inst(0, addr), InstSource::Memory); // fills L2 + L3
                                                               // Evict from L2 by conflict, then the L3 should supply.
        let stride = 1440 * 128;
        for k in 1..=9u64 {
            let _ = m.fetch_inst(0, addr + k * stride);
        }
        assert_eq!(m.fetch_inst(0, addr), InstSource::L3);
    }

    #[test]
    fn prefetch_into_l2_makes_later_load_hit() {
        let mut m = system();
        let addr = 0x12_0000;
        m.prefetch_into_l2(0, addr);
        assert_eq!(m.load_miss(0, addr), DataSource::L2);
    }

    #[test]
    fn no_l25_traffic_with_one_live_l2_per_mcm() {
        // Sanity check of the paper's footnote: with the default topology a
        // remote L2 hit can only be L2.75, never L2.5.
        let mut m = system();
        for i in 0..200u64 {
            let addr = 0x20_0000 + i * 128;
            let _ = m.load_miss(0, addr);
            let src = m.load_miss(1, addr);
            assert!(
                !matches!(src, DataSource::L25Shared | DataSource::L25Modified),
                "impossible L2.5 source {src:?}"
            );
        }
    }
}
