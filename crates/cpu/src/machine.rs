//! The machine model: cores, their private structures, and the shared
//! memory hierarchy, executing [`MicroOp`] streams and maintaining HPM
//! counters.
//!
//! # Two-phase execution
//!
//! The machine is split into strictly **core-private** state
//! ([`CorePrivate`]: L1 I/D, ERAT/TLB, branch predictors, prefetcher,
//! pipeline accounting, HPM counters) and the **shared** hierarchy
//! ([`MemorySystem`]: L2s, L3s, MESI coherence). A core executes its
//! micro-op stream against private state only
//! ([`CorePrivate::exec_record`]), appending every shared-hierarchy access
//! to an ordered [`MemEvent`] buffer and charging a *provisional* L2-hit
//! latency for each miss. A deterministic reconciliation pass
//! ([`reconcile_core`]) later drains the buffers in fixed core order,
//! applies coherence effects, classifies each miss by its true supplier,
//! and returns the latency correction to charge back. Because the
//! recording phase touches no shared state, any number of cores may record
//! concurrently and the end state is bit-identical to running them one
//! after another — the invariant the engine's `--threads` knob relies on.
//!
//! [`Machine::exec`] remains the immediate single-op path (record one op,
//! reconcile at once) for unit tests and microbenchmarks.

use crate::address::AddressMap;
use crate::branch::{BranchConfig, BranchUnit, LinkStack};
use crate::cache::{CacheConfig, Mesi, SetAssocCache};
use crate::counters::{CounterFile, HpmEvent};
use crate::hierarchy::{DataSource, InstSource, MemEvent, MemorySystem, Topology};
use crate::pipeline::{CostModel, FracCounter};
use crate::prefetch::{PrefetchConfig, PrefetchDecision, Prefetcher};
use crate::tlb::{Mmu, MmuConfig, TranslationOutcome};
use crate::uop::MicroOp;

/// Complete configuration of the simulated machine.
///
/// Defaults model the paper's 4-core, 2-MCM POWER4 system. `frequency_hz`
/// is the *modeled* clock used to convert cycles to simulated time; it is
/// deliberately far below 1.3 GHz (see DESIGN.md "instruction-rate
/// scaling") — all reported quantities are per-instruction ratios, which
/// are scale-invariant.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Core/chip/MCM topology.
    pub topology: Topology,
    /// L1 D-cache shape (per core).
    pub l1d: CacheConfig,
    /// L1 I-cache shape (per core).
    pub l1i: CacheConfig,
    /// L2 shape (per chip, shared by its cores).
    pub l2: CacheConfig,
    /// L3 shape (per MCM).
    pub l3: CacheConfig,
    /// ERAT/TLB shapes.
    pub mmu: MmuConfig,
    /// Branch-predictor shapes.
    pub branch: BranchConfig,
    /// Sequential-prefetcher shape.
    pub prefetch: PrefetchConfig,
    /// Stall/dispatch cost constants.
    pub cost: CostModel,
    /// Page-size policy of the address space.
    pub addr_map: AddressMap,
    /// Modeled clock frequency (cycles per simulated second).
    pub frequency_hz: f64,
    /// Enables the exact-equivalence fast paths (MRU line filter in front
    /// of the L1 D-cache, frame filters in front of IERAT/DERAT, slot-replay
    /// cache hits). Observable state — HPM counters, cache statistics,
    /// victim choices — is bit-identical either way; the toggle exists so
    /// the differential gate in `proptests.rs` can prove it. See DESIGN.md
    /// "Hot path and exact-equivalence fast paths".
    pub fast_paths: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            topology: Topology::default(),
            l1d: CacheConfig::power4_l1d(),
            l1i: CacheConfig::power4_l1i(),
            l2: CacheConfig::power4_l2(),
            l3: CacheConfig::power4_l3(),
            mmu: MmuConfig::default(),
            branch: BranchConfig::default(),
            prefetch: PrefetchConfig::default(),
            cost: CostModel::default(),
            addr_map: AddressMap::default(),
            frequency_hz: 2_000_000.0,
            fast_paths: true,
        }
    }
}

/// Per-core private state: everything a core may touch while other cores
/// are executing concurrently.
#[derive(Clone, Debug)]
pub struct CorePrivate {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    mmu: Mmu,
    branch: BranchUnit,
    link_stack: LinkStack,
    prefetch: Prefetcher,
    counters: CounterFile,
    cyc: FracCounter,
    disp: FracCounter,
    cmpl_cyc: FracCounter,
    srq: FracCounter,
    op_index: u64,
    last_l1d_miss_op: u64,
    last_fetch_line: u64,
    // --- Exact-equivalence fast-path state (DESIGN.md "Hot path"). ---
    // `fast` gates the IERAT/DERAT frame filters; `mru_ok` additionally
    // requires L1D lines not to span a 4 KB frame (so a same-line repeat
    // implies a same-frame repeat). `u64::MAX` is the invalid sentinel for
    // the remembered frames/line (real frames are `addr >> 12`, real lines
    // `addr >> 7`, so the sentinel is unreachable).
    fast: bool,
    mru_ok: bool,
    last_inst_frame: u64,
    last_data_frame: u64,
    mru_line: u64,
    mru_slot: u32,
    mru_resident: bool,
    /// Reusable buffer for prefetch decisions (avoids two `Vec` allocations
    /// per stream advance on the hot load path).
    pf_decision: PrefetchDecision,
    // Cheap deterministic per-core noise source for probabilistic model
    // events (group reissues), independent of the workload RNG.
    noise: u64,
}

impl CorePrivate {
    fn new(cfg: &MachineConfig, id: usize) -> Self {
        let fast = cfg.fast_paths;
        CorePrivate {
            l1i: SetAssocCache::new(cfg.l1i),
            l1d: SetAssocCache::new(cfg.l1d),
            mmu: Mmu::new(cfg.mmu),
            branch: BranchUnit::new(cfg.branch),
            link_stack: LinkStack::new(16), // POWER4-class depth
            prefetch: Prefetcher::new(cfg.prefetch),
            counters: CounterFile::new(),
            cyc: FracCounter::default(),
            disp: FracCounter::default(),
            cmpl_cyc: FracCounter::default(),
            srq: FracCounter::default(),
            op_index: 0,
            last_l1d_miss_op: u64::MAX / 2,
            last_fetch_line: u64::MAX,
            fast,
            mru_ok: fast && cfg.l1d.line_bytes <= 4096,
            last_inst_frame: u64::MAX,
            last_data_frame: u64::MAX,
            mru_line: u64::MAX,
            mru_slot: 0,
            mru_resident: false,
            pf_decision: PrefetchDecision::default(),
            noise: 0x9E37_79B9_7F4A_7C15 ^ (id as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        }
    }

    #[inline]
    fn noise_f64(&mut self) -> f64 {
        // SplitMix64 step — deterministic, core-local.
        self.noise = self.noise.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.noise;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// This core's cumulative HPM counters.
    #[must_use]
    pub fn counters(&self) -> &CounterFile {
        &self.counters
    }

    /// Executes one instruction against core-private state only:
    /// instruction fetch from `ia`, then the op's architectural effect.
    /// Shared-hierarchy traffic is appended to `events`; every recorded
    /// miss is charged the provisional L2-hit latency, to be corrected by
    /// [`reconcile_core`]. Returns the provisional cycles consumed.
    pub fn exec_record(
        &mut self,
        cost: &CostModel,
        addr_map: AddressMap,
        ia: u64,
        op: MicroOp,
        events: &mut Vec<MemEvent>,
    ) -> f64 {
        let c = self;
        c.op_index += 1;

        let mut cycles = cost.base_cpi;
        let mut dispatched = 1.0 + cost.baseline_overdispatch;

        // ---- Instruction side: one fetch per new cache line. ----
        let fetch_line = c.l1i.line_of(ia);
        if fetch_line != c.last_fetch_line {
            c.last_fetch_line = fetch_line;
            // Frame filter: a fetch from the same 4 KB frame as the last
            // *translated* fetch is by construction an IERAT hit — the frame
            // is still the IERAT's MRU entry, so the full translate would
            // only re-front an already-front entry (a no-op). EratHit bumps
            // no counters and charges no cycles, so skipping it is exact.
            let frame = ia >> 12;
            if !(c.fast && frame == c.last_inst_frame) {
                let page = addr_map.page_size(ia);
                match c.mmu.translate_inst(ia, page) {
                    TranslationOutcome::EratHit => {}
                    TranslationOutcome::EratMissTlbHit => {
                        c.counters.bump(HpmEvent::IeratMiss);
                        cycles += cost.erat_miss_cycles * cost.inst_overlap;
                    }
                    TranslationOutcome::TlbMiss => {
                        c.counters.bump(HpmEvent::IeratMiss);
                        c.counters.bump(HpmEvent::ItlbMiss);
                        cycles += cost.tlb_walk_cycles * cost.inst_overlap;
                    }
                }
                c.last_inst_frame = frame;
            }
            if c.l1i.access(fetch_line).is_some() {
                c.counters.bump(HpmEvent::InstFromL1);
            } else {
                // Provisional: charge an L2 hit now; the reconciliation
                // pass classifies the true supplier and charges the
                // difference.
                events.push(MemEvent::InstMiss { addr: ia });
                cycles += cost.l2_latency * cost.inst_overlap;
                c.l1i.insert(fetch_line, Mesi::Shared);
            }
        } else {
            c.counters.bump(HpmEvent::InstFromL1);
        }

        // ---- Op effect. ----
        match op {
            MicroOp::Alu => {}
            MicroOp::Load { ea } | MicroOp::Larx { ea } => {
                if matches!(op, MicroOp::Larx { .. }) {
                    c.counters.bump(HpmEvent::Larx);
                }
                c.counters.bump(HpmEvent::LoadRefs);
                let line = c.l1d.line_of(ea);
                // MRU line filter: a repeat of the previous data line that
                // is still resident is by construction a DERAT hit (same
                // 4 KB frame, and EratHit has no observable effect) and an
                // L1 hit at the remembered way — replay both without the
                // translate or the set walk.
                let mut hit_slot = usize::MAX;
                let l1_hit = if c.mru_ok && line == c.mru_line && c.mru_resident {
                    c.l1d.rehit(c.mru_slot as usize);
                    hit_slot = c.mru_slot as usize;
                    true
                } else {
                    Self::data_translate(c, cost, ea, addr_map, &mut cycles, &mut dispatched);
                    match c.l1d.access_at(line) {
                        Some((slot, _)) => {
                            hit_slot = slot;
                            true
                        }
                        None => false,
                    }
                };
                // The prefetch engine observes every load (fast path
                // included): stream confirmations ride on prefetch hits,
                // allocations on misses.
                c.prefetch
                    .on_l1_load_into(line, !l1_hit, &mut c.pf_decision);
                if c.pf_decision.allocated {
                    c.counters.bump(HpmEvent::StreamAllocs);
                }
                for &pl in &c.pf_decision.l1_lines {
                    c.counters.bump(HpmEvent::L1Prefetch);
                    c.l1d.insert(pl, Mesi::Shared);
                    events.push(MemEvent::Prefetch {
                        addr: c.l1d.addr_of_line(pl),
                    });
                }
                for &pl in &c.pf_decision.l2_lines {
                    c.counters.bump(HpmEvent::L2Prefetch);
                    events.push(MemEvent::Prefetch {
                        addr: c.l1d.addr_of_line(pl),
                    });
                }
                let pf_filled_l1 = !c.pf_decision.l1_lines.is_empty();
                if !l1_hit {
                    c.counters.bump(HpmEvent::LoadMissL1);
                    let burst =
                        c.op_index.wrapping_sub(c.last_l1d_miss_op) <= cost.burst_window_ops;
                    c.last_l1d_miss_op = c.op_index;
                    let overlap = if burst {
                        cost.overlap_burst
                    } else {
                        cost.overlap_isolated
                    };
                    // Provisional L2-hit charge; reconciliation walks the
                    // real hierarchy and charges the difference.
                    events.push(MemEvent::LoadMiss { addr: ea, overlap });
                    cycles += cost.l2_latency * overlap;
                    // Dispatch rejects: some misses cause group reissue.
                    if c.noise_f64() < cost.reissue_on_miss_prob {
                        c.counters.bump(HpmEvent::GroupReissues);
                        dispatched += cost.group_reissue_dispatch;
                    }
                    // The demand fill lands last, so its slot is final.
                    let (slot, _victim) = c.l1d.insert_at(line, Mesi::Shared);
                    c.mru_line = line;
                    c.mru_slot = slot as u32;
                    c.mru_resident = true;
                } else if !pf_filled_l1 {
                    c.mru_line = line;
                    c.mru_slot = hit_slot as u32;
                    c.mru_resident = true;
                } else {
                    // Prefetch fills may have displaced the hit line (or
                    // filled a line an earlier note called non-resident),
                    // so drop the note rather than risk a stale claim.
                    c.mru_line = u64::MAX;
                }
            }
            MicroOp::Store { ea } | MicroOp::Stcx { ea, .. } => {
                if let MicroOp::Stcx { fail, .. } = op {
                    c.counters.bump(HpmEvent::Stcx);
                    if fail {
                        c.counters.bump(HpmEvent::StcxFail);
                    }
                    cycles += cost.stcx_cycles;
                }
                c.counters.bump(HpmEvent::StoreRefs);
                let line = c.l1d.line_of(ea);
                // Write-through: the store goes to L2 either way; an L1 miss
                // does NOT allocate in L1 (paper Section 4.2.3) — so the MRU
                // note's residency flag survives a store miss unchanged, and
                // repeated stores to one line (the allocation-write pattern)
                // replay as known hits or known misses without a walk.
                if c.mru_ok && line == c.mru_line {
                    if c.mru_resident {
                        c.l1d.rehit(c.mru_slot as usize);
                    } else {
                        c.l1d.remiss();
                        c.counters.bump(HpmEvent::StoreMissL1);
                        cycles += cost.store_miss_cycles;
                    }
                } else {
                    Self::data_translate(c, cost, ea, addr_map, &mut cycles, &mut dispatched);
                    match c.l1d.access_at(line) {
                        Some((slot, _)) => {
                            c.mru_line = line;
                            c.mru_slot = slot as u32;
                            c.mru_resident = true;
                        }
                        None => {
                            c.counters.bump(HpmEvent::StoreMissL1);
                            cycles += cost.store_miss_cycles;
                            c.mru_line = line;
                            c.mru_resident = false;
                        }
                    }
                }
                events.push(MemEvent::Store { addr: ea });
            }
            MicroOp::CondBranch { site, taken } => {
                c.counters.bump(HpmEvent::Branches);
                if !c.branch.resolve_conditional(site, taken).correct {
                    c.counters.bump(HpmEvent::BrMpredCond);
                    cycles += cost.mispredict_cycles;
                    dispatched += cost.wrong_path_dispatch;
                }
            }
            MicroOp::IndBranch { site, target } => {
                c.counters.bump(HpmEvent::Branches);
                c.counters.bump(HpmEvent::IndirectBranches);
                if !c.branch.resolve_indirect(site, target).correct {
                    c.counters.bump(HpmEvent::BrMpredTarget);
                    cycles += cost.mispredict_cycles;
                    dispatched += cost.wrong_path_dispatch;
                    // A target misprediction redirects fetch: the next op
                    // fetches from the (new) target line.
                    c.last_fetch_line = u64::MAX;
                }
            }
            MicroOp::Sync => {
                c.counters.bump(HpmEvent::SyncCount);
                cycles += cost.sync_srq_cycles;
                c.srq.add(
                    &mut c.counters,
                    HpmEvent::SyncSrqCycles,
                    cost.sync_srq_cycles,
                );
            }
            MicroOp::Call { ret } => {
                // Direct calls are perfectly target-predicted; the link
                // stack records the return address. (PM_BR_CMPL counts
                // conditional branches only, as used by Figure 6.)
                c.link_stack.push(ret);
            }
            MicroOp::Return { to } => {
                c.counters.bump(HpmEvent::Returns);
                if !c.link_stack.resolve_return(to) {
                    c.counters.bump(HpmEvent::RetMpred);
                    cycles += cost.mispredict_cycles;
                    dispatched += cost.wrong_path_dispatch;
                    c.last_fetch_line = u64::MAX;
                }
            }
        }

        // ---- Completion accounting. ----
        c.counters.bump(HpmEvent::InstCompleted);
        c.cyc.add(&mut c.counters, HpmEvent::Cycles, cycles);
        c.disp
            .add(&mut c.counters, HpmEvent::InstDispatched, dispatched);
        c.cmpl_cyc.add(
            &mut c.counters,
            HpmEvent::CyclesWithCompletion,
            1.0 / cost.completion_group_width,
        );
        cycles
    }

    fn data_translate(
        c: &mut CorePrivate,
        cost: &CostModel,
        ea: u64,
        addr_map: AddressMap,
        cycles: &mut f64,
        dispatched: &mut f64,
    ) {
        // Frame filter: same 4 KB frame as the previous data translation ⇒
        // the frame is still the DERAT's MRU entry, so the full path would
        // be a cost-free EratHit that re-fronts an already-front entry.
        let frame = ea >> 12;
        if c.fast && frame == c.last_data_frame {
            return;
        }
        let page = addr_map.page_size(ea);
        match c.mmu.translate_data(ea, page) {
            TranslationOutcome::EratHit => {}
            TranslationOutcome::EratMissTlbHit => {
                c.counters.bump(HpmEvent::DeratMiss);
                *cycles += cost.erat_miss_cycles;
                // The load is retried every `reject_retry_cycles` until the
                // translation arrives — each retry is a dispatch.
                *dispatched += cost.erat_miss_cycles / cost.reject_retry_cycles;
            }
            TranslationOutcome::TlbMiss => {
                c.counters.bump(HpmEvent::DeratMiss);
                c.counters.bump(HpmEvent::DtlbMiss);
                *cycles += cost.tlb_walk_cycles;
                *dispatched += cost.tlb_walk_cycles / cost.reject_retry_cycles;
            }
        }
        c.last_data_frame = frame;
    }
}

/// Load-to-use latency of a data source under `cost`.
#[must_use]
pub fn data_latency(cost: &CostModel, source: DataSource) -> f64 {
    match source {
        DataSource::L2 => cost.l2_latency,
        DataSource::L25Shared | DataSource::L25Modified => cost.l25_latency,
        DataSource::L275Shared | DataSource::L275Modified => cost.l275_latency,
        DataSource::L3 => cost.l3_latency,
        DataSource::L35 => cost.l35_latency,
        DataSource::Memory => cost.mem_latency,
    }
}

fn data_event(source: DataSource) -> HpmEvent {
    match source {
        DataSource::L2 => HpmEvent::DataFromL2,
        DataSource::L25Shared => HpmEvent::DataFromL25Shr,
        DataSource::L25Modified => HpmEvent::DataFromL25Mod,
        DataSource::L275Shared => HpmEvent::DataFromL275Shr,
        DataSource::L275Modified => HpmEvent::DataFromL275Mod,
        DataSource::L3 => HpmEvent::DataFromL3,
        DataSource::L35 => HpmEvent::DataFromL35,
        DataSource::Memory => HpmEvent::DataFromMem,
    }
}

/// Drains `core`'s recorded shared-hierarchy events **in program order**
/// through the shared memory system: applies coherence effects, classifies
/// each miss by its true supplier (bumping the corresponding HPM
/// counters), and accumulates the latency difference against the
/// provisional L2-hit charge taken during recording. The correction is
/// added to the core's cycle counter and returned so the caller can charge
/// it against the core's execution budget.
///
/// Calling this for every core in a fixed order yields a machine state and
/// counter file that are bit-identical regardless of how the recording
/// phase was scheduled across host threads.
pub fn reconcile_core(
    core: &mut CorePrivate,
    chip: usize,
    cost: &CostModel,
    mem: &mut MemorySystem,
    events: &mut Vec<MemEvent>,
) -> f64 {
    let mut correction = 0.0;
    for event in events.drain(..) {
        match event {
            MemEvent::InstMiss { addr } => {
                let (hpm_event, latency) = match mem.fetch_inst(chip, addr) {
                    InstSource::L2 => (HpmEvent::InstFromL2, cost.l2_latency),
                    InstSource::L3 => (HpmEvent::InstFromL3, cost.l3_latency),
                    InstSource::Memory => (HpmEvent::InstFromMem, cost.mem_latency),
                };
                core.counters.bump(hpm_event);
                correction += (latency - cost.l2_latency) * cost.inst_overlap;
            }
            MemEvent::LoadMiss { addr, overlap } => {
                let source = mem.load_miss(chip, addr);
                core.counters.bump(data_event(source));
                correction += (data_latency(cost, source) - cost.l2_latency) * overlap;
            }
            MemEvent::Store { addr } => {
                let _l2_hit = mem.store(chip, addr);
            }
            MemEvent::Prefetch { addr } => {
                mem.prefetch_into_l2(chip, addr);
            }
        }
    }
    if correction > 0.0 {
        core.cyc
            .add(&mut core.counters, HpmEvent::Cycles, correction);
    }
    correction
}

/// Mutable views over the machine's disjoint halves, for callers that run
/// the recording phase themselves (possibly across threads) and then
/// reconcile.
pub struct MachineParts<'a> {
    /// The machine's configuration.
    pub cfg: &'a MachineConfig,
    /// Core-private halves, indexed by core id.
    pub cores: &'a mut [CorePrivate],
    /// The shared hierarchy.
    pub mem: &'a mut MemorySystem,
}

/// The simulated multiprocessor.
///
/// # Example
///
/// ```
/// use jas_cpu::{Machine, MachineConfig, MicroOp, Region};
///
/// let mut m = Machine::new(MachineConfig::default());
/// let ia = Region::JitCode.base();
/// let cycles = m.exec(0, ia, MicroOp::Load { ea: Region::JavaHeap.base() });
/// assert!(cycles > 0.0);
/// assert_eq!(m.counters(0).get(jas_cpu::HpmEvent::LoadRefs), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<CorePrivate>,
    mem: MemorySystem,
    /// Scratch buffer for the immediate [`Machine::exec`] path.
    scratch: Vec<MemEvent>,
}

impl Machine {
    /// Builds the machine from its configuration.
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Self {
        let cores = (0..cfg.topology.cores())
            .map(|id| CorePrivate::new(&cfg, id))
            .collect();
        let mem = MemorySystem::new(cfg.topology, cfg.l2, cfg.l3);
        Machine {
            cfg,
            cores,
            mem,
            scratch: Vec::new(),
        }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Cumulative counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn counters(&self, core: usize) -> &CounterFile {
        &self.cores[core].counters
    }

    /// Read-only view of one core's L1 D-cache (statistics/occupancy for
    /// the differential fast-path gate and for experiments).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1d(&self, core: usize) -> &SetAssocCache {
        &self.cores[core].l1d
    }

    /// Read-only view of one core's L1 I-cache.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1i(&self, core: usize) -> &SetAssocCache {
        &self.cores[core].l1i
    }

    /// Machine-wide counter aggregate (sum over cores).
    #[must_use]
    pub fn total_counters(&self) -> CounterFile {
        let mut total = CounterFile::new();
        for c in &self.cores {
            total.merge(&c.counters);
        }
        total
    }

    /// Splits the machine into its disjoint halves for two-phase
    /// execution: per-core private state and the shared hierarchy.
    #[must_use]
    pub fn parts_mut(&mut self) -> MachineParts<'_> {
        MachineParts {
            cfg: &self.cfg,
            cores: &mut self.cores,
            mem: &mut self.mem,
        }
    }

    /// Detaches the per-core private halves so a scheduler can move them
    /// into worker threads (ownership transfer — no copying). The machine
    /// keeps the shared hierarchy; [`Machine::restore_cores`] must be
    /// called before any counter read or [`Machine::exec`].
    ///
    /// # Panics
    ///
    /// Panics if the cores are already detached.
    #[must_use]
    pub fn take_cores(&mut self) -> Vec<CorePrivate> {
        assert!(
            !self.cores.is_empty(),
            "cores already detached (unbalanced take_cores)"
        );
        std::mem::take(&mut self.cores)
    }

    /// Re-attaches cores previously removed with [`Machine::take_cores`].
    ///
    /// # Panics
    ///
    /// Panics if the count does not match the machine's topology.
    pub fn restore_cores(&mut self, cores: Vec<CorePrivate>) {
        assert_eq!(
            cores.len(),
            self.cfg.topology.cores(),
            "restored core count must match topology"
        );
        self.cores = cores;
    }

    /// The shared hierarchy (for reconciliation while cores are detached).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Executes one instruction on `core` immediately: records against the
    /// core's private state, then reconciles the shared-hierarchy events
    /// at once. Returns the cycles consumed (including the reconciled
    /// latency correction).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn exec(&mut self, core: usize, ia: u64, op: MicroOp) -> f64 {
        let chip = self.cfg.topology.chip_of_core(core);
        let cost = self.cfg.cost;
        let addr_map = self.cfg.addr_map;
        let c = &mut self.cores[core];
        let cycles = c.exec_record(&cost, addr_map, ia, op, &mut self.scratch);
        let correction = reconcile_core(c, chip, &cost, &mut self.mem, &mut self.scratch);
        cycles + correction
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for CorePrivate {
    /// `fast` and `mru_ok` are config-derived and `pf_decision` is
    /// per-miss scratch; everything else a core mutates while executing
    /// survives the checkpoint.
    // jas-lint: allow(D009, reason = "fast and mru_ok are config-derived; pf_decision is per-miss scratch, dead at quantum boundaries")
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.l1i.persist(io);
        self.l1d.persist(io);
        self.mmu.persist(io);
        self.branch.persist(io);
        self.link_stack.persist(io);
        self.prefetch.persist(io);
        self.counters.persist(io);
        self.cyc.persist(io);
        self.disp.persist(io);
        self.cmpl_cyc.persist(io);
        self.srq.persist(io);
        self.op_index.persist(io);
        self.last_l1d_miss_op.persist(io);
        self.last_fetch_line.persist(io);
        self.last_inst_frame.persist(io);
        self.last_data_frame.persist(io);
        self.mru_line.persist(io);
        self.mru_slot.persist(io);
        self.mru_resident.persist(io);
        self.noise.persist(io);
    }
}

impl Persist for Machine {
    // jas-lint: allow(D009, reason = "cfg is configuration; scratch is a per-op event buffer, drained before any checkpoint boundary")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.cores);
        self.mem.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Region;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn default_machine_has_four_cores() {
        assert_eq!(machine().cores(), 4);
    }

    #[test]
    fn load_counts_refs_and_misses() {
        let mut m = machine();
        let ia = Region::JitCode.base();
        let ea = Region::JavaHeap.base();
        m.exec(0, ia, MicroOp::Load { ea });
        let c = m.counters(0);
        assert_eq!(c.get(HpmEvent::LoadRefs), 1);
        assert_eq!(c.get(HpmEvent::LoadMissL1), 1);
        assert_eq!(c.get(HpmEvent::DataFromMem), 1);
        // Second access to the same address hits L1.
        m.exec(0, ia + 4, MicroOp::Load { ea });
        let c = m.counters(0);
        assert_eq!(c.get(HpmEvent::LoadRefs), 2);
        assert_eq!(c.get(HpmEvent::LoadMissL1), 1);
    }

    #[test]
    fn store_miss_does_not_allocate_l1() {
        let mut m = machine();
        let ia = Region::JitCode.base();
        let ea = Region::JavaHeap.base() + 64 * 1024;
        m.exec(0, ia, MicroOp::Store { ea });
        assert_eq!(m.counters(0).get(HpmEvent::StoreMissL1), 1);
        // Store missed; line must STILL not be in L1 (no allocate), so a
        // following load misses L1 but hits L2 (store allocated there).
        m.exec(0, ia + 4, MicroOp::Load { ea });
        let c = m.counters(0);
        assert_eq!(c.get(HpmEvent::LoadMissL1), 1);
        assert_eq!(c.get(HpmEvent::DataFromL2), 1);
    }

    #[test]
    fn store_then_remote_load_is_modified_transfer() {
        let mut m = machine();
        let ia = Region::JitCode.base();
        let ea = Region::JavaHeap.base() + 1024 * 1024;
        m.exec(0, ia, MicroOp::Store { ea });
        // Core 2 is on the other chip/MCM.
        m.exec(2, ia, MicroOp::Load { ea });
        assert_eq!(m.counters(2).get(HpmEvent::DataFromL275Mod), 1);
    }

    #[test]
    fn heap_large_pages_reduce_dtlb_misses() {
        let run = |large: bool| -> u64 {
            let mut cfg = MachineConfig::default();
            cfg.addr_map.heap_large_pages = large;
            let mut m = Machine::new(cfg);
            let ia = Region::JitCode.base();
            // Touch 1024 distinct 4 KB-spaced heap addresses, twice.
            for round in 0..2 {
                for i in 0..1024u64 {
                    let _ = round;
                    m.exec(
                        0,
                        ia,
                        MicroOp::Load {
                            ea: Region::JavaHeap.base() + i * 4096,
                        },
                    );
                }
            }
            m.counters(0).get(HpmEvent::DtlbMiss)
        };
        let small = run(false);
        let large = run(true);
        assert!(
            large * 10 < small,
            "large pages should slash DTLB misses: {large} vs {small}"
        );
    }

    #[test]
    fn mispredicted_branch_charges_flush_and_wrong_path() {
        let mut m = machine();
        let ia = Region::JitCode.base();
        // Train, then violate.
        for _ in 0..16 {
            m.exec(
                0,
                ia,
                MicroOp::CondBranch {
                    site: 0x10,
                    taken: true,
                },
            );
        }
        let before = m.counters(0).clone();
        let cycles = m.exec(
            0,
            ia,
            MicroOp::CondBranch {
                site: 0x10,
                taken: false,
            },
        );
        let d = m.counters(0).delta_since(&before);
        assert_eq!(d.get(HpmEvent::BrMpredCond), 1);
        assert!(cycles > m.config().cost.mispredict_cycles);
        assert!(d.get(HpmEvent::InstDispatched) as f64 >= m.config().cost.wrong_path_dispatch);
    }

    #[test]
    fn sync_occupies_srq() {
        let mut m = machine();
        let ia = Region::NativeCode.base();
        m.exec(0, ia, MicroOp::Sync);
        let c = m.counters(0);
        assert_eq!(c.get(HpmEvent::SyncCount), 1);
        assert!(c.get(HpmEvent::SyncSrqCycles) >= 29);
    }

    #[test]
    fn stcx_failure_counted() {
        let mut m = machine();
        let ia = Region::NativeCode.base();
        let ea = Region::JavaHeap.base();
        m.exec(0, ia, MicroOp::Larx { ea });
        m.exec(0, ia + 4, MicroOp::Stcx { ea, fail: true });
        m.exec(0, ia + 8, MicroOp::Stcx { ea, fail: false });
        let c = m.counters(0);
        assert_eq!(c.get(HpmEvent::Larx), 1);
        assert_eq!(c.get(HpmEvent::Stcx), 2);
        assert_eq!(c.get(HpmEvent::StcxFail), 1);
    }

    #[test]
    fn sequential_loads_trigger_prefetch_streams() {
        let mut m = machine();
        let ia = Region::JitCode.base();
        let base = Region::DbBufferPool.base();
        // March sequentially across 64 cache lines.
        for i in 0..64u64 {
            m.exec(0, ia, MicroOp::Load { ea: base + i * 128 });
        }
        let c = m.counters(0);
        assert!(c.get(HpmEvent::StreamAllocs) >= 1);
        assert!(c.get(HpmEvent::L1Prefetch) > 0);
        assert!(c.get(HpmEvent::L2Prefetch) > 0);
        // Prefetching must shrink demand misses well below 64.
        assert!(
            c.get(HpmEvent::LoadMissL1) < 32,
            "prefetcher should hide sequential misses, got {}",
            c.get(HpmEvent::LoadMissL1)
        );
    }

    #[test]
    fn cpi_of_pure_alu_is_base_cpi() {
        let mut m = machine();
        let ia = Region::JitCode.base();
        for i in 0..10_000u64 {
            m.exec(0, ia + (i % 32) * 4, MicroOp::Alu);
        }
        let cpi = m.counters(0).cpi().unwrap();
        let base = m.config().cost.base_cpi;
        assert!((cpi - base).abs() < 0.1, "cpi {cpi} vs base {base}");
    }

    #[test]
    fn total_counters_sum_cores() {
        let mut m = machine();
        let ia = Region::JitCode.base();
        m.exec(0, ia, MicroOp::Alu);
        m.exec(3, ia, MicroOp::Alu);
        assert_eq!(m.total_counters().get(HpmEvent::InstCompleted), 2);
    }

    #[test]
    fn dispatch_exceeds_completion() {
        let mut m = machine();
        let ia = Region::JitCode.base();
        for i in 0..1000u64 {
            m.exec(0, ia + (i % 512) * 4, MicroOp::Alu);
        }
        let c = m.counters(0);
        assert!(c.get(HpmEvent::InstDispatched) > c.get(HpmEvent::InstCompleted));
    }

    /// The two-phase core of the determinism guarantee: recording each
    /// core's stream separately and reconciling in fixed order must
    /// produce exactly the state of the immediate path, op for op.
    #[test]
    fn record_then_reconcile_matches_immediate_exec() {
        let ia = Region::JitCode.base();
        let ops: Vec<(usize, MicroOp)> = (0..600u64)
            .map(|i| {
                let core = (i % 4) as usize;
                let op = match i % 5 {
                    0 => MicroOp::Load {
                        ea: Region::JavaHeap.base() + (i / 4) * 512,
                    },
                    1 => MicroOp::Store {
                        ea: Region::DbBufferPool.base() + (i / 4) * 256,
                    },
                    2 => MicroOp::Alu,
                    3 => MicroOp::CondBranch {
                        site: i % 17,
                        taken: i % 3 == 0,
                    },
                    _ => MicroOp::Load {
                        ea: Region::JavaHeap.base() + (i % 64) * 128,
                    },
                };
                (core, op)
            })
            .collect();

        // Immediate path, but per-core batches so both paths see the same
        // per-core op order relative to shared state.
        let mut a = machine();
        for core in 0..4 {
            for (c, op) in &ops {
                if *c == core {
                    a.exec(core, ia, *op);
                }
            }
        }

        // Two-phase path: record every core's batch privately, then
        // reconcile in fixed core order.
        let mut b = machine();
        let parts = b.parts_mut();
        let cost = parts.cfg.cost;
        let addr_map = parts.cfg.addr_map;
        let topo = parts.cfg.topology;
        let mut bufs: Vec<Vec<MemEvent>> = vec![Vec::new(); 4];
        for (core, cp) in parts.cores.iter_mut().enumerate() {
            for (c, op) in &ops {
                if *c == core {
                    cp.exec_record(&cost, addr_map, ia, *op, &mut bufs[core]);
                }
            }
        }
        for (core, cp) in parts.cores.iter_mut().enumerate() {
            reconcile_core(
                cp,
                topo.chip_of_core(core),
                &cost,
                parts.mem,
                &mut bufs[core],
            );
        }

        for core in 0..4 {
            assert_eq!(
                a.counters(core).get(HpmEvent::Cycles),
                b.counters(core).get(HpmEvent::Cycles),
                "core {core} cycle counters diverge"
            );
            assert_eq!(
                a.counters(core).get(HpmEvent::InstCompleted),
                b.counters(core).get(HpmEvent::InstCompleted)
            );
        }
    }
}
