//! A POWER4-like processor and memory-hierarchy model with hardware
//! performance monitor (HPM) counters.
//!
//! This crate is the hardware substrate of the `jas2004` reproduction of
//! *"Characterizing a Complex J2EE Workload"* (ISPASS 2007). It models the
//! microarchitectural structures whose behaviour the paper measures:
//!
//! * per-core **L1 I/D caches** (the D-cache 2-way FIFO and write-through
//!   with no allocate-on-store-miss, as on POWER4),
//! * a per-chip shared **L2**, per-MCM **L3**, and the MCM topology that
//!   classifies remote hits as L2.5/L2.75/L3.5 with MESI shared/modified
//!   intervention states ([`hierarchy`]),
//! * **IERAT/DERAT and a unified TLB** with 4 KB and 16 MB pages ([`tlb`]),
//! * a gshare + BTB **branch unit** ([`branch`]),
//! * the 8-stream **sequential prefetcher** ([`prefetch`]),
//! * a pipeline **cost model** with speculation (dispatch vs. complete)
//!   accounting ([`pipeline`]), and
//! * the **HPM counter file** every tool samples ([`counters`]).
//!
//! Workloads enter as [`MicroOp`] streams, typically produced by a
//! [`StreamGen`] from a [`StreamProfile`] supplied by the software layers.
//!
//! # Example
//!
//! ```
//! use jas_cpu::{Machine, MachineConfig, HpmEvent, MicroOp, Region};
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let ia = Region::JitCode.base();
//! for i in 0..100u64 {
//!     machine.exec(0, ia + i * 4, MicroOp::Load { ea: Region::JavaHeap.base() + i * 128 });
//! }
//! let counters = machine.counters(0);
//! assert_eq!(counters.get(HpmEvent::LoadRefs), 100);
//! assert!(counters.cpi().unwrap() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod branch;
pub mod cache;
pub mod counters;
pub mod hierarchy;
pub mod machine;
pub mod pipeline;
pub mod prefetch;
#[cfg(test)]
mod proptests;
pub mod stream;
pub mod tlb;
mod uop;

pub use address::{AddressMap, PageSize, Region};
pub use branch::{BranchConfig, BranchUnit};
pub use cache::{CacheConfig, Mesi, Replacement, SetAssocCache};
pub use counters::{CounterFile, HpmEvent, EVENT_COUNT};
pub use hierarchy::{DataSource, InstSource, MemEvent, MemorySystem, Topology};
pub use machine::{
    data_latency, reconcile_core, CorePrivate, Machine, MachineConfig, MachineParts,
};
pub use pipeline::CostModel;
pub use prefetch::{PrefetchConfig, Prefetcher};
pub use stream::{AccessPattern, DataRegion, StreamGen, StreamProfile, Window};
pub use tlb::{Mmu, MmuConfig, TranslationOutcome};
pub use uop::MicroOp;
