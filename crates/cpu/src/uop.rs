//! The abstract instruction ("micro-op") vocabulary executed by the core
//! model.
//!
//! The simulator does not interpret PowerPC encodings; it executes a stream
//! of architectural *effects*: memory references with effective addresses,
//! branches with resolution information, the LARX/STCX reservation pair and
//! SYNC barriers (paper Section 4.2.4), and plain ALU work. Each op models
//! one completed instruction.

/// One modeled instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MicroOp {
    /// A non-memory, non-branch instruction.
    #[default]
    Alu,
    /// A load from effective address `ea`.
    Load {
        /// Effective address referenced.
        ea: u64,
    },
    /// A store to effective address `ea`.
    Store {
        /// Effective address referenced.
        ea: u64,
    },
    /// A conditional branch at call-site `site` resolving to `taken`.
    CondBranch {
        /// Static identity of the branch (its instruction address class).
        site: u64,
        /// Actual resolved direction.
        taken: bool,
    },
    /// An indirect branch (virtual call, computed goto) at `site` jumping to
    /// `target`.
    IndBranch {
        /// Static identity of the branch.
        site: u64,
        /// Actual resolved target address.
        target: u64,
    },
    /// Load-and-reserve (LWARX/LDARX): a load that opens a reservation.
    Larx {
        /// Effective address reserved.
        ea: u64,
    },
    /// Store-conditional (STWCX/STDCX): succeeds only if the reservation
    /// held; `fail` carries the resolved outcome from the lock model.
    Stcx {
        /// Effective address stored.
        ea: u64,
        /// Whether the store-conditional failed (reservation lost).
        fail: bool,
    },
    /// A SYNC/LWSYNC/ISYNC barrier draining the store-reorder queue.
    Sync,
    /// A (direct) subroutine call: pushes `ret` onto the link stack and
    /// transfers control; direct-call targets are perfectly predicted.
    Call {
        /// Return address recorded for the matching [`MicroOp::Return`].
        ret: u64,
    },
    /// A subroutine return to `to`, predicted by the link stack.
    Return {
        /// Actual return target.
        to: u64,
    },
}

impl MicroOp {
    /// `true` for ops that reference data memory.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            MicroOp::Load { .. }
                | MicroOp::Store { .. }
                | MicroOp::Larx { .. }
                | MicroOp::Stcx { .. }
        )
    }

    /// `true` for branch ops (control transfers).
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            MicroOp::CondBranch { .. }
                | MicroOp::IndBranch { .. }
                | MicroOp::Call { .. }
                | MicroOp::Return { .. }
        )
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{Persist, StateIo};

impl Persist for MicroOp {
    /// Integer tag plus up to two argument words (format is
    /// variant-shaped, not fixed-width — the visitor replays the same
    /// shape on load).
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag = match self {
            MicroOp::Alu => 0u64,
            MicroOp::Load { .. } => 1,
            MicroOp::Store { .. } => 2,
            MicroOp::CondBranch { .. } => 3,
            MicroOp::IndBranch { .. } => 4,
            MicroOp::Larx { .. } => 5,
            MicroOp::Stcx { .. } => 6,
            MicroOp::Sync => 7,
            MicroOp::Call { .. } => 8,
            MicroOp::Return { .. } => 9,
        };
        io.word(&mut tag);
        if !io.saving() {
            *self = match tag {
                1 => MicroOp::Load { ea: 0 },
                2 => MicroOp::Store { ea: 0 },
                3 => MicroOp::CondBranch {
                    site: 0,
                    taken: false,
                },
                4 => MicroOp::IndBranch { site: 0, target: 0 },
                5 => MicroOp::Larx { ea: 0 },
                6 => MicroOp::Stcx { ea: 0, fail: false },
                7 => MicroOp::Sync,
                8 => MicroOp::Call { ret: 0 },
                9 => MicroOp::Return { to: 0 },
                _ => MicroOp::Alu,
            };
        }
        match self {
            MicroOp::Alu | MicroOp::Sync => {}
            MicroOp::Load { ea } | MicroOp::Store { ea } | MicroOp::Larx { ea } => ea.persist(io),
            MicroOp::CondBranch { site, taken } => {
                site.persist(io);
                taken.persist(io);
            }
            MicroOp::IndBranch { site, target } => {
                site.persist(io);
                target.persist(io);
            }
            MicroOp::Stcx { ea, fail } => {
                ea.persist(io);
                fail.persist(io);
            }
            MicroOp::Call { ret } => ret.persist(io),
            MicroOp::Return { to } => to.persist(io),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(MicroOp::Load { ea: 0 }.is_memory());
        assert!(MicroOp::Stcx { ea: 0, fail: false }.is_memory());
        assert!(!MicroOp::Alu.is_memory());
        assert!(MicroOp::CondBranch {
            site: 1,
            taken: true
        }
        .is_branch());
        assert!(MicroOp::IndBranch { site: 1, target: 2 }.is_branch());
        assert!(MicroOp::Call { ret: 4 }.is_branch());
        assert!(MicroOp::Return { to: 4 }.is_branch());
        assert!(!MicroOp::Sync.is_branch());
    }
}
