//! The abstract instruction ("micro-op") vocabulary executed by the core
//! model.
//!
//! The simulator does not interpret PowerPC encodings; it executes a stream
//! of architectural *effects*: memory references with effective addresses,
//! branches with resolution information, the LARX/STCX reservation pair and
//! SYNC barriers (paper Section 4.2.4), and plain ALU work. Each op models
//! one completed instruction.

/// One modeled instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroOp {
    /// A non-memory, non-branch instruction.
    Alu,
    /// A load from effective address `ea`.
    Load {
        /// Effective address referenced.
        ea: u64,
    },
    /// A store to effective address `ea`.
    Store {
        /// Effective address referenced.
        ea: u64,
    },
    /// A conditional branch at call-site `site` resolving to `taken`.
    CondBranch {
        /// Static identity of the branch (its instruction address class).
        site: u64,
        /// Actual resolved direction.
        taken: bool,
    },
    /// An indirect branch (virtual call, computed goto) at `site` jumping to
    /// `target`.
    IndBranch {
        /// Static identity of the branch.
        site: u64,
        /// Actual resolved target address.
        target: u64,
    },
    /// Load-and-reserve (LWARX/LDARX): a load that opens a reservation.
    Larx {
        /// Effective address reserved.
        ea: u64,
    },
    /// Store-conditional (STWCX/STDCX): succeeds only if the reservation
    /// held; `fail` carries the resolved outcome from the lock model.
    Stcx {
        /// Effective address stored.
        ea: u64,
        /// Whether the store-conditional failed (reservation lost).
        fail: bool,
    },
    /// A SYNC/LWSYNC/ISYNC barrier draining the store-reorder queue.
    Sync,
    /// A (direct) subroutine call: pushes `ret` onto the link stack and
    /// transfers control; direct-call targets are perfectly predicted.
    Call {
        /// Return address recorded for the matching [`MicroOp::Return`].
        ret: u64,
    },
    /// A subroutine return to `to`, predicted by the link stack.
    Return {
        /// Actual return target.
        to: u64,
    },
}

impl MicroOp {
    /// `true` for ops that reference data memory.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            MicroOp::Load { .. }
                | MicroOp::Store { .. }
                | MicroOp::Larx { .. }
                | MicroOp::Stcx { .. }
        )
    }

    /// `true` for branch ops (control transfers).
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            MicroOp::CondBranch { .. }
                | MicroOp::IndBranch { .. }
                | MicroOp::Call { .. }
                | MicroOp::Return { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(MicroOp::Load { ea: 0 }.is_memory());
        assert!(MicroOp::Stcx { ea: 0, fail: false }.is_memory());
        assert!(!MicroOp::Alu.is_memory());
        assert!(MicroOp::CondBranch {
            site: 1,
            taken: true
        }
        .is_branch());
        assert!(MicroOp::IndBranch { site: 1, target: 2 }.is_branch());
        assert!(MicroOp::Call { ret: 4 }.is_branch());
        assert!(MicroOp::Return { to: 4 }.is_branch());
        assert!(!MicroOp::Sync.is_branch());
    }
}
