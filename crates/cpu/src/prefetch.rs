//! POWER4-style sequential hardware prefetcher.
//!
//! POWER4 detects sequences of cache-line misses at ascending or descending
//! addresses, allocates one of eight prefetch streams, and runs ahead of the
//! demand stream — ramping from one line ahead up to several, staging lines
//! from memory into L2 and from L2 into L1. The paper's Figure 10 finds
//! prefetch activity (stream allocations, L1/L2 prefetches) among the events
//! most strongly correlated with CPI, because streams are allocated exactly
//! when the workload suffers *bursts* of L1 misses.

/// Configuration for [`Prefetcher`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Number of concurrently tracked streams (POWER4: 8).
    pub streams: usize,
    /// Maximum run-ahead depth in lines (POWER4 ramps to ~8 for L2).
    pub max_depth: u32,
    /// Entries in the allocation-guess filter of recent miss lines.
    pub guess_entries: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            streams: 8,
            max_depth: 8,
            guess_entries: 16,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Stream {
    next_line: u64,
    dir: i64, // +1 ascending, -1 descending
    depth: u32,
    last_use: u64,
    valid: bool,
}

/// What the prefetcher decided on one L1 D-cache miss.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchDecision {
    /// A new stream was allocated for this miss.
    pub allocated: bool,
    /// The miss advanced an existing stream (stream hit).
    pub advanced: bool,
    /// Lines to stage into the L1 (near run-ahead).
    pub l1_lines: Vec<u64>,
    /// Lines to stage into the L2 (far run-ahead).
    pub l2_lines: Vec<u64>,
}

/// The per-core sequential prefetch engine.
#[derive(Clone, Debug)]
pub struct Prefetcher {
    cfg: PrefetchConfig,
    streams: Vec<Stream>,
    recent_misses: Vec<u64>,
    recent_head: usize,
    tick: u64,
    /// Most recent line whose *completed* stream scan matched nothing.
    /// A non-miss repeat of this line can skip the scan: no stream was
    /// mutated since (a confirm clears the note), and an allocation for
    /// this line leaves a stream whose delta for the same line is -1 —
    /// outside the 0..=2 confirm window — so the scan would again find
    /// nothing and the non-miss call would return with no decision.
    note_line: u64,
    note_ok: bool,
}

impl Prefetcher {
    /// Builds a prefetcher from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `streams` or `guess_entries` is zero.
    #[must_use]
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(cfg.streams > 0 && cfg.guess_entries > 0);
        Prefetcher {
            cfg,
            streams: vec![
                Stream {
                    next_line: 0,
                    dir: 1,
                    depth: 0,
                    last_use: 0,
                    valid: false,
                };
                cfg.streams
            ],
            recent_misses: vec![u64::MAX; cfg.guess_entries],
            recent_head: 0,
            tick: 0,
            note_line: 0,
            note_ok: false,
        }
    }

    /// Reports an L1 D-cache load access at `line` (`miss` says whether it
    /// missed) and returns the prefetch decision.
    ///
    /// Stream *confirmation* happens on any access that reaches the
    /// stream's expected next line — prefetched lines hit in the L1, and the
    /// engine must keep running ahead of those hits. Stream *allocation*
    /// only ever happens on demand misses.
    pub fn on_l1_load(&mut self, line: u64, miss: bool) -> PrefetchDecision {
        let mut decision = PrefetchDecision::default();
        self.on_l1_load_into(line, miss, &mut decision);
        decision
    }

    /// Like [`Prefetcher::on_l1_load`], but writes the decision into a
    /// caller-owned buffer (cleared first) so the per-op hot path in
    /// `machine.rs` reuses one allocation instead of building two fresh
    /// `Vec`s on every stream advance.
    pub fn on_l1_load_into(&mut self, line: u64, miss: bool, out: &mut PrefetchDecision) {
        out.allocated = false;
        out.advanced = false;
        out.l1_lines.clear();
        out.l2_lines.clear();
        self.tick += 1;
        let tick = self.tick;

        // Exact replay: the previous completed scan of this same line found
        // no stream, and a non-miss call mutates nothing beyond `tick` — so
        // the whole body below is a no-op. (See `note_line` for why an
        // intervening allocation at this line keeps the note valid.)
        if self.note_ok && line == self.note_line && !miss {
            return;
        }

        // 1. Does the access confirm an active stream? Real stream engines
        // tolerate small skips (interleaved stores, stride jitter), so a
        // line up to two ahead of the expected one still confirms.
        if let Some(s) = self.streams.iter_mut().find(|s| {
            s.valid && {
                let delta = (line.wrapping_sub(s.next_line)) as i64 * s.dir;
                (0..=2).contains(&delta)
            }
        }) {
            self.note_ok = false;
            s.last_use = tick;
            s.depth = (s.depth + 1).min(self.cfg.max_depth);
            s.next_line = line.wrapping_add_signed(s.dir);
            out.advanced = true;
            // Near lines into L1, the deeper run-ahead into L2.
            let near = s.depth.min(2);
            for k in 1..=s.depth {
                let target = line.wrapping_add_signed(s.dir * i64::from(k));
                if k <= near {
                    out.l1_lines.push(target);
                } else {
                    out.l2_lines.push(target);
                }
            }
            return;
        }
        self.note_ok = true;
        self.note_line = line;
        if !miss {
            return;
        }

        // 2. Does a recent miss at an adjacent line suggest a new stream?
        let ascending = self.recent_misses.contains(&line.wrapping_sub(1));
        let descending = self.recent_misses.contains(&line.wrapping_add(1));
        if ascending || descending {
            let dir: i64 = if ascending { 1 } else { -1 };
            let slot = self.victim_slot();
            self.streams[slot] = Stream {
                next_line: line.wrapping_add_signed(dir),
                dir,
                depth: 1,
                last_use: tick,
                valid: true,
            };
            out.allocated = true;
            out.l1_lines.push(line.wrapping_add_signed(dir));
        }

        // 3. Remember the miss for future allocation guesses.
        self.recent_misses[self.recent_head] = line;
        self.recent_head = (self.recent_head + 1) % self.recent_misses.len();
    }

    fn victim_slot(&self) -> usize {
        // Prefer an invalid slot, else the least recently used stream.
        if let Some(i) = self.streams.iter().position(|s| !s.valid) {
            return i;
        }
        self.streams
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
            .expect("streams is non-empty")
    }

    /// Number of currently active streams.
    #[must_use]
    pub fn active_streams(&self) -> usize {
        self.streams.iter().filter(|s| s.valid).count()
    }

    /// Test-only: drop the no-match scan note so the next call takes the
    /// full scan path (differential testing of the replay fast path).
    #[cfg(test)]
    pub(crate) fn clear_scan_note(&mut self) {
        self.note_ok = false;
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for Stream {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.next_line.persist(io);
        self.dir.persist(io);
        self.depth.persist(io);
        self.last_use.persist(io);
        self.valid.persist(io);
    }
}

impl Persist for Prefetcher {
    /// `cfg` is immutable; stream slots, the miss-guess ring, and the
    /// note-back scratch words are the mutable state.
    // jas-lint: allow(D009, reason = "cfg is construction-time configuration")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.streams);
        snap::persist_slice(io, &mut self.recent_misses);
        self.recent_head.persist(io);
        self.tick.persist(io);
        self.note_line.persist(io);
        self.note_ok.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_miss_allocates_nothing() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        let d = p.on_l1_load(1000, true);
        assert!(!d.allocated && !d.advanced);
        assert!(d.l1_lines.is_empty() && d.l2_lines.is_empty());
        assert_eq!(p.active_streams(), 0);
    }

    #[test]
    fn two_sequential_misses_allocate_ascending_stream() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        p.on_l1_load(1000, true);
        let d = p.on_l1_load(1001, true);
        assert!(d.allocated);
        assert_eq!(d.l1_lines, vec![1002]);
        assert_eq!(p.active_streams(), 1);
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        p.on_l1_load(2000, true);
        let d = p.on_l1_load(1999, true);
        assert!(d.allocated);
        assert_eq!(d.l1_lines, vec![1998]);
    }

    #[test]
    fn stream_ramps_depth_on_confirmation() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        p.on_l1_load(100, true);
        p.on_l1_load(101, true); // allocate, next = 102
        let d = p.on_l1_load(102, true); // confirm
        assert!(d.advanced);
        assert_eq!(d.l1_lines.len() + d.l2_lines.len(), 2); // depth ramped to 2
        let d = p.on_l1_load(103, true);
        assert_eq!(d.l1_lines.len() + d.l2_lines.len(), 3);
        // Near lines go to L1, the rest to L2.
        assert!(d.l1_lines.len() <= 2);
    }

    #[test]
    fn depth_saturates_at_max() {
        let mut p = Prefetcher::new(PrefetchConfig {
            max_depth: 3,
            ..PrefetchConfig::default()
        });
        p.on_l1_load(100, true);
        p.on_l1_load(101, true);
        for next in 102..120 {
            let d = p.on_l1_load(next, true);
            assert!(d.l1_lines.len() + d.l2_lines.len() <= 3);
        }
    }

    #[test]
    fn streams_are_replaced_lru() {
        let mut p = Prefetcher::new(PrefetchConfig {
            streams: 2,
            ..PrefetchConfig::default()
        });
        // Allocate streams A (base 100) and B (base 200).
        p.on_l1_load(100, true);
        p.on_l1_load(101, true);
        p.on_l1_load(200, true);
        p.on_l1_load(201, true);
        assert_eq!(p.active_streams(), 2);
        // Confirm stream B so A becomes LRU.
        p.on_l1_load(202, true);
        // Allocate stream C; it must displace A.
        p.on_l1_load(300, true);
        p.on_l1_load(301, true);
        assert_eq!(p.active_streams(), 2);
        // A no longer advances.
        let d = p.on_l1_load(102, true);
        assert!(!d.advanced);
    }

    #[test]
    fn random_misses_rarely_allocate() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        let mut rng = jas_simkernel::Rng::new(9);
        let mut allocs = 0;
        for _ in 0..10_000 {
            let line = rng.next_below(1 << 30);
            if p.on_l1_load(line, true).allocated {
                allocs += 1;
            }
        }
        assert!(allocs < 10, "random traffic allocated {allocs} streams");
    }
}
