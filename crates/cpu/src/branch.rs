//! Branch prediction: conditional direction and indirect-target prediction.
//!
//! The paper (Section 4.2.1) reports ~6% misprediction on branch conditions
//! and ~5% on indirect-branch targets, attributing the latter to Java's
//! virtual-method dispatch. We model POWER4's predictor in the usual
//! abstracted form: a gshare direction predictor (global history XOR'd into
//! a table of 2-bit saturating counters) and a direct-mapped BTB holding the
//! last observed target per indirect-branch site.

/// Configuration for [`BranchUnit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchConfig {
    /// Entries in the direction-prediction table (power of two).
    pub pht_entries: usize,
    /// Global-history bits folded into the index.
    pub history_bits: u32,
    /// Entries in the branch-target buffer (power of two).
    pub btb_entries: usize,
}

impl Default for BranchConfig {
    fn default() -> Self {
        // Short history: the synthetic branch streams carry per-site bias
        // rather than history-correlated patterns, so a long global history
        // only aliases the table (see DESIGN.md). Two bits keep the gshare
        // structure while letting per-site bias dominate.
        // Tables are sized up relative to the real POWER4 because the
        // synthetic site space is flatter than real static code (DESIGN.md
        // documents the deviation); what is reproduced is the *rate*.
        BranchConfig {
            pht_entries: 64 * 1024,
            history_bits: 0,
            btb_entries: 16 * 1024,
        }
    }
}

/// Outcome of one predicted branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Whether the prediction was correct.
    pub correct: bool,
}

/// A return-address link stack (POWER4 keeps one per thread).
///
/// Calls push the return address; returns pop and compare. Overflow wraps
/// (oldest entries are lost), underflow and mismatches mispredict — which
/// is how deep recursion and context switches cost return mispredictions
/// on real hardware.
#[derive(Clone, Debug)]
pub struct LinkStack {
    entries: Vec<u64>,
    capacity: usize,
}

impl LinkStack {
    /// Creates a link stack holding `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "link stack needs capacity");
        LinkStack {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Records a call returning to `ret`.
    pub fn push(&mut self, ret: u64) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0); // oldest entry falls off the bottom
        }
        self.entries.push(ret);
    }

    /// Resolves a return to `to`; `true` when the stack predicted it.
    pub fn resolve_return(&mut self, to: u64) -> bool {
        match self.entries.pop() {
            Some(predicted) => predicted == to,
            None => false,
        }
    }

    /// Current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.entries.len()
    }
}

/// The branch-prediction unit of one core.
#[derive(Clone, Debug)]
pub struct BranchUnit {
    pht: Vec<u8>, // 2-bit saturating counters
    history: u64,
    history_mask: u64,
    btb: Vec<(u64, u64)>, // (site tag, last target)
    cond_seen: u64,
    cond_mispredicted: u64,
    ind_seen: u64,
    ind_mispredicted: u64,
}

impl BranchUnit {
    /// Builds a branch unit from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two or are zero.
    #[must_use]
    pub fn new(cfg: BranchConfig) -> Self {
        assert!(cfg.pht_entries.is_power_of_two() && cfg.pht_entries > 0);
        assert!(cfg.btb_entries.is_power_of_two() && cfg.btb_entries > 0);
        BranchUnit {
            pht: vec![1; cfg.pht_entries], // weakly not-taken
            history: 0,
            history_mask: (1u64 << cfg.history_bits) - 1,
            btb: vec![(u64::MAX, 0); cfg.btb_entries],
            cond_seen: 0,
            cond_mispredicted: 0,
            ind_seen: 0,
            ind_mispredicted: 0,
        }
    }

    #[inline]
    fn pht_index(&self, site: u64) -> usize {
        let h = self.history & self.history_mask;
        ((site ^ h.wrapping_mul(0x9E37_79B9)) % self.pht.len() as u64) as usize
    }

    /// Resolves a conditional branch at `site` with actual direction
    /// `taken`, returning whether the predictor got it right and training
    /// the tables.
    pub fn resolve_conditional(&mut self, site: u64, taken: bool) -> Prediction {
        self.cond_seen += 1;
        let idx = self.pht_index(site);
        let predicted_taken = self.pht[idx] >= 2;
        let correct = predicted_taken == taken;
        if !correct {
            self.cond_mispredicted += 1;
        }
        // Train the 2-bit counter.
        if taken {
            self.pht[idx] = (self.pht[idx] + 1).min(3);
        } else {
            self.pht[idx] = self.pht[idx].saturating_sub(1);
        }
        // Shift global history.
        self.history = (self.history << 1) | u64::from(taken);
        Prediction { correct }
    }

    /// Resolves an indirect branch at `site` jumping to `target`, returning
    /// whether the BTB predicted the target and updating it.
    pub fn resolve_indirect(&mut self, site: u64, target: u64) -> Prediction {
        self.ind_seen += 1;
        let idx = (site % self.btb.len() as u64) as usize;
        let (tag, predicted) = self.btb[idx];
        let correct = tag == site && predicted == target;
        if !correct {
            self.ind_mispredicted += 1;
        }
        self.btb[idx] = (site, target);
        Prediction { correct }
    }

    /// `(seen, mispredicted)` for conditional branches.
    #[must_use]
    pub fn conditional_stats(&self) -> (u64, u64) {
        (self.cond_seen, self.cond_mispredicted)
    }

    /// `(seen, mispredicted)` for indirect branches.
    #[must_use]
    pub fn indirect_stats(&self) -> (u64, u64) {
        (self.ind_seen, self.ind_mispredicted)
    }
}
// --- Checkpoint persistence -------------------------------------------------

use jas_simkernel::snapshot::{self as snap, Persist, StateIo};

impl Persist for LinkStack {
    // jas-lint: allow(D009, reason = "capacity is config-derived sizing, rebuilt by construction")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_vec(io, &mut self.entries);
    }
}

impl Persist for BranchUnit {
    /// `history_mask` is config-derived; tables, global history, and the
    /// prediction statistics are the mutable state.
    // jas-lint: allow(D009, reason = "history_mask is config-derived sizing, rebuilt by construction")
    fn persist(&mut self, io: &mut dyn StateIo) {
        snap::persist_slice(io, &mut self.pht);
        self.history.persist(io);
        snap::persist_slice(io, &mut self.btb);
        self.cond_seen.persist(io);
        self.cond_mispredicted.persist(io);
        self.ind_seen.persist(io);
        self.ind_mispredicted.persist(io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BranchUnit {
        BranchUnit::new(BranchConfig::default())
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut b = unit();
        // After warm-up, an always-taken branch should be predicted ~always.
        for _ in 0..16 {
            b.resolve_conditional(0x400, true);
        }
        let miss_before = b.conditional_stats().1;
        for _ in 0..100 {
            b.resolve_conditional(0x400, true);
        }
        assert_eq!(b.conditional_stats().1, miss_before, "no further misses");
    }

    #[test]
    fn learns_simple_alternation_via_history() {
        // Alternation needs history bits; enable them explicitly.
        let mut b = BranchUnit::new(BranchConfig {
            history_bits: 11,
            ..BranchConfig::default()
        });
        // T,N,T,N... is perfectly predictable with global history.
        let mut taken = false;
        for _ in 0..2000 {
            taken = !taken;
            b.resolve_conditional(0x500, taken);
        }
        let (seen, miss) = b.conditional_stats();
        assert!(seen == 2000);
        assert!(
            (miss as f64) / (seen as f64) < 0.1,
            "alternation should be learnable, miss rate {}",
            miss as f64 / seen as f64
        );
    }

    #[test]
    fn random_branch_mispredicts_heavily() {
        let mut b = unit();
        let mut rng = jas_simkernel::Rng::new(1);
        for _ in 0..10_000 {
            b.resolve_conditional(0x600, rng.chance(0.5));
        }
        let (seen, miss) = b.conditional_stats();
        let rate = miss as f64 / seen as f64;
        assert!((0.4..0.6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn monomorphic_indirect_site_predicts_after_first() {
        let mut b = unit();
        assert!(!b.resolve_indirect(0x900, 0xAAAA).correct); // cold
        for _ in 0..50 {
            assert!(b.resolve_indirect(0x900, 0xAAAA).correct);
        }
    }

    #[test]
    fn polymorphic_indirect_site_mispredicts_on_change() {
        let mut b = unit();
        b.resolve_indirect(0x900, 0xAAAA);
        assert!(!b.resolve_indirect(0x900, 0xBBBB).correct);
        assert!(!b.resolve_indirect(0x900, 0xAAAA).correct); // flipped back
        assert!(b.resolve_indirect(0x900, 0xAAAA).correct);
    }

    #[test]
    fn btb_conflict_between_sites() {
        let cfg = BranchConfig {
            btb_entries: 1, // force a conflict
            ..BranchConfig::default()
        };
        let mut b = BranchUnit::new(cfg);
        b.resolve_indirect(1, 0x111);
        assert!(b.resolve_indirect(1, 0x111).correct);
        b.resolve_indirect(2, 0x222); // evicts site 1's entry
        assert!(!b.resolve_indirect(1, 0x111).correct);
    }

    #[test]
    fn stats_start_zero() {
        let b = unit();
        assert_eq!(b.conditional_stats(), (0, 0));
        assert_eq!(b.indirect_stats(), (0, 0));
    }

    #[test]
    fn link_stack_predicts_balanced_calls() {
        let mut ls = LinkStack::new(16);
        for depth in 0..8u64 {
            ls.push(0x1000 + depth * 4);
        }
        for depth in (0..8u64).rev() {
            assert!(ls.resolve_return(0x1000 + depth * 4), "depth {depth}");
        }
        assert_eq!(ls.depth(), 0);
    }

    #[test]
    fn link_stack_underflow_mispredicts() {
        let mut ls = LinkStack::new(4);
        assert!(!ls.resolve_return(0x2000));
    }

    #[test]
    fn link_stack_overflow_loses_oldest() {
        let mut ls = LinkStack::new(2);
        ls.push(1);
        ls.push(2);
        ls.push(3); // 1 falls off
        assert!(ls.resolve_return(3));
        assert!(ls.resolve_return(2));
        assert!(!ls.resolve_return(1), "oldest entry was evicted");
    }

    #[test]
    fn link_stack_mismatch_mispredicts() {
        let mut ls = LinkStack::new(4);
        ls.push(0xAAAA);
        assert!(!ls.resolve_return(0xBBBB));
        // The wrong pop still consumed the entry.
        assert_eq!(ls.depth(), 0);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_pht_rejected() {
        let _ = BranchUnit::new(BranchConfig {
            pht_entries: 1000,
            ..BranchConfig::default()
        });
    }
}
