//! Effective-address space layout and page-size mapping.
//!
//! The PowerPC architecture translates effective → virtual → real addresses;
//! what the performance model needs from that machinery is *page
//! granularity*: which page a reference touches and whether that page is a
//! standard 4 KB page or a 16 MB large page (the AIX/JVM tuning studied in
//! the paper). [`AddressMap`] carries that mapping for the whole simulated
//! system: each functional region (kernel, native libraries, JIT code cache,
//! Java heap, DB buffer pool, stacks) is a contiguous range with a page
//! size.

/// Page size of a mapped region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// Standard 4 KB page.
    #[default]
    Small4K,
    /// 16 MB large page (AIX `lgpg` support used for the Java heap).
    Large16M,
}

impl PageSize {
    /// Page size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Small4K => 4 * 1024,
            PageSize::Large16M => 16 * 1024 * 1024,
        }
    }

    /// Base address of the page containing `addr`.
    #[must_use]
    pub const fn page_base(self, addr: u64) -> u64 {
        addr & !(self.bytes() - 1)
    }
}

/// A named region of the effective address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// Operating-system kernel code and data.
    Kernel,
    /// Native code: web server, DB engine, JVM runtime, libraries.
    NativeCode,
    /// JIT-compiled Java code (the code cache).
    JitCode,
    /// The Java heap.
    JavaHeap,
    /// Database buffer pool.
    DbBufferPool,
    /// Thread stacks.
    Stacks,
    /// Message-queue buffers and miscellaneous shared data.
    MqData,
}

impl Region {
    /// All regions, in layout order.
    pub const ALL: [Region; 7] = [
        Region::Kernel,
        Region::NativeCode,
        Region::JitCode,
        Region::JavaHeap,
        Region::DbBufferPool,
        Region::Stacks,
        Region::MqData,
    ];

    /// Base effective address of the region. Regions are spaced 2^44 apart
    /// so any plausible size fits without overlap.
    #[must_use]
    pub const fn base(self) -> u64 {
        let idx = match self {
            Region::Kernel => 0,
            Region::NativeCode => 1,
            Region::JitCode => 2,
            Region::JavaHeap => 3,
            Region::DbBufferPool => 4,
            Region::Stacks => 5,
            Region::MqData => 6,
        };
        (idx as u64) << 44
    }

    /// The region containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies beyond the last region's window.
    #[must_use]
    pub fn of(addr: u64) -> Region {
        let idx = (addr >> 44) as usize;
        assert!(
            idx < Region::ALL.len(),
            "address {addr:#x} outside mapped space"
        );
        Region::ALL[idx]
    }
}

/// Page-size policy for the whole address space.
///
/// The paper's baseline uses 16 MB pages for the Java heap (and selected GC
/// structures) and 4 KB pages everywhere else; one of its proposed
/// optimizations is moving executable/JIT code to large pages as well. Both
/// switches are modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressMap {
    /// Use 16 MB pages for the Java heap (paper baseline: `true`).
    pub heap_large_pages: bool,
    /// Use 16 MB pages for JIT-compiled and native code (paper's proposed
    /// optimization: default `false`).
    pub code_large_pages: bool,
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap {
            heap_large_pages: true,
            code_large_pages: false,
        }
    }
}

impl AddressMap {
    /// Page size backing `addr`.
    #[must_use]
    pub fn page_size(&self, addr: u64) -> PageSize {
        match Region::of(addr) {
            Region::JavaHeap if self.heap_large_pages => PageSize::Large16M,
            Region::JitCode | Region::NativeCode if self.code_large_pages => PageSize::Large16M,
            _ => PageSize::Small4K,
        }
    }

    /// Base address of the page containing `addr` under this map.
    #[must_use]
    pub fn page_base(&self, addr: u64) -> u64 {
        self.page_size(addr).page_base(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_bytes() {
        assert_eq!(PageSize::Small4K.bytes(), 4096);
        assert_eq!(PageSize::Large16M.bytes(), 16 * 1024 * 1024);
    }

    #[test]
    fn page_base_masks_offset() {
        assert_eq!(PageSize::Small4K.page_base(0x1234), 0x1000);
        assert_eq!(PageSize::Large16M.page_base(0x0123_4567), 0x0100_0000);
    }

    #[test]
    fn regions_partition_the_space() {
        for r in Region::ALL {
            assert_eq!(Region::of(r.base()), r);
            assert_eq!(Region::of(r.base() + 0xFFFF_FFFF), r);
        }
    }

    #[test]
    #[should_panic(expected = "outside mapped space")]
    fn out_of_range_address_panics() {
        let _ = Region::of(u64::MAX);
    }

    #[test]
    fn default_map_matches_paper_baseline() {
        let m = AddressMap::default();
        assert_eq!(m.page_size(Region::JavaHeap.base()), PageSize::Large16M);
        assert_eq!(m.page_size(Region::JitCode.base()), PageSize::Small4K);
        assert_eq!(m.page_size(Region::Kernel.base()), PageSize::Small4K);
        assert_eq!(m.page_size(Region::DbBufferPool.base()), PageSize::Small4K);
    }

    #[test]
    fn code_large_pages_flag() {
        let m = AddressMap {
            heap_large_pages: true,
            code_large_pages: true,
        };
        assert_eq!(m.page_size(Region::JitCode.base() + 42), PageSize::Large16M);
        assert_eq!(
            m.page_size(Region::NativeCode.base() + 42),
            PageSize::Large16M
        );
        assert_eq!(m.page_size(Region::Stacks.base() + 42), PageSize::Small4K);
    }

    #[test]
    fn small_heap_pages_when_disabled() {
        let m = AddressMap {
            heap_large_pages: false,
            code_large_pages: false,
        };
        assert_eq!(
            m.page_size(Region::JavaHeap.base() + 123),
            PageSize::Small4K
        );
    }

    #[test]
    fn page_base_respects_region_policy() {
        let m = AddressMap::default();
        let heap_addr = Region::JavaHeap.base() + 0x0123_4567;
        assert_eq!(
            m.page_base(heap_addr),
            Region::JavaHeap.base() + 0x0100_0000
        );
        let stack_addr = Region::Stacks.base() + 0x1234;
        assert_eq!(m.page_base(stack_addr), Region::Stacks.base() + 0x1000);
    }
}
