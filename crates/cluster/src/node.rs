//! The node and arrival-stream abstractions the load balancer drives.
//!
//! `jas-cluster` is generic over the node implementation so the crate can
//! be unit-tested against a cheap deterministic mock; the production
//! implementation (an `Engine` in external-arrival mode) lives in the
//! `jas2004` core crate, which depends on this one.

use jas_cpu::CounterFile;
use jas_simkernel::{SimDuration, SimTime};
use jas_workload::{Metrics, RequestKind};

/// One app-server node as the load balancer sees it: an independent
/// deterministic stack that accepts dispatched arrivals, runs to epoch
/// boundaries, and exposes cumulative outcome counters plus snapshot /
/// warm-restore hooks (the PR 6 `Persist` machinery).
///
/// Every method must be thread-count- and scheduler-invariant at epoch
/// boundaries — the LB's decisions are pure functions of these values, so
/// the whole fleet inherits the single-node bit-identity guarantees.
pub trait ClusterNode {
    /// The node's simulation clock (nodes may overshoot an epoch boundary
    /// to their next quantum edge; the LB clamps dispatch times forward).
    fn now(&self) -> SimTime;

    /// Advances the node to `until` (clamped to the node's own plan end).
    fn run_to(&mut self, until: SimTime);

    /// Queues one dispatched request to arrive at `at` (clamped into the
    /// node's future by the caller).
    fn push_arrival(&mut self, at: SimTime, kind: RequestKind);

    /// Requests completed (committed) so far, cumulative.
    fn completed(&self) -> u64;

    /// Requests failed permanently so far, cumulative.
    fn errored(&self) -> u64;

    /// Requests admitted but not yet completed or failed.
    fn in_flight(&self) -> u64;

    /// Serializes the node's full mutable state. Only called when the
    /// node is quiescent (no request in flight, no arrival queued), so a
    /// restore never replays half-done work.
    fn snapshot(&mut self) -> Vec<u8>;

    /// Warm restart: resets the node to a previously captured snapshot.
    /// The node's clock rewinds to the capture instant; the caller
    /// fast-forwards with [`ClusterNode::run_to`] (cheap when idle).
    fn restore(&mut self, bytes: &[u8]);

    /// Closes the node's instrument windows at the end of the run.
    fn finish(&mut self);

    /// FNV-1a fingerprint of the node's HPM counter totals.
    fn hpm_digest(&self) -> u64;

    /// FNV-1a fingerprint of the node's trace event stream.
    fn trace_digest(&self) -> u64;

    /// FNV-1a fingerprint of the node's fault/resilience event log.
    fn fault_digest(&self) -> u64;

    /// The node's cumulative machine-wide HPM counter file.
    fn counters(&self) -> CounterFile;

    /// A copy of the node's workload metrics collector (for the fleet
    /// merge).
    fn metrics(&self) -> Metrics;
}

/// The front-end arrival process: the load balancer owns the workload's
/// inter-arrival draws in cluster mode (node engines run with external
/// arrivals only).
pub trait ArrivalStream {
    /// Draws the next arrival: gap until it occurs, and its kind.
    fn next_arrival(&mut self) -> (SimDuration, RequestKind);
}

impl ArrivalStream for jas_workload::Driver {
    fn next_arrival(&mut self) -> (SimDuration, RequestKind) {
        jas_workload::Driver::next_arrival(self)
    }
}
