//! The front-end load balancer: epoch loop, health-checked failover,
//! admission control, and fleet accounting.
//!
//! All LB decisions happen on a single sequential timeline between node
//! epochs, from inputs that are themselves thread-count- and
//! scheduler-invariant, so fleet digests inherit the engine's
//! bit-identity guarantees (DESIGN.md §13).

use crate::dispatch::DispatchPolicy;
use crate::node::{ArrivalStream, ClusterNode};
use jas_appserver::RetryPolicy;
use jas_faults::{EventKind, FaultKind, FaultLog, FaultPlan};
use jas_hpm::FleetHpm;
use jas_simkernel::snapshot::WordDigest;
use jas_simkernel::{Rng, SimDuration, SimTime};
use jas_workload::{Metrics, RequestKind, Verdict};
use std::collections::{BTreeMap, VecDeque};

/// Salt folded into the fleet RNG seed so LB fault rolls are decoupled
/// from every node-local stream (the jas-faults discipline).
const FLEET_SALT: u64 = 0x464C_4545_5430_3031; // "FLEET001"

/// Reactive autoscaler tuning: epoch-driven activation/drain of warm
/// standby nodes against JOPS-per-node and response-time-SLO thresholds.
/// All decisions happen on the LB's sequential timeline in node-index
/// order, so scaling inherits the fleet's determinism guarantees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoscaleConfig {
    /// Nodes kept in rotation at all times (the fleet starts with
    /// exactly this many active; the rest are warm standbys).
    pub min_nodes: usize,
    /// Upper bound on active nodes (must equal the fleet size).
    pub max_nodes: usize,
    /// Scale up when completions per active node per second exceed this.
    pub up_jops_per_node: f64,
    /// Scale down when completions per active node per second fall
    /// below this (and the SLO is comfortably met).
    pub down_jops_per_node: f64,
    /// Scale up when the fraction of completions breaching the response
    /// SLO exceeds this.
    pub slo_miss_fraction: f64,
    /// Response-time SLO in seconds a completion is judged against
    /// (epoch-granular upper bound: completion epoch end minus dispatch).
    pub slo_s: f64,
    /// Decision cadence in epochs.
    pub evaluate_every: u64,
    /// Epochs to wait after a scaling action before the next one.
    pub cooldown_epochs: u64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min_nodes: 1,
            max_nodes: 2,
            up_jops_per_node: 8.0,
            down_jops_per_node: 2.0,
            slo_miss_fraction: 0.10,
            slo_s: 2.0,
            evaluate_every: 4,
            cooldown_epochs: 8,
        }
    }
}

/// Load-balancer and fleet-fault tuning.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of app-server nodes behind the LB.
    pub nodes: usize,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// LB decision epoch: faults, probes, dispatch, and reconciliation
    /// happen at this granularity (nodes run freely in between).
    pub epoch: SimDuration,
    /// Health probes fire every `probe_every` epochs.
    pub probe_every: u64,
    /// Consecutive failed probes that eject a node.
    pub eject_after: u32,
    /// Consecutive successful probes that readmit an ejected node.
    pub readmit_after: u32,
    /// Delay between a crash and the warm restart from the last snapshot.
    pub restart_delay: SimDuration,
    /// Snapshot attempts fire every `snapshot_every` epochs (taken only
    /// when the node is quiescent, so restores never replay work).
    pub snapshot_every: u64,
    /// Per-node admission cap: dispatch sheds when every available node
    /// is at this many requests in flight.
    pub max_in_flight: u64,
    /// Run seed (the fleet RNG salts it).
    pub seed: u64,
    /// The fault plan; only fleet-level windows are executed here.
    pub plan: FaultPlan,
    /// Backoff policy for re-dispatching idempotent in-flight work after
    /// a crash (reused from the appserver resilience layer).
    pub retry: RetryPolicy,
    /// Reactive autoscaling; `None` keeps every node in rotation (the
    /// legacy fixed-fleet behavior, byte-identical to builds without
    /// the autoscaler).
    pub autoscale: Option<AutoscaleConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            dispatch: DispatchPolicy::default(),
            epoch: SimDuration::from_millis(256),
            probe_every: 1,
            eject_after: 3,
            readmit_after: 2,
            restart_delay: SimDuration::from_secs(2),
            snapshot_every: 8,
            max_in_flight: 64,
            seed: 0,
            plan: FaultPlan::empty(),
            retry: RetryPolicy::default(),
            autoscale: None,
        }
    }
}

/// Health of one node as the LB sees it (DESIGN.md §13 state machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Health {
    /// In rotation.
    Up,
    /// Out of rotation after `eject_after` failed probes.
    Ejected,
    /// Half-open: `k` consecutive probes have succeeded; `readmit_after`
    /// readmits.
    Probation(u32),
    /// Crash-stopped; warm restart due at the given instant.
    Crashed {
        /// When the warm restart fires.
        restart_at: SimTime,
    },
}

/// One dispatched request the LB is tracking.
#[derive(Clone, Copy, Debug)]
struct DispatchRecord {
    kind: RequestKind,
    at: SimTime,
    attempt: u32,
}

/// Per-node LB bookkeeping.
struct NodeCtl {
    health: Health,
    fail_streak: u32,
    /// Gray failure this epoch (fails probes; still serves).
    slow: bool,
    /// LB↔node link lost this epoch (no dispatch, probes fail).
    partitioned: bool,
    /// Warm standby: out of rotation by autoscaler decision. The node
    /// keeps running (and draining) — only new dispatch is withheld.
    standby: bool,
    inflight: VecDeque<DispatchRecord>,
    base_completed: u64,
    base_errored: u64,
    snapshot: Option<(Vec<u8>, SimTime)>,
}

impl NodeCtl {
    fn new() -> NodeCtl {
        NodeCtl {
            health: Health::Up,
            fail_streak: 0,
            slow: false,
            partitioned: false,
            standby: false,
            inflight: VecDeque::new(),
            base_completed: 0,
            base_errored: 0,
            snapshot: None,
        }
    }

    fn crashed(&self) -> bool {
        matches!(self.health, Health::Crashed { .. })
    }

    /// In rotation for new dispatch this epoch.
    fn available(&self) -> bool {
        self.health == Health::Up && !self.partitioned && !self.standby
    }
}

/// Cumulative fleet-level outcome counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Dispatch records created (fresh arrivals, redispatches, and each
    /// half of a cloned pair).
    pub dispatched: u64,
    /// Records that completed on their node.
    pub completions: u64,
    /// Records that failed permanently on their node.
    pub errors: u64,
    /// Non-idempotent records errored by a crash (reported to the client,
    /// never silently lost).
    pub crash_errored: u64,
    /// Idempotent records re-dispatched to survivors after a crash.
    pub redispatched: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Requests offered to the dispatcher (arrivals + due redispatches).
    pub offered: u64,
    /// Cloned pairs created under `ps-clone`.
    pub cloned: u64,
    /// Node crash-stops executed.
    pub crashes: u64,
    /// Warm restarts executed.
    pub restarts: u64,
    /// Ejections after failed probes.
    pub ejections: u64,
    /// Readmissions after half-open probing.
    pub readmissions: u64,
    /// Standby nodes brought into rotation by the autoscaler.
    pub scale_ups: u64,
    /// Active nodes drained back to warm standby by the autoscaler.
    pub scale_downs: u64,
}

impl FleetStats {
    /// Report labels, aligned with [`FleetStats::values`].
    pub const LABELS: [&'static str; 14] = [
        "dispatched",
        "completions",
        "errors",
        "crash-errored",
        "redispatched",
        "shed",
        "offered",
        "cloned",
        "crashes",
        "restarts",
        "ejections",
        "readmissions",
        "scale-ups",
        "scale-downs",
    ];

    /// Counter values, aligned with [`FleetStats::LABELS`].
    #[must_use]
    pub fn values(&self) -> [u64; 14] {
        [
            self.dispatched,
            self.completions,
            self.errors,
            self.crash_errored,
            self.redispatched,
            self.shed,
            self.offered,
            self.cloned,
            self.crashes,
            self.restarts,
            self.ejections,
            self.readmissions,
            self.scale_ups,
            self.scale_downs,
        ]
    }
}

/// The fleet's pass/fail summary: the merged SLO verdict plus the
/// failover conservation check.
#[derive(Clone, Copy, Debug)]
pub struct ClusterVerdict {
    /// The benchmark verdict over the merged per-node + LB metrics.
    pub verdict: Verdict,
    /// Dispatch records unaccounted for — dispatched minus completions,
    /// errors, crash-errored, redispatched originals, and work still in
    /// flight or awaiting redispatch at the end. Zero means no request
    /// was silently lost, the failover invariant the chaos suite pins.
    pub lost: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Shed fraction of everything offered to the dispatcher.
    pub shed_fraction: f64,
}

/// A deterministic load-balanced fleet of [`ClusterNode`]s.
pub struct Cluster<N> {
    cfg: ClusterConfig,
    nodes: Vec<N>,
    ctl: Vec<NodeCtl>,
    rng: Rng,
    clock: SimTime,
    epoch_index: u64,
    rr_cursor: usize,
    /// Redispatched work waiting for its backoff to elapse, keyed by due
    /// time in nanoseconds (BTreeMap: deterministic order).
    due_redispatch: BTreeMap<u64, Vec<(RequestKind, u32)>>,
    /// The next arrival drawn but not yet dispatched. Held on the
    /// struct (not a run-local) so [`Cluster::run`] can be called in
    /// chunks — e.g. at scenario phase boundaries — without losing or
    /// re-drawing an arrival: chunked runs are identical to one call.
    pending_arrival: Option<(SimTime, RequestKind)>,
    /// Completions observed since the last autoscale decision.
    window_completions: u64,
    /// Of those, completions whose epoch-granular latency upper bound
    /// exceeded the autoscale SLO.
    window_slo_miss: u64,
    /// Epoch of the last scaling action (cooldown anchor).
    last_scale_epoch: Option<u64>,
    log: FaultLog,
    stats: FleetStats,
    lb_metrics: Metrics,
}

impl<N: ClusterNode> Cluster<N> {
    /// Builds the LB over `nodes`. `lb_metrics` is an empty collector
    /// with the run's steady window, used for LB-assigned outcomes
    /// (crash errors) and as the base of the fleet merge. The initial
    /// quiescent snapshot of every node is captured on first entry to
    /// [`Cluster::run`], before any fault window can roll.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes` disagrees with `nodes.len()` or is zero.
    #[must_use]
    pub fn new(cfg: ClusterConfig, nodes: Vec<N>, lb_metrics: Metrics) -> Cluster<N> {
        // jas-lint: allow(D013, reason = "constructor-time config validation; runs before any request exists")
        assert_eq!(cfg.nodes, nodes.len(), "config/node-count mismatch");
        // jas-lint: allow(D013, reason = "constructor-time config validation; runs before any request exists")
        assert!(cfg.nodes > 0, "a cluster needs at least one node");
        let mut ctl: Vec<NodeCtl> = (0..nodes.len()).map(|_| NodeCtl::new()).collect();
        if let Some(a) = cfg.autoscale {
            // jas-lint: allow(D013, reason = "constructor-time config validation; runs before any request exists")
            assert!(
                a.min_nodes >= 1 && a.min_nodes <= cfg.nodes && a.max_nodes == cfg.nodes,
                "autoscale bounds must satisfy 1 <= min <= max == fleet size"
            );
            // Nodes above the floor start as warm standbys, in index
            // order; the autoscaler activates the lowest-index standby
            // first so the fleet shape is a pure function of decisions.
            for (i, c) in ctl.iter_mut().enumerate() {
                c.standby = i >= a.min_nodes;
            }
        }
        let rng = Rng::new(cfg.seed ^ FLEET_SALT);
        Cluster {
            cfg,
            nodes,
            ctl,
            rng,
            clock: SimTime::ZERO,
            epoch_index: 0,
            rr_cursor: 0,
            due_redispatch: BTreeMap::new(),
            pending_arrival: None,
            window_completions: 0,
            window_slo_miss: 0,
            last_scale_epoch: None,
            log: FaultLog::default(),
            stats: FleetStats::default(),
            lb_metrics,
        }
    }

    /// The LB clock (epoch-grid aligned).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Runs the fleet to `until`, drawing arrivals from `arrivals`.
    pub fn run(&mut self, arrivals: &mut dyn ArrivalStream, until: SimTime) {
        // The initial quiescent snapshot (every node idle at t=0) is
        // captured on first entry — before any fault window can roll —
        // so a crash ahead of the first periodic snapshot still
        // warm-restarts from a valid image.
        if self.epoch_index == 0 && self.clock == SimTime::ZERO {
            self.take_snapshots();
        }
        if self.pending_arrival.is_none() {
            let (gap, kind) = arrivals.next_arrival();
            self.pending_arrival = Some((SimTime::ZERO + gap, kind));
        }
        while self.clock < until {
            let t0 = self.clock;
            let t1 = t0 + self.cfg.epoch;
            self.roll_fleet_faults(t0);
            self.execute_restarts(t0);
            if self.epoch_index.is_multiple_of(self.cfg.probe_every.max(1)) {
                self.probe_nodes(t0);
            }
            // Due redispatches first (older work), then fresh arrivals.
            let due: Vec<u64> = self
                .due_redispatch
                .range(..t1.as_nanos())
                .map(|(k, _)| *k)
                .collect();
            for key in due {
                for (kind, attempt) in self.due_redispatch.remove(&key).unwrap_or_default() {
                    let at = SimTime::from_nanos(key).max(t0);
                    self.stats.offered += 1;
                    self.dispatch_one(at, kind, attempt);
                }
            }
            while let Some((at, kind)) = self.pending_arrival {
                if at >= t1 {
                    break;
                }
                self.stats.offered += 1;
                self.dispatch_one(at.max(t0), kind, 0);
                let (gap, kind) = arrivals.next_arrival();
                self.pending_arrival = Some((at + gap, kind));
            }
            for (node, ctl) in self.nodes.iter_mut().zip(&self.ctl) {
                if !ctl.crashed() {
                    node.run_to(t1);
                }
            }
            self.reconcile(t1);
            if self.cfg.autoscale.is_some() {
                self.autoscale_step(t1);
            }
            if self.cfg.snapshot_every > 0
                && (self.epoch_index + 1).is_multiple_of(self.cfg.snapshot_every)
            {
                self.take_snapshots();
            }
            self.clock = t1;
            self.epoch_index += 1;
        }
    }

    /// Rolls fleet fault windows for this epoch, in node-index order with
    /// a fixed per-node kind order (crash, slow, partition) so the draw
    /// sequence is deterministic. Draws happen only while a window is
    /// active: a plan without fleet windows never touches the fleet RNG.
    fn roll_fleet_faults(&mut self, t0: SimTime) {
        let crash = self.cfg.plan.active_rate(FaultKind::NodeCrash, t0);
        let slow = self.cfg.plan.active_rate(FaultKind::NodeSlow, t0);
        let partition = self.cfg.plan.active_rate(FaultKind::Partition, t0);
        let mut crashed_now = Vec::new();
        for (i, ctl) in self.ctl.iter_mut().enumerate() {
            if ctl.crashed() {
                ctl.slow = false;
                ctl.partitioned = false;
                continue;
            }
            if let Some(rate) = crash {
                if (self.rng.next_u64() >> 32) < rate {
                    crashed_now.push(i);
                }
            }
            ctl.slow = match slow {
                Some(rate) => (self.rng.next_u64() >> 32) < rate,
                None => false,
            };
            ctl.partitioned = match partition {
                Some(rate) => (self.rng.next_u64() >> 32) < rate,
                None => false,
            };
        }
        for i in crashed_now {
            self.crash_node(i, t0);
        }
    }

    /// Crash-stop node `i`: every tracked in-flight record either errors
    /// (non-idempotent — the client sees a failure, nothing is silently
    /// lost) or is re-dispatched to a survivor after a jittered backoff
    /// (idempotent). The node is frozen until its warm restart.
    fn crash_node(&mut self, i: usize, t0: SimTime) {
        self.stats.crashes += 1;
        self.log.push(t0, EventKind::Injected(FaultKind::NodeCrash));
        self.log.push(t0, EventKind::NodeCrashed { node: i as u32 });
        let records: Vec<DispatchRecord> = self.ctl[i].inflight.drain(..).collect();
        for rec in records {
            if idempotent(rec.kind) {
                self.stats.redispatched += 1;
                self.log.push(t0, EventKind::RequestRedispatched);
                // Equal-jitter exponential backoff, deterministically
                // varied per redispatch by folding the running count into
                // the seed.
                let delay = self.cfg.retry.delay(
                    self.cfg.seed.wrapping_add(self.stats.redispatched),
                    rec.attempt + 1,
                );
                let due = (t0 + delay).as_nanos();
                self.due_redispatch
                    .entry(due)
                    .or_default()
                    .push((rec.kind, rec.attempt + 1));
            } else {
                self.stats.crash_errored += 1;
                self.log.push(t0, EventKind::RequestFailed);
                self.lb_metrics.record_error(t0);
            }
        }
        self.ctl[i].health = Health::Crashed {
            restart_at: t0 + self.cfg.restart_delay,
        };
        self.ctl[i].fail_streak = 0;
        self.ctl[i].slow = false;
        self.ctl[i].partitioned = false;
    }

    /// Warm-restarts crashed nodes whose delay has elapsed: restore the
    /// last quiescent snapshot, fast-forward the (idle) node to the
    /// present, and hand it to half-open probing for readmission.
    fn execute_restarts(&mut self, t0: SimTime) {
        for i in 0..self.nodes.len() {
            let Health::Crashed { restart_at } = self.ctl[i].health else {
                continue;
            };
            if restart_at > t0 {
                continue;
            }
            let (bytes, _) = self.ctl[i]
                .snapshot
                .clone()
                .expect("initial snapshot captured at the start of the run");
            let node = &mut self.nodes[i];
            node.restore(&bytes);
            node.run_to(t0);
            self.ctl[i].base_completed = node.completed();
            self.ctl[i].base_errored = node.errored();
            self.ctl[i].health = Health::Ejected;
            self.stats.restarts += 1;
            self.log
                .push(t0, EventKind::NodeRestarted { node: i as u32 });
        }
    }

    /// One health-check round: the ejection / half-open-readmission state
    /// machine (DESIGN.md §13).
    fn probe_nodes(&mut self, t0: SimTime) {
        for (i, ctl) in self.ctl.iter_mut().enumerate() {
            if ctl.crashed() {
                continue; // probes cannot reach a crashed node
            }
            let ok = !ctl.partitioned && !ctl.slow;
            match (ctl.health, ok) {
                (Health::Up, true) => ctl.fail_streak = 0,
                (Health::Up, false) => {
                    ctl.fail_streak += 1;
                    if ctl.fail_streak >= self.cfg.eject_after {
                        ctl.health = Health::Ejected;
                        self.stats.ejections += 1;
                        self.log.push(t0, EventKind::NodeEjected { node: i as u32 });
                    }
                }
                (Health::Ejected, true) => ctl.health = Health::Probation(1),
                (Health::Ejected, false) => {}
                (Health::Probation(k), true) => {
                    if k + 1 >= self.cfg.readmit_after {
                        ctl.health = Health::Up;
                        ctl.fail_streak = 0;
                        self.stats.readmissions += 1;
                        self.log
                            .push(t0, EventKind::NodeReadmitted { node: i as u32 });
                    } else {
                        ctl.health = Health::Probation(k + 1);
                    }
                }
                (Health::Probation(_), false) => ctl.health = Health::Ejected,
                (Health::Crashed { .. }, _) => {}
            }
        }
    }

    /// Dispatches one request (or sheds it under overload).
    fn dispatch_one(&mut self, at: SimTime, kind: RequestKind, attempt: u32) {
        let cap = self.cfg.max_in_flight;
        let available: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.ctl[i].available() && self.load(i) < cap)
            .collect();
        if available.is_empty() {
            self.stats.shed += 1;
            self.log.push(at, EventKind::RequestShed);
            return;
        }
        match self.cfg.dispatch {
            DispatchPolicy::PsClone if idempotent(kind) && available.len() >= 2 => {
                // Clone to the two least-loaded nodes.
                let mut by_load = available;
                by_load.sort_by_key(|&i| (self.load(i), i));
                self.stats.cloned += 1;
                let (a, b) = (by_load[0], by_load[1]);
                self.send(a, at, kind, attempt);
                self.send(b, at, kind, attempt);
            }
            DispatchPolicy::RoundRobin => {
                let pick = available[self.rr_cursor % available.len()];
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                self.send(pick, at, kind, attempt);
            }
            DispatchPolicy::LeastConn | DispatchPolicy::PsClone => {
                let pick = available
                    .into_iter()
                    .min_by_key(|&i| (self.load(i), i))
                    .expect("non-empty");
                self.send(pick, at, kind, attempt);
            }
        }
    }

    /// A node's effective load: requests in flight plus work dispatched
    /// this epoch that the node has not admitted yet.
    fn load(&self, i: usize) -> u64 {
        self.ctl[i].inflight.len() as u64
    }

    fn send(&mut self, i: usize, at: SimTime, kind: RequestKind, attempt: u32) {
        // The node may have overshot the epoch boundary to its next
        // quantum edge; dispatch lands at its clock in that case (the
        // engine clamps admission the same way).
        let at = at.max(self.nodes[i].now());
        self.nodes[i].push_arrival(at, kind);
        self.stats.dispatched += 1;
        let rec = DispatchRecord { kind, at, attempt };
        let fifo = &mut self.ctl[i].inflight;
        let pos = fifo.partition_point(|r| r.at <= at);
        fifo.insert(pos, rec);
    }

    /// Folds each node's outcome deltas since the last epoch into the
    /// fleet accounting, retiring tracked records oldest-first. `t1` is
    /// the epoch end: each retired record's latency upper bound
    /// (`t1 - dispatch`) is judged against the autoscale SLO, so the
    /// miss fraction is epoch-granular but fully deterministic.
    fn reconcile(&mut self, t1: SimTime) {
        let slo_s = self.cfg.autoscale.map(|a| a.slo_s);
        for (node, ctl) in self.nodes.iter().zip(self.ctl.iter_mut()) {
            let dc = node.completed().saturating_sub(ctl.base_completed);
            let de = node.errored().saturating_sub(ctl.base_errored);
            ctl.base_completed = node.completed();
            ctl.base_errored = node.errored();
            for _ in 0..dc {
                debug_assert!(!ctl.inflight.is_empty(), "completion without a record");
                if let Some(rec) = ctl.inflight.pop_front() {
                    if let Some(slo) = slo_s {
                        self.window_completions += 1;
                        if t1.saturating_since(rec.at).as_secs_f64() > slo {
                            self.window_slo_miss += 1;
                        }
                    }
                }
                self.stats.completions += 1;
            }
            for _ in 0..de {
                debug_assert!(!ctl.inflight.is_empty(), "error without a record");
                ctl.inflight.pop_front();
                self.stats.errors += 1;
            }
        }
    }

    /// One autoscaler decision: every `evaluate_every` epochs, compare
    /// the window's completions-per-active-node rate and SLO-miss
    /// fraction against the thresholds and activate (lowest-index
    /// standby) or drain (highest-index active) one node, subject to
    /// the cooldown. Node choice is by index, never by RNG, so the
    /// fleet shape is a pure function of deterministic inputs.
    fn autoscale_step(&mut self, t1: SimTime) {
        let Some(a) = self.cfg.autoscale else {
            return;
        };
        let every = a.evaluate_every.max(1);
        if !(self.epoch_index + 1).is_multiple_of(every) {
            return;
        }
        let window_s = self.cfg.epoch.as_secs_f64() * every as f64;
        let active = self.active_nodes();
        let jops_per_node = if active == 0 || window_s <= 0.0 {
            0.0
        } else {
            self.window_completions as f64 / active as f64 / window_s
        };
        let miss_frac = if self.window_completions == 0 {
            0.0
        } else {
            self.window_slo_miss as f64 / self.window_completions as f64
        };
        self.window_completions = 0;
        self.window_slo_miss = 0;
        let cooled = self
            .last_scale_epoch
            .is_none_or(|e| self.epoch_index.saturating_sub(e) >= a.cooldown_epochs);
        if !cooled {
            return;
        }
        let overloaded = jops_per_node > a.up_jops_per_node || miss_frac > a.slo_miss_fraction;
        let idle = jops_per_node < a.down_jops_per_node && miss_frac <= a.slo_miss_fraction / 2.0;
        if overloaded && active < a.max_nodes {
            if let Some(i) = (0..self.ctl.len()).find(|&i| self.ctl[i].standby) {
                self.ctl[i].standby = false;
                self.stats.scale_ups += 1;
                self.last_scale_epoch = Some(self.epoch_index);
                self.log
                    .push(t1, EventKind::NodeScaledUp { node: i as u32 });
            }
        } else if idle && active > a.min_nodes {
            // Drain the highest-index active, non-crashed node; it keeps
            // running (reconciling its in-flight work) but receives no
            // new dispatch.
            if let Some(i) = (0..self.ctl.len())
                .rev()
                .find(|&i| !self.ctl[i].standby && !self.ctl[i].crashed())
            {
                self.ctl[i].standby = true;
                self.stats.scale_downs += 1;
                self.last_scale_epoch = Some(self.epoch_index);
                self.log
                    .push(t1, EventKind::NodeScaledDown { node: i as u32 });
            }
        }
    }

    /// Captures per-node snapshots where possible. Only quiescent nodes
    /// are captured (nothing in flight, nothing queued): a restore must
    /// never replay half-done work, which is also what keeps the engine's
    /// unpersisted external queue provably empty at capture.
    fn take_snapshots(&mut self) {
        for (node, ctl) in self.nodes.iter_mut().zip(self.ctl.iter_mut()) {
            if !ctl.crashed() && node.in_flight() == 0 && ctl.inflight.is_empty() {
                ctl.snapshot = Some((node.snapshot(), node.now()));
            }
        }
    }

    /// Closes instrument windows on every live node.
    pub fn finish(&mut self) {
        for (node, ctl) in self.nodes.iter_mut().zip(&self.ctl) {
            if !ctl.crashed() {
                node.finish();
            }
        }
    }

    /// Cumulative fleet outcome counters.
    #[must_use]
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// The fleet fault/resilience event log (LB-level events only; node
    /// logs are folded into [`Cluster::fault_digest`]).
    #[must_use]
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// The nodes (read-only).
    #[must_use]
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Mutable node access for in-crate tests only (production callers
    /// must not mutate nodes behind the LB's bookkeeping).
    #[cfg(test)]
    pub(crate) fn nodes_mut_for_tests(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// Nodes currently in rotation (not parked as warm standbys). With
    /// autoscaling off this is the fleet size.
    #[must_use]
    pub fn active_nodes(&self) -> usize {
        self.ctl.iter().filter(|c| !c.standby).count()
    }

    /// Records still tracked as in flight across the fleet.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.ctl.iter().map(|c| c.inflight.len() as u64).sum()
    }

    /// Redispatches still waiting for their backoff to elapse.
    #[must_use]
    pub fn pending_redispatch(&self) -> u64 {
        self.due_redispatch.values().map(|v| v.len() as u64).sum()
    }

    /// Per-node HPM counter files plus fleet aggregates.
    #[must_use]
    pub fn fleet_hpm(&self) -> FleetHpm {
        let mut fleet = FleetHpm::new(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            fleet.set_node(i, node.counters());
        }
        fleet
    }

    /// The merged fleet metrics: LB-assigned outcomes plus every node's
    /// collector.
    #[must_use]
    pub fn merged_metrics(&self) -> Metrics {
        let mut merged = self.lb_metrics.clone();
        for node in &self.nodes {
            merged.merge(&node.metrics());
        }
        merged
    }

    /// The fleet verdict: merged SLO verdict plus the conservation check.
    #[must_use]
    pub fn verdict(&self) -> ClusterVerdict {
        let s = &self.stats;
        // Every dispatch record ends in exactly one bucket — completed,
        // errored, crash-errored (non-idempotent crash), or redispatched
        // (idempotent crash; its replacement offer is a NEW record) — or
        // is still in flight. Anything else was silently lost.
        let accounted =
            s.completions + s.errors + s.crash_errored + s.redispatched + self.in_flight();
        let lost = s.dispatched.saturating_sub(accounted);
        let shed_fraction = if s.offered == 0 {
            0.0
        } else {
            s.shed as f64 / s.offered as f64
        };
        ClusterVerdict {
            verdict: self.merged_metrics().verdict(),
            lost,
            shed: s.shed,
            shed_fraction,
        }
    }

    /// Fleet HPM digest: FNV-1a fold over the per-node HPM digests in
    /// node order.
    #[must_use]
    pub fn hpm_digest(&self) -> u64 {
        fold_digests(self.nodes.iter().map(ClusterNode::hpm_digest))
    }

    /// Fleet trace digest: fold over the per-node trace digests.
    #[must_use]
    pub fn trace_digest(&self) -> u64 {
        fold_digests(self.nodes.iter().map(ClusterNode::trace_digest))
    }

    /// Fleet fault digest: fold over the per-node fault-log digests plus
    /// the LB's own fleet event log.
    #[must_use]
    pub fn fault_digest(&self) -> u64 {
        fold_digests(
            self.nodes
                .iter()
                .map(ClusterNode::fault_digest)
                .chain(std::iter::once(self.log.digest())),
        )
    }
}

/// Whether a dispatched request may be safely re-executed on another node
/// after a crash. Only the read-only catalog browse is: purchases,
/// dealership management, and RMI profile updates all commit writes.
fn idempotent(kind: RequestKind) -> bool {
    matches!(kind, RequestKind::Browse)
}

/// FNV-1a over a sequence of digests (via the `WordDigest` visitor, the
/// same mixing every other fingerprint in the stack uses).
fn fold_digests(values: impl Iterator<Item = u64>) -> u64 {
    let mut d = WordDigest::new();
    for v in values {
        d.mix(v);
    }
    d.value()
}
