//! Deterministic multi-node cluster layer (DESIGN.md §13).
//!
//! A front-end load balancer dispatches the workload's arrival stream
//! across N independent app-server nodes with pluggable policies
//! ([`DispatchPolicy`]), periodic health checks, and fleet-level fault
//! handling: crash-stopped nodes are warm-restarted from their last
//! quiescent snapshot, idempotent in-flight work is re-dispatched to
//! survivors with jittered backoff, gray-failing or partitioned nodes
//! are ejected after consecutive failed probes and readmitted through
//! half-open probing, and admission control sheds load when every node
//! is saturated.
//!
//! The crate is generic over [`ClusterNode`] so the LB logic is
//! unit-testable against a cheap mock; the production node (an engine in
//! external-arrival mode) lives in the `jas2004` core crate. All LB
//! decisions happen on one sequential timeline from scheduler-invariant
//! inputs, so fleet digests are bit-identical across `--threads` and
//! both schedulers, and a one-node fleet with no fleet faults reproduces
//! the single-node digests exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dispatch;
mod lb;
mod node;

pub use dispatch::DispatchPolicy;
pub use lb::{AutoscaleConfig, Cluster, ClusterConfig, ClusterVerdict, FleetStats};
pub use node::{ArrivalStream, ClusterNode};

#[cfg(test)]
mod tests {
    use super::*;
    use jas_cpu::{CounterFile, HpmEvent};
    use jas_faults::FaultPlan;
    use jas_simkernel::{SimDuration, SimTime};
    use jas_workload::{Metrics, RequestKind};
    use std::collections::VecDeque;

    /// A deterministic fixed-latency node: every arrival completes
    /// exactly `latency` after its arrival instant.
    struct MockNode {
        clock: SimTime,
        latency: SimDuration,
        pending: VecDeque<(SimTime, RequestKind)>,
        completed: u64,
        errored: u64,
        counters: CounterFile,
        metrics: Metrics,
    }

    impl MockNode {
        fn new(latency_ms: u64) -> MockNode {
            MockNode {
                clock: SimTime::ZERO,
                latency: SimDuration::from_millis(latency_ms),
                pending: VecDeque::new(),
                completed: 0,
                errored: 0,
                counters: CounterFile::default(),
                metrics: test_metrics(),
            }
        }
    }

    impl ClusterNode for MockNode {
        fn now(&self) -> SimTime {
            self.clock
        }

        fn run_to(&mut self, until: SimTime) {
            while let Some(&(at, kind)) = self.pending.front() {
                let done = at + self.latency;
                if done > until {
                    break;
                }
                self.pending.pop_front();
                self.completed += 1;
                self.counters.add(HpmEvent::InstCompleted, 1000);
                self.metrics.record(kind, at, done);
            }
            self.clock = until;
        }

        fn push_arrival(&mut self, at: SimTime, kind: RequestKind) {
            let pos = self.pending.partition_point(|&(t, _)| t <= at);
            self.pending.insert(pos, (at, kind));
        }

        fn completed(&self) -> u64 {
            self.completed
        }

        fn errored(&self) -> u64 {
            self.errored
        }

        fn in_flight(&self) -> u64 {
            self.pending.len() as u64
        }

        fn snapshot(&mut self) -> Vec<u8> {
            assert!(self.pending.is_empty(), "snapshot of a busy mock");
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&self.clock.as_nanos().to_le_bytes());
            bytes.extend_from_slice(&self.completed.to_le_bytes());
            bytes.extend_from_slice(&self.errored.to_le_bytes());
            bytes
        }

        fn restore(&mut self, bytes: &[u8]) {
            let word = |i: usize| {
                u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
            };
            self.clock = SimTime::from_nanos(word(0));
            self.completed = word(1);
            self.errored = word(2);
            self.pending.clear();
        }

        fn finish(&mut self) {}

        fn hpm_digest(&self) -> u64 {
            self.counters.get(HpmEvent::InstCompleted) ^ 0x5eed
        }

        fn trace_digest(&self) -> u64 {
            self.completed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        }

        fn fault_digest(&self) -> u64 {
            self.errored
        }

        fn counters(&self) -> CounterFile {
            self.counters.clone()
        }

        fn metrics(&self) -> Metrics {
            self.metrics.clone()
        }
    }

    /// Fixed-gap arrival stream of idempotent web requests.
    struct Steady {
        gap: SimDuration,
        kind: RequestKind,
    }

    impl ArrivalStream for Steady {
        fn next_arrival(&mut self) -> (SimDuration, RequestKind) {
            (self.gap, self.kind)
        }
    }

    fn test_metrics() -> Metrics {
        Metrics::new(
            SimDuration::from_secs(1),
            SimTime::ZERO,
            SimTime::from_secs(600),
        )
    }

    fn cfg(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            epoch: SimDuration::from_millis(100),
            restart_delay: SimDuration::from_millis(300),
            snapshot_every: 2,
            ..ClusterConfig::default()
        }
    }

    fn fleet(n: usize, cfg: ClusterConfig) -> Cluster<MockNode> {
        let nodes = (0..n).map(|_| MockNode::new(10)).collect();
        Cluster::new(cfg, nodes, test_metrics())
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let mut c = fleet(3, cfg(3));
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(25),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(3));
        let done: Vec<u64> = c.nodes().iter().map(|n| n.completed()).collect();
        let (lo, hi) = (done.iter().min().unwrap(), done.iter().max().unwrap());
        assert!(hi - lo <= 1, "uneven spread: {done:?}");
        assert_eq!(c.verdict().lost, 0);
    }

    #[test]
    fn least_conn_prefers_the_idle_node() {
        let mut c = fleet(
            2,
            ClusterConfig {
                dispatch: DispatchPolicy::LeastConn,
                ..cfg(2)
            },
        );
        // Make node 1 slow so its queue backs up; least-conn should then
        // favor node 0.
        c.nodes_mut_for_tests()[1].latency = SimDuration::from_millis(90);
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(20),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(4));
        let done: Vec<u64> = c.nodes().iter().map(|n| n.completed()).collect();
        assert!(done[0] > done[1], "least-conn ignored load: {done:?}");
    }

    #[test]
    fn ps_clone_duplicates_idempotent_work() {
        let mut c = fleet(
            2,
            ClusterConfig {
                dispatch: DispatchPolicy::PsClone,
                ..cfg(2)
            },
        );
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(50),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(2));
        let s = *c.stats();
        assert!(s.cloned > 0, "no pairs cloned");
        assert_eq!(s.dispatched, s.offered + s.cloned - s.shed);
        assert_eq!(c.verdict().lost, 0);
    }

    #[test]
    fn crash_storm_conserves_every_request() {
        let mut c = fleet(
            3,
            ClusterConfig {
                plan: FaultPlan::parse("node-crash@0-20:0.08").expect("parses"),
                seed: 7,
                ..cfg(3)
            },
        );
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(15),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(20));
        let s = *c.stats();
        assert!(s.crashes > 0, "storm produced no crashes");
        assert!(s.restarts > 0, "no warm restarts");
        let v = c.verdict();
        assert_eq!(v.lost, 0, "lost requests: {s:?}");
    }

    #[test]
    fn non_idempotent_crash_victims_error_out_instead_of_replaying() {
        let mut c = fleet(
            2,
            ClusterConfig {
                plan: FaultPlan::parse("node-crash@0-30:0.2").expect("parses"),
                seed: 11,
                ..cfg(2)
            },
        );
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(15),
            kind: RequestKind::Purchase,
        };
        c.run(&mut arrivals, SimTime::from_secs(30));
        let s = *c.stats();
        assert!(s.crashes > 0);
        assert!(s.crash_errored > 0, "crashes never caught work in flight");
        assert_eq!(s.redispatched, 0, "non-idempotent work must not replay");
        assert_eq!(c.verdict().lost, 0);
    }

    #[test]
    fn overload_sheds_instead_of_queueing_unboundedly() {
        let mut c = fleet(
            2,
            ClusterConfig {
                max_in_flight: 2,
                ..cfg(2)
            },
        );
        // 10ms service, 1ms arrivals, cap 2×2: heavy overload.
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(1),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(2));
        let v = c.verdict();
        assert!(v.shed > 0, "no shedding under saturation");
        assert!(v.shed_fraction > 0.0 && v.shed_fraction < 1.0);
        assert_eq!(v.lost, 0);
    }

    #[test]
    fn partition_ejects_then_halfopen_readmits() {
        let mut c = fleet(
            2,
            ClusterConfig {
                plan: FaultPlan::parse("partition@0-5:1.0").expect("parses"),
                eject_after: 2,
                readmit_after: 2,
                ..cfg(2)
            },
        );
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(40),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(12));
        let s = *c.stats();
        assert!(s.ejections >= 2, "partition never ejected: {s:?}");
        assert!(s.readmissions >= 2, "half-open never readmitted: {s:?}");
        assert_eq!(c.verdict().lost, 0);
    }

    #[test]
    fn fleet_runs_are_reproducible() {
        let run = || {
            let mut c = fleet(
                3,
                ClusterConfig {
                    plan: FaultPlan::parse(
                        "node-crash@2-10:0.05,node-slow@0-8:0.3,partition@4-9:0.2",
                    )
                    .expect("parses"),
                    seed: 42,
                    ..cfg(3)
                },
            );
            let mut arrivals = Steady {
                gap: SimDuration::from_millis(10),
                kind: RequestKind::Browse,
            };
            c.run(&mut arrivals, SimTime::from_secs(15));
            (
                *c.stats(),
                c.hpm_digest(),
                c.trace_digest(),
                c.fault_digest(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fleet_hpm_aggregates_across_nodes() {
        let mut c = fleet(2, cfg(2));
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(30),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(2));
        let fleet_hpm = c.fleet_hpm();
        let total: u64 = (0..2)
            .map(|i| fleet_hpm.node(i).get(HpmEvent::InstCompleted))
            .sum();
        assert_eq!(fleet_hpm.aggregate().get(HpmEvent::InstCompleted), total);
        assert!(total > 0);
    }

    #[test]
    fn autoscaler_scales_up_under_load_and_down_when_idle() {
        let autoscale = AutoscaleConfig {
            min_nodes: 1,
            max_nodes: 3,
            up_jops_per_node: 50.0,
            down_jops_per_node: 20.0,
            slo_miss_fraction: 0.10,
            slo_s: 10.0,
            evaluate_every: 2,
            cooldown_epochs: 2,
        };
        let mut c = fleet(
            3,
            ClusterConfig {
                autoscale: Some(autoscale),
                ..cfg(3)
            },
        );
        assert_eq!(c.active_nodes(), 1, "fleet must start at the floor");
        // Saturating load: 10ms service per node vs 2ms arrivals.
        let mut heavy = Steady {
            gap: SimDuration::from_millis(2),
            kind: RequestKind::Browse,
        };
        c.run(&mut heavy, SimTime::from_secs(5));
        assert_eq!(c.active_nodes(), 3, "overload must activate standbys");
        assert_eq!(c.stats().scale_ups, 2);
        // Near-idle load: the autoscaler should drain back to the floor.
        let mut light = Steady {
            gap: SimDuration::from_secs(1),
            kind: RequestKind::Browse,
        };
        c.run(&mut light, SimTime::from_secs(40));
        assert_eq!(c.active_nodes(), 1, "idle fleet must drain to the floor");
        let s = *c.stats();
        assert!(s.scale_downs >= 2, "{s:?}");
        // Conservation holds across every scaling action.
        assert_eq!(c.verdict().lost, 0);
        // Fleet shape reconciles with the scaling counters.
        assert_eq!(
            c.active_nodes() as u64,
            autoscale.min_nodes as u64 + s.scale_ups - s.scale_downs,
        );
    }

    #[test]
    fn standby_nodes_receive_no_dispatch() {
        let mut c = fleet(
            2,
            ClusterConfig {
                autoscale: Some(AutoscaleConfig {
                    min_nodes: 1,
                    max_nodes: 2,
                    up_jops_per_node: 1.0e9, // never scale up
                    down_jops_per_node: 0.0, // never scale down
                    ..AutoscaleConfig::default()
                }),
                ..cfg(2)
            },
        );
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(50),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(5));
        assert!(c.nodes()[0].completed() > 0);
        assert_eq!(
            c.nodes()[1].completed(),
            0,
            "standby node must stay out of rotation"
        );
        assert_eq!(c.verdict().lost, 0);
    }

    #[test]
    fn chunked_runs_match_a_single_run() {
        let build = || {
            fleet(
                3,
                ClusterConfig {
                    plan: FaultPlan::parse("node-crash@2-10:0.05,node-slow@0-8:0.3")
                        .expect("parses"),
                    seed: 42,
                    autoscale: Some(AutoscaleConfig {
                        min_nodes: 2,
                        max_nodes: 3,
                        ..AutoscaleConfig::default()
                    }),
                    ..cfg(3)
                },
            )
        };
        let outcome = |c: &Cluster<MockNode>| {
            (
                *c.stats(),
                c.hpm_digest(),
                c.trace_digest(),
                c.fault_digest(),
                c.active_nodes(),
            )
        };
        let mut single = build();
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(10),
            kind: RequestKind::Browse,
        };
        single.run(&mut arrivals, SimTime::from_secs(15));
        let mut chunked = build();
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(10),
            kind: RequestKind::Browse,
        };
        // Phase-boundary style chunking, including a boundary that is
        // not on the epoch grid.
        for until_ms in [2_500, 7_300, 12_000, 15_000] {
            chunked.run(&mut arrivals, SimTime::from_millis(until_ms));
        }
        assert_eq!(outcome(&single), outcome(&chunked));
    }

    #[test]
    fn merged_metrics_see_every_nodes_completions() {
        let mut c = fleet(2, cfg(2));
        let mut arrivals = Steady {
            gap: SimDuration::from_millis(30),
            kind: RequestKind::Browse,
        };
        c.run(&mut arrivals, SimTime::from_secs(2));
        c.finish();
        let merged = c.merged_metrics();
        assert_eq!(merged.completed(RequestKind::Browse), c.stats().completions);
    }
}
