//! Pluggable front-end dispatch policies.

/// How the load balancer picks a target node for an arriving request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through the available nodes in index order.
    #[default]
    RoundRobin,
    /// Send to the node with the fewest requests in flight (ties go to
    /// the lowest index).
    LeastConn,
    /// Processor-sharing request cloning: idempotent web requests are
    /// cloned to the two least-loaded nodes (the request-cloning model of
    /// the PAPERS.md reproducibility report); everything else falls back
    /// to least-connections.
    PsClone,
}

impl DispatchPolicy {
    /// Every policy, in CLI-listing order.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastConn,
        DispatchPolicy::PsClone,
    ];

    /// Stable CLI / report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastConn => "least-conn",
            DispatchPolicy::PsClone => "ps-clone",
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<DispatchPolicy, String> {
        DispatchPolicy::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = DispatchPolicy::ALL.iter().map(|p| p.name()).collect();
                format!(
                    "unknown dispatch policy '{s}' (expected one of {})",
                    names.join("|")
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in DispatchPolicy::ALL {
            assert_eq!(DispatchPolicy::parse(p.name()), Ok(p));
        }
        assert!(DispatchPolicy::parse("random").is_err());
    }
}
