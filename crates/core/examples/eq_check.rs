//! End-to-end equivalence check: runs the bench scenario at threads=1
//! and threads=8 and prints a digest of the observable outputs (request
//! counts, metrics, steady-state HPM counters). The two rows must match
//! each other (determinism gate), and the digest must be unchanged by
//! any exact-equivalence fast-path work (A/B across code changes).

use jas2004::{Engine, RunPlan, SutConfig};
use jas_simkernel::SimDuration;

fn main() {
    let plan = RunPlan {
        ramp_up: SimDuration::from_secs(5),
        steady: SimDuration::from_secs(15),
        hpm_period: SimDuration::from_millis(500),
        throughput_bin: SimDuration::from_secs(5),
    };
    for threads in [1usize, 8] {
        let mut cfg = SutConfig::at_ir(30);
        cfg.threads = threads;
        let mut engine = Engine::new(cfg, plan);
        engine.run_to_end();
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let digest = format!("{:?}{:?}", engine.metrics(), engine.steady_counters());
        for b in digest.as_bytes() {
            acc ^= u64::from(*b);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
        println!(
            "threads={threads} completed={} aborted={} digest={acc:016x}",
            engine.completed_requests(),
            engine.aborted_requests(),
        );
    }
}
