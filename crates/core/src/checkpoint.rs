//! The `.jckpt` checkpoint container: versioned, digested full-state
//! snapshots of a running [`Engine`].
//!
//! A checkpoint is taken at a quantum boundary and captures every piece of
//! mutable simulation state (see [`Engine::persist_state`]). Restoring
//! rebuilds an engine from the *same configuration* — config-derived
//! structures (schemas, pool capacities, distribution tables) come from
//! construction — then overlays the recorded mutable state, after which the
//! engine evolves bit-identically to the original run at any `--threads`
//! value.
//!
//! The byte layout is specified in `docs/jckpt-format.md` and pinned by a
//! format test in `crates/replay`; bump [`JCKPT_VERSION`] on any layout
//! change.

use crate::config::{RunPlan, SchedMode, SutConfig};
use crate::engine::Engine;
use jas_simkernel::snapshot::WordDigest;
use jas_simkernel::{Loader, Saver, StateIo};

/// Magic word opening a `.jckpt` stream: ASCII `"JASCKPT1"` read as a
/// big-endian integer.
pub const JCKPT_MAGIC: u64 = 0x4A41_5343_4B50_5431;

/// Container layout version. Bump on any change to the header layout *or*
/// to the engine's `persist_state` field order (the payload has no
/// per-field tags; the version is what keeps old streams from being
/// misinterpreted). Version 2 appended the event scheduler's wake heap
/// and occupancy counters to the payload. Version 3 widened the fault
/// counters for the fleet fault kinds, added the circuit breaker's
/// half-open probe spacing, and added the engine's front-end outcome
/// counters (cluster failover accounting).
pub const JCKPT_VERSION: u64 = 3;

/// Words in the container header (magic, version, fingerprint, payload
/// length).
const HEADER_WORDS: usize = 4;

/// A fingerprint of everything about a [`SutConfig`] that shapes
/// simulation results.
///
/// `threads` is normalized out (results are bit-identical at every thread
/// count, so a checkpoint from a `--threads 8` run must restore under
/// `--threads 1`), `host_prof` is normalized out (host self-profiling
/// never enters simulation state), and `sched` is normalized out (both
/// schedulers evolve the same state; a checkpoint taken under one restores
/// under the other — the event scheduler rebuilds any missing wake-ups
/// from the restored state). Everything else — seed, IR, machine, heap,
/// fault plan, trace spec — must match exactly for a restore to make
/// sense, because config-derived state is rebuilt rather than recorded.
#[must_use]
pub fn config_fingerprint(cfg: &SutConfig) -> u64 {
    let mut canon = cfg.clone();
    canon.threads = 1;
    canon.host_prof = false;
    canon.sched = SchedMode::Quantum;
    let mut digest = WordDigest::new();
    for byte in format!("{canon:?}").bytes() {
        digest.mix(u64::from(byte));
    }
    digest.value()
}

/// Serializes `engine` into a `.jckpt` byte stream.
///
/// The engine must be at a quantum boundary, which it always is between
/// [`Engine::run_to`] calls. Taking a checkpoint does not perturb the run:
/// the visitor only reads on the save path.
#[must_use]
pub fn checkpoint_bytes(engine: &mut Engine) -> Vec<u8> {
    let mut body = Saver::new();
    engine.persist_state(&mut body);
    let payload = body.into_bytes();
    debug_assert_eq!(payload.len() % 8, 0, "payload is a whole number of words");

    let mut out = Saver::new();
    let mut digest = WordDigest::new();
    let header = [
        JCKPT_MAGIC,
        JCKPT_VERSION,
        config_fingerprint(engine.config()),
        (payload.len() / 8) as u64,
    ];
    for word in header {
        let mut w = word;
        out.word(&mut w);
        digest.mix(word);
    }
    for chunk in payload.chunks_exact(8) {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let mut w = word;
        out.word(&mut w);
        digest.mix(word);
    }
    let mut trailer = digest.value();
    out.word(&mut trailer);
    out.into_bytes()
}

/// Validates a `.jckpt` stream against `cfg` and returns the raw payload
/// words as bytes.
///
/// # Errors
///
/// Fails on a bad magic word, a version mismatch, a configuration
/// fingerprint mismatch, a truncated/oversized stream, or a corrupted
/// payload (trailer digest mismatch).
pub fn validate_checkpoint(cfg: &SutConfig, bytes: &[u8]) -> Result<Vec<u8>, String> {
    if !bytes.len().is_multiple_of(8) || bytes.len() / 8 < HEADER_WORDS + 1 {
        return Err(format!(
            "not a checkpoint: {} bytes is shorter than the fixed container",
            bytes.len()
        ));
    }
    let word_at = |i: usize| {
        u64::from_le_bytes(
            bytes[i * 8..i * 8 + 8]
                .try_into()
                .expect("bounds checked above"),
        )
    };
    if word_at(0) != JCKPT_MAGIC {
        return Err(format!(
            "not a checkpoint: magic {:#018x} != {JCKPT_MAGIC:#018x}",
            word_at(0)
        ));
    }
    if word_at(1) != JCKPT_VERSION {
        return Err(format!(
            "checkpoint version {} is not the supported version {JCKPT_VERSION}",
            word_at(1)
        ));
    }
    let expected_fp = config_fingerprint(cfg);
    if word_at(2) != expected_fp {
        return Err(format!(
            "checkpoint was taken under a different configuration \
             (fingerprint {:#018x}, this config is {expected_fp:#018x}); \
             seed, IR, scenario, fault plan, and trace spec must all match",
            word_at(2)
        ));
    }
    let payload_words = word_at(3) as usize;
    let total_words = HEADER_WORDS + payload_words + 1;
    if bytes.len() / 8 != total_words {
        return Err(format!(
            "checkpoint length mismatch: header promises {total_words} words, \
             stream has {}",
            bytes.len() / 8
        ));
    }
    let mut digest = WordDigest::new();
    for i in 0..HEADER_WORDS + payload_words {
        digest.mix(word_at(i));
    }
    let trailer = word_at(HEADER_WORDS + payload_words);
    if digest.value() != trailer {
        return Err(format!(
            "checkpoint is corrupt: trailer digest {trailer:#018x} != \
             computed {:#018x}",
            digest.value()
        ));
    }
    Ok(bytes[HEADER_WORDS * 8..(HEADER_WORDS + payload_words) * 8].to_vec())
}

/// Rebuilds an engine from a `.jckpt` stream.
///
/// `cfg` and `plan` must be the ones the checkpointed run was started with
/// (modulo `threads`/`host_prof`, see [`config_fingerprint`]); the
/// fingerprint check enforces the config half of that contract.
///
/// # Errors
///
/// Fails on any [`validate_checkpoint`] error or on a payload that does
/// not decode to exactly one engine state.
pub fn restore_engine(cfg: &SutConfig, plan: RunPlan, bytes: &[u8]) -> Result<Engine, String> {
    let payload = validate_checkpoint(cfg, bytes)?;
    let mut engine = Engine::new(cfg.clone(), plan);
    let mut loader = Loader::new(&payload);
    engine.persist_state(&mut loader);
    loader
        .finish()
        .map_err(|e| format!("checkpoint payload does not match this build: {e}"))?;
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RunPlan, SutConfig};
    use jas_simkernel::SimTime;

    fn quick_cfg() -> SutConfig {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        cfg
    }

    #[test]
    fn checkpoint_round_trips() {
        let cfg = quick_cfg();
        let plan = RunPlan::quick();
        let mut engine = Engine::new(cfg.clone(), plan);
        engine.run_to(SimTime::from_millis(500));
        let before = engine.probe_digest();
        let bytes = checkpoint_bytes(&mut engine);
        let mut restored = restore_engine(&cfg, plan, &bytes).unwrap();
        assert_eq!(restored.now(), engine.now());
        assert_eq!(restored.probe_digest(), before);
    }

    #[test]
    fn restored_run_matches_uninterrupted() {
        let cfg = quick_cfg();
        let plan = RunPlan::quick();

        let mut straight = Engine::new(cfg.clone(), plan);
        straight.run_to_end();

        let mut first = Engine::new(cfg.clone(), plan);
        first.run_to(SimTime::from_millis(400));
        let bytes = checkpoint_bytes(&mut first);
        let mut resumed = restore_engine(&cfg, plan, &bytes).unwrap();
        resumed.run_to_end();

        assert_eq!(resumed.hpm_digest(), straight.hpm_digest());
        assert_eq!(resumed.probe_digest(), straight.probe_digest());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let cfg = quick_cfg();
        let plan = RunPlan::quick();
        let mut engine = Engine::new(cfg.clone(), plan);
        engine.run_to(SimTime::from_millis(100));
        let mut bytes = checkpoint_bytes(&mut engine);
        // Bump the version word (word 1) and fix nothing else up: the
        // version check must fire before the digest check.
        bytes[8] = bytes[8].wrapping_add(1);
        let err = restore_engine(&cfg, plan, &bytes).map(|_| ()).unwrap_err();
        assert!(err.contains("version"), "unexpected error: {err}");
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let cfg = quick_cfg();
        let plan = RunPlan::quick();
        let mut engine = Engine::new(cfg.clone(), plan);
        engine.run_to(SimTime::from_millis(100));
        let bytes = checkpoint_bytes(&mut engine);
        let mut other = cfg.clone();
        other.seed ^= 1;
        let err = restore_engine(&other, plan, &bytes)
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("fingerprint"), "unexpected error: {err}");
    }

    #[test]
    fn corruption_is_rejected() {
        let cfg = quick_cfg();
        let plan = RunPlan::quick();
        let mut engine = Engine::new(cfg.clone(), plan);
        engine.run_to(SimTime::from_millis(100));
        let mut bytes = checkpoint_bytes(&mut engine);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(restore_engine(&cfg, plan, &bytes).is_err());
    }

    #[test]
    fn fingerprint_normalizes_threads_host_prof_and_sched() {
        let cfg = quick_cfg();
        let mut other = cfg.clone();
        other.threads = 8;
        other.host_prof = true;
        other.sched = SchedMode::Event;
        assert_eq!(config_fingerprint(&cfg), config_fingerprint(&other));
        let mut different = cfg.clone();
        different.ir += 1;
        assert_ne!(config_fingerprint(&cfg), config_fingerprint(&different));
    }

    #[test]
    fn checkpoints_are_scheduler_portable() {
        // A checkpoint taken mid-run under one scheduler restores under
        // the other and finishes with identical digests either way.
        let plan = RunPlan::quick();
        let mut quantum_cfg = quick_cfg();
        quantum_cfg.sched = SchedMode::Quantum;
        let mut event_cfg = quick_cfg();
        event_cfg.sched = SchedMode::Event;

        let mut straight = Engine::new(quantum_cfg.clone(), plan);
        straight.run_to_end();

        let mut first = Engine::new(quantum_cfg.clone(), plan);
        first.run_to(SimTime::from_millis(400));
        let bytes = checkpoint_bytes(&mut first);

        let mut as_event = restore_engine(&event_cfg, plan, &bytes).unwrap();
        as_event.run_to_end();
        assert_eq!(as_event.hpm_digest(), straight.hpm_digest());

        let mut event_first = Engine::new(event_cfg.clone(), plan);
        event_first.run_to(SimTime::from_millis(400));
        let event_bytes = checkpoint_bytes(&mut event_first);
        let mut as_quantum = restore_engine(&quantum_cfg, plan, &event_bytes).unwrap();
        as_quantum.run_to_end();
        assert_eq!(as_quantum.hpm_digest(), straight.hpm_digest());
    }
}
