//! The execution engine: couples the workload, application server, JVM,
//! database, and CPU model on a shared simulated timeline.
//!
//! Time advances in fixed scheduler quanta. Each quantum, every core runs
//! either the garbage collector (stop-the-world), a request task's current
//! plan step, background JIT compilation, or idles. Compute steps are
//! executed as real micro-op streams on the machine model, so transaction
//! service time feeds back from achieved IPC: more cache misses → higher
//! CPI → longer service → deeper queues → higher response times. This
//! closed loop is what lets one simulation regenerate every figure of the
//! paper at once.
//!
//! # Deterministic parallel execution
//!
//! Within a quantum the engine repeats a two-phase round protocol:
//!
//! 1. **Plan (sequential).** In fixed core order, the scheduler assigns at
//!    most one execution slice per core: the next compute segment of a
//!    request task, or background JIT. Plan-step side effects (database
//!    calls, allocations, locks) happen here, on one thread.
//! 2. **Execute (parallel).** Each assigned slice runs its micro-op stream
//!    against strictly core-private state ([`jas_cpu::CorePrivate`]): L1
//!    caches, ERAT/TLB, branch predictors, prefetcher, HPM counters.
//!    Shared-hierarchy traffic is recorded into a per-core ordered
//!    [`MemEvent`] buffer and provisionally charged an L2-hit latency.
//!    Slices share no mutable state, so they run on worker threads when
//!    `--threads` > 1 — or inline, through the identical code path, when
//!    it is 1.
//! 3. **Reconcile (sequential).** In fixed core order, each core's event
//!    buffer is drained through the shared L2/L3/MESI model
//!    ([`jas_cpu::reconcile_core`]), charging the latency difference
//!    between the provisional L2 hit and the true supplier back to the
//!    core's budget. Task bookkeeping (step advancement, blocking,
//!    completion) follows, again in core order.
//!
//! Because phase 2 touches no shared state and phases 1 and 3 are
//! single-threaded in a fixed order, the simulation result is
//! **bit-identical for every `--threads` value** — parallelism changes
//! wall-clock time only. Stop-the-world GC runs sequentially (it is a
//! global pause by definition).

use crate::config::{RunPlan, ScenarioKind, SchedMode, SutConfig};
use crate::profiles::{profile_for, FootprintConfig};
use jas_appserver::{
    Admission, AppServer, BreakerState, CircuitBreaker, Message, PlanStep, PoolKind, QueueId,
    TxPlan,
};
use jas_cpu::{AddressMap, CorePrivate, CostModel, HpmEvent, Machine, MemEvent, StreamGen};
use jas_db::{Database, DbError, DbFault, Query};
use jas_faults::{EventKind, FaultCounters, FaultInjector, FaultKind, FaultLog};
use jas_hpm::{
    CpuState, FaultMonitor, GcLogEntry, OmniscientHpm, SchedStats, Tprof, VerboseGc, Vmstat,
};
use jas_jvm::{Component, GcCycle, Jvm, LockOutcome, MethodId, TxHandle};
use jas_simkernel::snapshot::{self as snap, Persist, StateIo, WordDigest};
use jas_simkernel::{ComponentId, Rng, SimDuration, SimTime, WakeHeap};
use jas_trace::{HostProf, HostProfReport, HostSection, TraceEventKind, Tracer};
use jas_workload::{
    JasScenario, Metrics, ReplayLog, ReplayScenario, RequestKind, Scenario, TradeScenario,
};
use std::collections::VecDeque;
use std::sync::mpsc;

fn comp_index(c: Component) -> usize {
    Component::ALL
        .iter()
        .position(|&x| x == c)
        .expect("component is in ALL")
}

/// Per-component GC work-cost constants (full-scale instructions), chosen
/// so a ~200 MB live set marks in the paper's 300–400 ms band.
const MARK_INSTR_PER_OBJECT: f64 = 255.0;
const MARK_INSTR_PER_EDGE: f64 = 56.0;
const MARK_INSTR_PER_BYTE: f64 = 0.32;
const SWEEP_INSTR_PER_OBJECT: f64 = 14.0;
const SWEEP_INSTR_PER_BYTE: f64 = 0.06;
const COMPACT_INSTR_PER_BYTE: f64 = 1.0;

/// Wake-heap component ids (the deterministic tie-breaker for wake-ups
/// sharing a tick — see the registration contract in DESIGN.md §12): the
/// arrival stream, then the HPM-period sampler, then two slots per fault
/// window (start/end edges), then one slot per task. A running GC registers
/// nothing: an active pause already pins the engine non-idle.
const WAKE_ARRIVAL: ComponentId = 0;
const WAKE_SAMPLER: ComponentId = 1;
const WAKE_FAULT_BASE: ComponentId = 16;
const WAKE_TASK_BASE: ComponentId = 1024;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    Ready,
    BlockedUntil(SimTime),
    WaitingPool,
    Done,
}

#[derive(Debug)]
struct Task {
    kind: RequestKind,
    plan: TxPlan,
    step: usize,
    remaining_modeled: f64,
    extra: VecDeque<(Component, f64)>,
    issued: SimTime,
    jvm_tx: Option<TxHandle>,
    pool: Option<PoolKind>,
    state: TaskState,
    /// Whether the current `BlockedUntil` wait is a disk I/O (drives the
    /// vmstat I/O-wait classification).
    io_blocked: bool,
    /// Quantum stamp preventing one task from running on two cores within
    /// the same quantum.
    last_run_quantum: u64,
    /// Failed attempts of the current statement (resets on success; only
    /// touched when the fault plan is armed).
    attempts: u32,
    /// Absolute per-request deadline, when the fault config sets one.
    deadline: Option<SimTime>,
    /// The consumed-but-uncommitted work-order message: on permanent
    /// failure it goes back to its queue (redelivery) or the dead-letter
    /// queue.
    mq_msg: Option<(QueueId, Message)>,
}

struct GcPause {
    remaining_modeled: f64,
    mark_fraction: f64,
    start: SimTime,
    cycle: GcCycle,
}

/// What an execution slice is working on (resolved again at bookkeeping).
#[derive(Clone, Copy, Debug)]
enum SliceKind {
    /// A request task's current compute segment.
    Task(usize),
    /// Background JIT compilation.
    Jit,
}

/// One core's assignment for a round: everything the parallel phase needs,
/// *owned* — core-private machine state, the core's stream generators, and
/// its event buffer all move into the job and come back in the result, so
/// workers borrow nothing from the engine.
struct Slice {
    core: usize,
    kind: SliceKind,
    component: Component,
    cp: CorePrivate,
    gens: Vec<StreamGen>,
    events: Vec<MemEvent>,
    cycles_budget: f64,
    max_instr: f64,
    cost: CostModel,
    addr_map: AddressMap,
}

/// A completed slice: the returned state plus what it consumed.
struct SliceDone {
    core: usize,
    kind: SliceKind,
    component: Component,
    cp: CorePrivate,
    gens: Vec<StreamGen>,
    events: Vec<MemEvent>,
    used: f64,
    executed: f64,
}

/// Runs one slice to its budget or instruction bound against core-private
/// state only. This is the *entire* parallel phase: the same function runs
/// inline at `--threads 1` and on workers otherwise, so results cannot
/// depend on the thread count.
fn run_slice(mut s: Slice) -> SliceDone {
    let gen = &mut s.gens[comp_index(s.component)];
    let mut used = 0.0;
    let mut executed: u64 = 0;
    // Drain the generator's buffered blocks directly; the closure's return
    // value reproduces the former `while used < budget && executed < max`
    // pre-check (the initial check is the `if` guard, with `used == 0`).
    if s.cycles_budget > 0.0 && s.max_instr > 0.0 {
        let cp = &mut s.cp;
        let events = &mut s.events;
        let cost = s.cost;
        let addr_map = s.addr_map;
        let budget = s.cycles_budget;
        // For an integer count `k`, `k < max` ⟺ `k < ceil(max)` (no integer
        // lies in `[max, ceil(max))`), so the former f64 instruction-count
        // compare becomes an integer one. The saturating `as u64` cast keeps
        // the equivalence for out-of-range ceilings (the compare is then
        // always true, as with the unbounded f64).
        let max_instr = s.max_instr.ceil() as u64;
        gen.drive(|ia, op| {
            used += cp.exec_record(&cost, addr_map, ia, op, events);
            executed += 1;
            used < budget && executed < max_instr
        });
    }
    SliceDone {
        core: s.core,
        kind: s.kind,
        component: s.component,
        cp: s.cp,
        gens: s.gens,
        events: s.events,
        used,
        // Exact: slice instruction counts are far below 2^53.
        executed: executed as f64,
    }
}

/// The coupled system-under-test simulation.
pub struct Engine {
    cfg: SutConfig,
    run: RunPlan,
    machine: Machine,
    jvm: Jvm,
    db: Database,
    appserver: AppServer,
    scenario: Box<dyn Scenario>,
    rng: Rng,
    clock: SimTime,
    next_arrival: (SimTime, RequestKind),
    /// External-arrival mode (cluster dispatch): when `Some`, the engine
    /// never draws arrivals from its scenario. The queue holds
    /// LB-dispatched requests sorted by arrival time and `next_arrival`
    /// mirrors its front ([`Engine::NO_ARRIVAL`] when empty), so the idle
    /// predicate and wake registration work unchanged. `None` keeps the
    /// byte-identical legacy single-node path.
    external: Option<VecDeque<(SimTime, RequestKind)>>,
    tasks: Vec<Task>,
    /// Per-core ready queues: tasks have core affinity (idx % cores) so
    /// their hot cache state stays on one L1; idle cores steal.
    ready: Vec<VecDeque<usize>>,
    pending_workorders: u64,
    gc: Option<GcPause>,
    jit_backlog_modeled: f64,
    /// One generator per `(core, component)` pair, row-per-core so a whole
    /// row can move into that core's execution slice. Cores carry distinct
    /// salts so their thread-local data does not falsely share.
    gens: Vec<Vec<StreamGen>>,
    /// Per-core ordered buffers of recorded shared-hierarchy events,
    /// retained across rounds to avoid reallocation.
    event_bufs: Vec<Vec<MemEvent>>,
    method_cdf: Vec<(Vec<MethodId>, Vec<f64>)>,
    correlation_seq: u64,
    outstanding_io: u32,
    quantum_counter: u64,
    steady_base: Option<jas_cpu::CounterFile>,
    // Instruments.
    hpm: OmniscientHpm,
    tprof: Tprof,
    vmstat: Vmstat,
    vgc: VerboseGc,
    metrics: Metrics,
    completed_requests: u64,
    aborted_requests: u64,
    /// Like `completed_requests`/`aborted_requests` but excluding the
    /// internally spawned work-order follow-ups: outcomes of exactly the
    /// requests a front-end (the cluster LB) handed to this node.
    frontend_completed: u64,
    frontend_aborted: u64,
    // Fault injection + resilience (inert when the plan is empty).
    injector: FaultInjector,
    breaker: CircuitBreaker,
    faultmon: FaultMonitor,
    /// Cached `injector.armed()`: gates every resilience path so a healthy
    /// run takes the byte-identical legacy code.
    faults_active: bool,
    // Request tracing + host self-profiling (inert when disabled).
    tracer: Tracer,
    /// Cached `tracer.active()`: gates every emission site so an untraced
    /// run takes the byte-identical legacy code (jas-faults discipline).
    trace_active: bool,
    /// Host scoped timers (`--host-prof`); wall-clock readings stay here
    /// and never feed back into simulation state.
    hostprof: Option<HostProf>,
    /// When recording, every arrival and compiled plan lands here so the
    /// run can later be replayed without the load generator.
    recorder: Option<ReplayLog>,
    /// Cached `cfg.sched == SchedMode::Event`: gates wake-up registration
    /// so the quantum scheduler takes the byte-identical legacy code
    /// (jas-faults discipline).
    sched_event: bool,
    /// The event scheduler's wake-up heap (empty under `--sched quantum`).
    wakes: WakeHeap,
    /// Scheduler-occupancy counters (`--figure sched`).
    sched_stats: SchedStats,
}

impl Engine {
    /// Builds the system under test and its instruments.
    #[must_use]
    pub fn new(cfg: SutConfig, run: RunPlan) -> Self {
        let mut rng = Rng::new(cfg.seed);
        let machine = Machine::new(cfg.machine.clone());
        let jvm = Jvm::new(cfg.jvm);
        let mut db = Database::new(cfg.db);
        let scenario: Box<dyn Scenario> = match cfg.scenario {
            ScenarioKind::JAppServer => Box::new(JasScenario::with_curve(
                &mut db,
                cfg.ir,
                cfg.seed,
                cfg.curve.clone(),
            )),
            ScenarioKind::TradeLike => Box::new(TradeScenario::with_curve(
                &mut db,
                cfg.ir,
                cfg.seed,
                cfg.curve.clone(),
            )),
        };
        let appserver = AppServer::new(cfg.appserver);
        let fp = FootprintConfig {
            heap_bytes: cfg.jvm.heap.capacity,
            jit_code_bytes: 10 << 20,
            buffer_pool_bytes: cfg.db.pool_pages as u64 * cfg.db.page_bytes,
        };
        let cores = cfg.machine.topology.cores();
        // Fork order is component-major (stable across layout changes);
        // storage is row-per-core so a core's whole generator row can move
        // into its execution slice.
        let mut gens: Vec<Vec<StreamGen>> = (0..cores).map(|_| Vec::new()).collect();
        for &c in Component::ALL.iter() {
            for (core, row) in gens.iter_mut().enumerate() {
                row.push(StreamGen::new(
                    profile_for(c, &fp),
                    rng.fork(&format!("{}/{core}", c.name())),
                    core as u64 + 1,
                ));
            }
        }
        let method_cdf = Component::ALL
            .iter()
            .map(|&c| {
                let ids = jvm.registry().of_component(c);
                let mut acc = 0.0;
                let cdf = ids
                    .iter()
                    .map(|&id| {
                        acc += jvm.registry().get(id).weight;
                        acc
                    })
                    .collect();
                (ids, cdf)
            })
            .collect();
        let steady_start = run.steady_start();
        let end = run.end();
        let hpm = OmniscientHpm::new(run.hpm_period);
        let metrics = Metrics::new(run.throughput_bin, steady_start, end);
        // The injector's RNG is seeded independently of the master stream
        // (salted inside FaultInjector), so arming a plan never shifts the
        // healthy workload draws.
        let injector = FaultInjector::new(cfg.seed, cfg.faults.plan.clone());
        let faults_active = injector.armed();
        let breaker = CircuitBreaker::new(cfg.faults.breaker);
        let faultmon = FaultMonitor::new(run.hpm_period);
        let tracer = Tracer::new(cfg.trace, cores);
        let trace_active = tracer.active();
        let hostprof = cfg.host_prof.then(HostProf::new);
        let sched_event = cfg.sched == SchedMode::Event;
        let mut engine = Engine {
            cfg,
            run,
            machine,
            jvm,
            db,
            appserver,
            scenario,
            rng,
            clock: SimTime::ZERO,
            next_arrival: (SimTime::ZERO, RequestKind::Browse),
            external: None,
            tasks: Vec::new(),
            ready: vec![VecDeque::new(); cores],
            pending_workorders: 0,
            gc: None,
            jit_backlog_modeled: 0.0,
            gens,
            event_bufs: vec![Vec::new(); cores],
            method_cdf,
            correlation_seq: 0,
            outstanding_io: 0,
            quantum_counter: 0,
            steady_base: None,
            hpm,
            tprof: Tprof::new(),
            vmstat: Vmstat::new(steady_start),
            vgc: VerboseGc::new(),
            metrics,
            completed_requests: 0,
            aborted_requests: 0,
            frontend_completed: 0,
            frontend_aborted: 0,
            injector,
            breaker,
            faultmon,
            faults_active,
            tracer,
            trace_active,
            hostprof,
            recorder: None,
            sched_event,
            wakes: WakeHeap::new(),
            sched_stats: SchedStats::default(),
        };
        // Pre-warm the session store so the live set starts near its
        // steady-state target (the paper measures after a long warm-up; a
        // cold live set would make used-heap growth reflect session ramp
        // rather than dark matter).
        let target = engine.cfg.jvm.live_target * 4 / 5;
        let mut warm_rng = engine.rng.fork("session-warmup");
        while engine.jvm.heap().live_bytes() < target {
            engine.jvm.touch_session(&mut warm_rng);
        }
        engine.jvm.take_gc_cycles(); // warm-up GCs are discarded, not measured
        let (gap, kind) = engine.scenario.next_arrival();
        engine.next_arrival = (SimTime::ZERO + gap, kind);
        if engine.sched_event {
            engine.rebuild_wakes();
        }
        engine
    }

    /// The simulation clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Runs the whole configured plan (ramp-up + steady state).
    pub fn run_to_end(&mut self) {
        let end = self.run.end();
        self.advance_to(end);
        self.hpm.finish(end);
        if self.faults_active {
            self.faultmon.finish(end);
        }
    }

    /// Advances to `until` under the configured scheduler. The quantum
    /// scheduler executes every quantum; the event scheduler consults the
    /// wake heap and fast-forwards over provably idle quanta, replicating
    /// their observable per-quantum effects exactly (DESIGN.md §12), so
    /// both produce bit-identical simulation state at every boundary.
    fn advance_to(&mut self, until: SimTime) {
        if !self.sched_event {
            while self.clock < until {
                self.step_quantum();
            }
            return;
        }
        let q = self.cfg.quantum.as_nanos().max(1);
        // Quanta [quantum_counter, limit) remain: quantum `n` spans
        // `[n*q, (n+1)*q)`, and `clock = quantum_counter * q` holds at
        // every boundary, so `clock < until` ⟺ `quantum_counter < limit`.
        let limit = until.as_nanos().div_ceil(q);
        while self.quantum_counter < limit {
            self.register_standing_wakes();
            if self.quantum_is_idle() {
                let wake = self.wakes.next_wake().unwrap_or(limit).min(limit);
                if wake > self.quantum_counter {
                    self.skip_idle_quanta(wake - self.quantum_counter);
                    continue;
                }
            }
            self.step_quantum();
            self.sched_stats.quanta_executed += 1;
            self.sched_stats.events_dispatched += self.wakes.take_due(self.quantum_counter - 1);
        }
    }

    /// The quantum index whose *start* clock first reaches `at` — the
    /// quantum that must execute for a `BlockedUntil(at)` unblock check
    /// (`at <= clock`, evaluated at the quantum start) to see the event.
    fn wake_tick_at_start(&self, at: SimTime) -> u64 {
        at.as_nanos().div_ceil(self.cfg.quantum.as_nanos().max(1))
    }

    /// Registers the standing wake-ups that always exist: the next
    /// workload arrival (admitted when it falls *before* a quantum's end,
    /// hence the floor) and the quantum crossing the next HPM-period
    /// boundary (which must execute so the periodic vmstat row and
    /// `HpmSample` trace event land at their exact timestamps). Both are
    /// re-registered — a no-op when unchanged — every scheduler decision.
    fn register_standing_wakes(&mut self) {
        let q = self.cfg.quantum.as_nanos().max(1);
        self.wakes
            .register(WAKE_ARRIVAL, self.next_arrival.0.as_nanos() / q);
        let period = self.run.hpm_period.as_nanos().max(1);
        let boundary = (self.clock.as_nanos() / period + 1) * period;
        // The quantum whose end first reaches the boundary: every skipped
        // quantum ends strictly before it, so skipped idle time stays in
        // the vmstat interval that closes at the boundary.
        self.wakes.register(WAKE_SAMPLER, (boundary - 1) / q);
    }

    /// (Re-)registers every wake-up derivable from current state: the
    /// standing pair, the static fault-window edges, and each blocked
    /// task. Called at construction and after a checkpoint restore;
    /// registrations agreeing with an already-populated heap are no-ops,
    /// and a checkpoint taken under the quantum scheduler (whose heap is
    /// empty) gets its wake-ups rebuilt from scratch here.
    fn rebuild_wakes(&mut self) {
        self.register_standing_wakes();
        for (w, window) in self.cfg.faults.plan.windows().iter().enumerate() {
            let comp = WAKE_FAULT_BASE + 2 * w as u64;
            let start = self.wake_tick_at_start(window.start);
            let end = self.wake_tick_at_start(window.end);
            self.wakes.register(comp, start);
            self.wakes.register(comp + 1, end);
        }
        for i in 0..self.tasks.len() {
            if let TaskState::BlockedUntil(at) = self.tasks[i].state {
                let tick = self.wake_tick_at_start(at);
                self.wakes.register(WAKE_TASK_BASE + i as u64, tick);
            }
        }
    }

    /// Whether executing the next quantum would change nothing beyond the
    /// per-quantum accounting the skip path replicates: no GC pause, no
    /// JIT backlog, no runnable or due-to-unblock task, no arrival due,
    /// and — under an armed fault plan — no state-changing fault activity
    /// at this boundary. Spurious `false` costs only host time; the wake
    /// heap exists so `true` stretches are skipped in one step.
    fn quantum_is_idle(&self) -> bool {
        if self.gc.is_some()
            || self.jit_backlog_modeled > 1.0
            || self.ready.iter().any(|r| !r.is_empty())
            || self.next_arrival.0 < self.clock + self.cfg.quantum
        {
            return false;
        }
        if self
            .tasks
            .iter()
            .any(|t| matches!(t.state, TaskState::BlockedUntil(at) if at <= self.clock))
        {
            return false;
        }
        if self.faults_active {
            // A GC-storm roll draws from the injector RNG whenever its
            // window is active, and a seize-level change mutates pool
            // state; either forces the quantum to execute. Window
            // activity is constant over any skipped range because the
            // window edges are registered wake-ups.
            let plan = self.injector.plan();
            if plan.active_rate(FaultKind::GcStorm, self.clock).is_some() {
                return false;
            }
            let capacity = self.cfg.appserver.web_threads;
            if self.injector.seize_level(self.clock, capacity)
                != self.appserver.seized(PoolKind::WebContainer)
            {
                return false;
            }
        }
        true
    }

    /// Fast-forwards over `k` provably idle quanta, replicating exactly
    /// what executing each of them would have done: the clock and quantum
    /// counter advance, traced runs stage-and-merge one zero-cycle
    /// `CoreQuantum` per core per quantum, steady-state quanta account a
    /// full idle (or I/O-wait) quantum per core, and the steady-state
    /// counter snapshot is taken if its boundary was crossed. Everything
    /// else — HPM counters, RNG streams, every subsystem — is untouched,
    /// which is precisely what [`Engine::quantum_is_idle`] guarantees.
    // jas-lint: allow(D012, reason = "this is the idle fast-forward itself; it advances the clock to the pre-computed wake tick")
    fn skip_idle_quanta(&mut self, k: u64) {
        let quantum = self.cfg.quantum;
        let cores = self.cfg.machine.topology.cores();
        if self.trace_active {
            let mut at = self.clock;
            for _ in 0..k {
                for core in 0..cores {
                    self.tracer.stage(
                        core,
                        at,
                        core as u64,
                        TraceEventKind::CoreQuantum { cycles: 0 },
                    );
                }
                self.tracer.merge_staged();
                at += quantum;
            }
        }
        // Idle accounting batches into one call per state: the spans are
        // integer nanoseconds, so the sum is exact and order-free.
        let steady_start = self.run.steady_start();
        let first_steady = self
            .quantum_counter
            .max(self.wake_tick_at_start(steady_start));
        let k_steady = (self.quantum_counter + k).saturating_sub(first_steady);
        if k_steady > 0 {
            let span = quantum * (k_steady * cores as u64);
            if self.outstanding_io > 0 {
                self.vmstat.account(CpuState::IoWait, span);
            } else {
                self.vmstat.account(CpuState::Idle, span);
            }
        }
        self.quantum_counter += k;
        self.clock += quantum * k;
        if self.steady_base.is_none() && self.clock >= steady_start {
            // Counters did not move inside the batch, so snapshotting at
            // the batch end equals the executed path's snapshot at the
            // first steady quantum boundary.
            self.steady_base = Some(self.machine.total_counters());
        }
        self.sched_stats.idle_ticks_skipped += k;
        if let Some(hp) = self.hostprof.as_mut() {
            for _ in 0..k {
                hp.note_quantum();
            }
        }
    }

    /// Blocks `task_idx` until `until`, registering the task's wake-up
    /// with the event scheduler (heap-free under the quantum scheduler).
    fn block_until(&mut self, task_idx: usize, until: SimTime) {
        self.tasks[task_idx].state = TaskState::BlockedUntil(until);
        if self.sched_event {
            let tick = self.wake_tick_at_start(until);
            self.wakes.register(WAKE_TASK_BASE + task_idx as u64, tick);
        }
    }

    /// Enqueues a task on its affinity core's ready queue.
    // jas-lint: allow(D012, reason = "a non-empty ready queue makes the predicate false immediately at the next quantum check")
    fn enqueue(&mut self, task_idx: usize) {
        let core = task_idx % self.ready.len();
        self.ready[core].push_back(task_idx);
    }

    /// Pops the next task for `core`: own queue first, else steal from the
    /// deepest other queue.
    // jas-lint: allow(D012, reason = "removing ready work only moves toward idle; nothing future is stranded")
    fn dequeue_for(&mut self, core: usize) -> Option<usize> {
        if let Some(t) = self.ready[core].pop_front() {
            return Some(t);
        }
        let victim = (0..self.ready.len())
            .filter(|&q| q != core)
            .max_by_key(|&q| self.ready[q].len())?;
        self.ready[victim].pop_front()
    }

    fn sample_method(&mut self, component: Component) -> Option<MethodId> {
        let (ids, cdf) = &self.method_cdf[comp_index(component)];
        let total = *cdf.last()?;
        if total <= 0.0 {
            return None;
        }
        let x = self.rng.next_f64() * total;
        let i = cdf.partition_point(|&c| c < x).min(ids.len() - 1);
        Some(ids[i])
    }

    /// Opens a host-profiler scope for `section` (no-op when profiling is
    /// off; closes any scope already open).
    fn prof(&mut self, section: HostSection) {
        if let Some(hp) = self.hostprof.as_mut() {
            hp.begin(section);
        }
    }

    /// Closes the open host-profiler scope, if any.
    fn prof_end(&mut self) {
        if let Some(hp) = self.hostprof.as_mut() {
            hp.end();
        }
    }

    /// Advances exactly one scheduler quantum.
    pub fn step_quantum(&mut self) {
        let quantum = self.cfg.quantum;
        let quantum_end = self.clock + quantum;
        self.prof(HostSection::Schedule);

        // 0. Apply quantum-granular faults (pool seizures, GC storms) at
        // the boundary, sequentially: the decisions are thread-invariant.
        if self.faults_active {
            self.apply_quantum_faults();
        }

        // 1. Admit arrivals due in this quantum. In external-arrival mode
        // (cluster dispatch) the queue replaces the scenario's generator;
        // otherwise this is the byte-identical legacy draw loop.
        if self.external.is_some() {
            while self.next_arrival.0 < quantum_end {
                let (at, kind) = self.next_arrival;
                self.admit(kind, at.max(self.clock));
                let queue = self.external.as_mut().expect("external mode");
                queue.pop_front();
                self.next_arrival = queue
                    .front()
                    .copied()
                    .unwrap_or((Engine::NO_ARRIVAL, RequestKind::Browse));
            }
        } else {
            while self.next_arrival.0 < quantum_end {
                let (at, kind) = self.next_arrival;
                self.admit(kind, at.max(self.clock));
                let (gap, next_kind) = self.scenario.next_arrival();
                if let Some(log) = self.recorder.as_mut() {
                    log.arrivals.push((gap, next_kind));
                }
                self.next_arrival = (self.next_arrival.0 + gap, next_kind);
            }
        }

        // 2. Unblock tasks whose waits expired.
        for i in 0..self.tasks.len() {
            if let TaskState::BlockedUntil(t) = self.tasks[i].state {
                if t <= self.clock {
                    self.tasks[i].state = TaskState::Ready;
                    if self.tasks[i].io_blocked {
                        self.tasks[i].io_blocked = false;
                        self.outstanding_io = self.outstanding_io.saturating_sub(1);
                    }
                    self.enqueue(i);
                }
            }
        }

        // 3. Run the cores through plan/execute/reconcile rounds, on worker
        // threads when configured (results are identical either way; see
        // the module docs).
        let workers = self.exec_threads();
        if workers > 1 {
            std::thread::scope(|scope| {
                let (done_tx, done_rx) = mpsc::channel::<SliceDone>();
                let mut slice_txs = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let (tx, rx) = mpsc::channel::<Slice>();
                    let done_tx = done_tx.clone();
                    scope.spawn(move || {
                        while let Ok(slice) = rx.recv() {
                            if done_tx.send(run_slice(slice)).is_err() {
                                break;
                            }
                        }
                    });
                    slice_txs.push(tx);
                }
                drop(done_tx);
                let mut dispatch = |slices: Vec<Slice>| -> Vec<SliceDone> {
                    let n = slices.len();
                    for s in slices {
                        // Static core→worker assignment; arrival order of
                        // results is irrelevant (they are re-indexed by
                        // core before the sequential reconcile).
                        slice_txs[s.core % workers].send(s).expect("worker alive");
                    }
                    (0..n)
                        .map(|_| done_rx.recv().expect("worker result"))
                        .collect()
                };
                self.run_rounds(&mut dispatch);
                // Dropping slice_txs at scope exit terminates the workers.
            });
        } else {
            let mut dispatch =
                |slices: Vec<Slice>| slices.into_iter().map(run_slice).collect::<Vec<_>>();
            self.run_rounds(&mut dispatch);
        }

        // 4. Advance the clock and feed the samplers.
        self.prof(HostSection::Instruments);
        // Did this quantum cross an HPM sampling-period boundary? Computed
        // from integer nanosecond arithmetic so it is trivially
        // thread-invariant; drives the periodic vmstat row and the
        // `HpmSample` trace event at the same cadence the HPM uses.
        let crossed_hpm_period = {
            let period = self.run.hpm_period.as_nanos().max(1);
            self.clock.as_nanos() / period != quantum_end.as_nanos() / period
        };
        self.clock = quantum_end;
        self.quantum_counter += 1;
        let totals = self.machine.total_counters();
        self.hpm.observe(self.clock, &totals);
        if crossed_hpm_period && self.clock >= self.run.steady_start() {
            self.vmstat.sample(self.clock);
        }
        if self.trace_active {
            // Per-core staged events (quantum boundaries) merge here, in
            // the sequential phase, in fixed core order.
            self.tracer.merge_staged();
            if crossed_hpm_period {
                self.tracer.emit(
                    self.clock,
                    0,
                    TraceEventKind::HpmSample {
                        instructions: totals.get(HpmEvent::InstCompleted),
                    },
                );
            }
        }
        if self.faults_active {
            let counters = *self.injector.counters();
            self.faultmon.observe(self.clock, &counters);
        }
        if self.steady_base.is_none() && self.clock >= self.run.steady_start() {
            self.steady_base = Some(self.machine.total_counters());
        }
        self.prof_end();
        if let Some(hp) = self.hostprof.as_mut() {
            hp.note_quantum();
        }
    }

    /// Applies faults that act at quantum granularity: the pool-seizure
    /// level tracks the active window (lifting a window resumes admitted
    /// waiters), and a GC-storm roll forces a real collection.
    // jas-lint: allow(D012, reason = "runs only in executed quanta; fault windows hold standing wakes and lifted windows resume waiters the predicate sees via ready")
    fn apply_quantum_faults(&mut self) {
        let now = self.clock;
        // Seize web-container threads: the front door of the whole stack,
        // so exhaustion backs up into admission queueing and response
        // times, exactly like a stuck thread pool.
        let kind = PoolKind::WebContainer;
        let capacity = self.cfg.appserver.web_threads;
        let level = self.injector.seize_level(now, capacity);
        let current = self.appserver.seized(kind);
        if level != current {
            if level > current {
                self.injector
                    .note(now, EventKind::Injected(FaultKind::PoolSeize));
                if self.trace_active {
                    self.tracer.emit(
                        now,
                        0,
                        TraceEventKind::PoolSeized {
                            level: level as u64,
                        },
                    );
                }
            }
            for token in self.appserver.set_seized(kind, level) {
                let waiter = token as usize;
                if self.tasks[waiter].state == TaskState::WaitingPool {
                    self.tasks[waiter].state = TaskState::Ready;
                    self.enqueue(waiter);
                }
            }
        }
        // GC storm: force a real collection so pause accounting, verbose-gc
        // logging, and heap state stay consistent with organic cycles.
        if self.gc.is_none() && self.injector.roll(FaultKind::GcStorm, now) {
            self.jvm.force_gc();
            self.drain_gc_cycles();
        }
    }

    /// Host worker threads for the parallel phase, clamped to the core
    /// count (extra threads would only idle).
    fn exec_threads(&self) -> usize {
        self.cfg
            .threads
            .max(1)
            .min(self.cfg.machine.topology.cores())
    }

    /// Runs one quantum's rounds: sequential planning and reconciliation
    /// around a `dispatch`-mediated execution phase. `dispatch` receives
    /// owned slices and returns them completed, in any order.
    fn run_rounds(&mut self, dispatch: &mut dyn FnMut(Vec<Slice>) -> Vec<SliceDone>) {
        let quantum = self.cfg.quantum;
        let cores = self.cfg.machine.topology.cores();
        let budget = self.cfg.machine.frequency_hz * quantum.as_secs_f64();
        let freq = self.cfg.machine.frequency_hz;
        let in_steady = self.clock >= self.run.steady_start();
        let cost = self.cfg.machine.cost;
        let addr_map = self.cfg.machine.addr_map;
        let topo = self.cfg.machine.topology;

        // Detach the core-private halves so slices can own them.
        let mut core_states: Vec<Option<CorePrivate>> =
            self.machine.take_cores().into_iter().map(Some).collect();
        let mut cycles_left = vec![budget; cores];
        let mut user = vec![0.0; cores];
        let mut sys = vec![0.0; cores];
        let mut done = vec![false; cores];
        let mut no_more_tasks = vec![false; cores];
        // The task whose compute segment a core is between rounds of.
        let mut current: Vec<Option<usize>> = vec![None; cores];

        loop {
            // Stop-the-world GC runs sequentially: it is a global pause,
            // and the paper's collector is single-threaded per quantum.
            if self.gc.is_some() {
                self.prof(HostSection::Gc);
                for core in 0..cores {
                    if self.gc.is_none() {
                        break;
                    }
                    if done[core] {
                        continue;
                    }
                    if cycles_left[core] <= budget * 0.02 {
                        done[core] = true;
                        continue;
                    }
                    let mut cp = core_states[core].take().expect("core attached");
                    let used = self.run_gc_slice(core, &mut cp, cycles_left[core], in_steady);
                    core_states[core] = Some(cp);
                    user[core] += used;
                    cycles_left[core] -= used;
                }
                if self.gc.is_some() {
                    // Every core's budget drained with the pause still
                    // active: the quantum is over.
                    break;
                }
            }

            // Phase 1 (sequential): assign at most one slice per core.
            self.prof(HostSection::Plan);
            let mut slices: Vec<Slice> = Vec::new();
            let mut jit_assigned = false;
            for core in 0..cores {
                if done[core] || self.gc.is_some() {
                    continue;
                }
                if cycles_left[core] <= budget * 0.02 {
                    done[core] = true;
                    continue;
                }
                let assignment = self
                    .next_task_segment(core, &mut current[core], &mut no_more_tasks[core])
                    .map(|(t, component, max_instr)| (SliceKind::Task(t), component, max_instr))
                    .or_else(|| {
                        // Idle capacity goes to background JIT. One slice
                        // per round keeps the backlog decrement exact;
                        // other idle cores pick up the remainder next
                        // round, concurrently with task slices.
                        if self.gc.is_none()
                            && !jit_assigned
                            && cycles_left[core] > budget * 0.05
                            && self.jit_backlog_modeled > 1.0
                        {
                            jit_assigned = true;
                            Some((
                                SliceKind::Jit,
                                Component::JitCompiler,
                                self.jit_backlog_modeled,
                            ))
                        } else {
                            None
                        }
                    });
                if let Some((kind, component, max_instr)) = assignment {
                    slices.push(Slice {
                        core,
                        kind,
                        component,
                        cp: core_states[core].take().expect("core attached"),
                        gens: std::mem::take(&mut self.gens[core]),
                        events: std::mem::take(&mut self.event_bufs[core]),
                        cycles_budget: cycles_left[core],
                        max_instr,
                        cost,
                        addr_map,
                    });
                }
            }
            if slices.is_empty() {
                if self.gc.is_some() {
                    continue; // a pick triggered GC; run it next round
                }
                break;
            }

            // Phase 2: execute — on workers or inline, identically.
            self.prof(HostSection::Execute);
            let results = dispatch(slices);

            // Phase 3 (sequential, fixed core order): reconcile recorded
            // shared-hierarchy traffic, then task bookkeeping.
            self.prof(HostSection::Reconcile);
            let mut slots: Vec<Option<SliceDone>> = (0..cores).map(|_| None).collect();
            for r in results {
                let core = r.core;
                slots[core] = Some(r);
            }
            for core in 0..cores {
                let Some(r) = slots[core].take() else {
                    continue;
                };
                let mut cp = r.cp;
                let mut events = r.events;
                let correction = jas_cpu::reconcile_core(
                    &mut cp,
                    topo.chip_of_core(core),
                    &cost,
                    self.machine.mem_mut(),
                    &mut events,
                );
                core_states[core] = Some(cp);
                self.gens[core] = r.gens;
                self.event_bufs[core] = events;
                let used = r.used + correction;
                cycles_left[core] -= used;
                match r.kind {
                    SliceKind::Jit => {
                        self.jit_backlog_modeled -= r.executed;
                        user[core] += used;
                        if in_steady && r.executed >= 1.0 {
                            if let Some(m) = self.sample_method(Component::JitCompiler) {
                                self.tprof.record(self.jvm.registry(), m, r.executed as u64);
                            }
                        }
                    }
                    SliceKind::Task(t) => {
                        self.tasks[t].remaining_modeled -= r.executed;
                        if in_steady {
                            if let Some(m) = self.sample_method(r.component) {
                                self.tprof.record(self.jvm.registry(), m, r.executed as u64);
                                let work = self.jvm.record_invocations(m, 10);
                                self.jit_backlog_modeled += work / self.cfg.instruction_scale();
                            }
                        }
                        if r.component == Component::Kernel {
                            sys[core] += used;
                        } else {
                            user[core] += used;
                        }
                        if self.tasks[t].remaining_modeled <= 0.0 {
                            self.advance_past_compute(t);
                            match self.interpret_until_compute(t) {
                                StepOutcome::Compute => {} // next segment, same core
                                StepOutcome::Blocked => current[core] = None,
                                StepOutcome::Finished => {
                                    self.complete_task(t);
                                    current[core] = None;
                                }
                            }
                        }
                    }
                }
            }
        }

        // Re-attach the cores and account utilization.
        self.machine.restore_cores(
            core_states
                .into_iter()
                .map(|c| c.expect("core attached"))
                .collect(),
        );
        for core in 0..cores {
            // A segment cut off by the quantum stays with its task; the
            // task rejoins its affinity queue for the next quantum.
            if let Some(t) = current[core].take() {
                self.enqueue(t);
            }
            if self.trace_active {
                // Quantum-boundary events go through the per-core staging
                // buffers; `step_quantum` merges them in fixed core order.
                self.tracer.stage(
                    core,
                    self.clock,
                    core as u64,
                    TraceEventKind::CoreQuantum {
                        cycles: (user[core] + sys[core]).round() as u64,
                    },
                );
            }
            if in_steady {
                let user_t = SimDuration::from_secs_f64(user[core] / freq);
                let sys_t = SimDuration::from_secs_f64(sys[core] / freq);
                self.vmstat.account(CpuState::User, user_t);
                self.vmstat.account(CpuState::System, sys_t);
                let busy = user_t + sys_t;
                let idle = if busy >= quantum {
                    SimDuration::ZERO
                } else {
                    quantum - busy
                };
                if self.outstanding_io > 0 {
                    self.vmstat.account(CpuState::IoWait, idle);
                } else {
                    self.vmstat.account(CpuState::Idle, idle);
                }
            }
        }
    }

    /// Finds `core`'s next task compute segment: the in-flight continuation
    /// if there is one, else dequeued tasks are interpreted (side effects
    /// run here, in the sequential phase) until one yields a compute
    /// segment. Returns `(task, component, max_instructions)`.
    fn next_task_segment(
        &mut self,
        core: usize,
        current: &mut Option<usize>,
        no_more_tasks: &mut bool,
    ) -> Option<(usize, Component, f64)> {
        if let Some(t) = *current {
            return Some((
                t,
                self.current_component(t),
                self.tasks[t].remaining_modeled,
            ));
        }
        if *no_more_tasks {
            return None;
        }
        while self.gc.is_none() {
            let t = self.dequeue_for(core)?;
            if self.tasks[t].last_run_quantum == self.quantum_counter {
                // Already ran this quantum on another core; keep it for the
                // next quantum rather than spreading one request over
                // several cores.
                self.ready[core].push_front(t);
                *no_more_tasks = true;
                return None;
            }
            self.tasks[t].last_run_quantum = self.quantum_counter;
            if self.tasks[t].remaining_modeled > 0.0 {
                // Resuming a segment cut off by a previous quantum.
                *current = Some(t);
                return Some((
                    t,
                    self.current_component(t),
                    self.tasks[t].remaining_modeled,
                ));
            }
            match self.interpret_until_compute(t) {
                StepOutcome::Compute => {
                    *current = Some(t);
                    return Some((
                        t,
                        self.current_component(t),
                        self.tasks[t].remaining_modeled,
                    ));
                }
                StepOutcome::Blocked => continue,
                StepOutcome::Finished => {
                    self.complete_task(t);
                    continue;
                }
            }
        }
        None
    }

    fn admit(&mut self, kind: RequestKind, at: SimTime) {
        let plan = self.scenario.build(kind, self.appserver.work_order_queue());
        if let Some(log) = self.recorder.as_mut() {
            log.plans.push((kind, plan.clone()));
        }
        let pool = if kind.is_web() {
            PoolKind::WebContainer
        } else {
            PoolKind::Orb
        };
        let idx = self.spawn_task(kind, plan, Some(pool), at);
        if self.trace_active {
            let id = idx as u64 + 1;
            self.tracer.emit(
                at,
                id,
                TraceEventKind::RequestAdmitted { kind: kind.index() },
            );
            if pool == PoolKind::Orb {
                self.tracer.emit(at, id, TraceEventKind::RmiDispatch);
            }
        }
        match self.appserver.acquire(pool, idx as u64) {
            Admission::Granted => {
                self.tasks[idx].state = TaskState::Ready;
                self.enqueue(idx);
                if self.trace_active {
                    let what = TraceEventKind::PoolGranted { pool: pool.index() };
                    self.tracer.emit(at, idx as u64 + 1, what);
                }
            }
            Admission::Queued { .. } => {
                self.tasks[idx].state = TaskState::WaitingPool;
                if self.trace_active {
                    let what = TraceEventKind::PoolQueued { pool: pool.index() };
                    self.tracer.emit(at, idx as u64 + 1, what);
                }
            }
        }
    }

    fn spawn_task(
        &mut self,
        kind: RequestKind,
        plan: TxPlan,
        pool: Option<PoolKind>,
        at: SimTime,
    ) -> usize {
        // Kernel-mode wrapper: network receive before, response send after.
        let total = plan.compute_instructions();
        let kernel_each = total * self.cfg.kernel_overhead / 2.0;
        let mut wrapped = TxPlan::new();
        wrapped.push(PlanStep::Compute {
            component: Component::Kernel,
            instructions: kernel_each,
        });
        wrapped.extend(plan.steps);
        wrapped.push(PlanStep::Compute {
            component: Component::Kernel,
            instructions: kernel_each,
        });
        self.tasks.push(Task {
            kind,
            plan: wrapped,
            step: 0,
            remaining_modeled: 0.0,
            extra: VecDeque::new(),
            issued: at,
            jvm_tx: None,
            pool,
            state: TaskState::Ready,
            io_blocked: false,
            last_run_quantum: u64::MAX,
            attempts: 0,
            deadline: if self.faults_active {
                self.cfg.faults.deadline.map(|d| at + d)
            } else {
                None
            },
            mq_msg: None,
        });
        self.tasks.len() - 1
    }

    /// Executes GC work on `core` (whose private state is detached into
    /// `cp`); returns cycles used. GC records and reconciles back-to-back —
    /// it always runs in the sequential phase, where the shared hierarchy
    /// is free.
    // jas-lint: allow(D012, reason = "only runs while gc is Some, so the quantum is already non-idle; finishing GC moves toward idle")
    fn run_gc_slice(
        &mut self,
        core: usize,
        cp: &mut CorePrivate,
        cycles_budget: f64,
        in_steady: bool,
    ) -> f64 {
        let cost = self.cfg.machine.cost;
        let addr_map = self.cfg.machine.addr_map;
        let chip = self.cfg.machine.topology.chip_of_core(core);
        let (used_recorded, executed, remaining) = {
            let Some(gc) = self.gc.as_mut() else {
                return 0.0;
            };
            let gen = &mut self.gens[core][comp_index(Component::Gc)];
            let events = &mut self.event_bufs[core];
            let remaining = gc.remaining_modeled;
            let mut used = 0.0;
            let mut executed: u64 = 0;
            // Same pre-check semantics as the former `while` loop; the GC's
            // remaining work only changes after the slice, so the bound is
            // loop-invariant and safe to copy out. The integer count compare
            // is exact as in `run_slice`: `k < remaining` ⟺ `k < ceil(remaining)`.
            if cycles_budget > 0.0 && remaining > 0.0 {
                let max_instr = remaining.ceil() as u64;
                gen.drive(|ia, op| {
                    used += cp.exec_record(&cost, addr_map, ia, op, events);
                    executed += 1;
                    used < cycles_budget && executed < max_instr
                });
            }
            let executed = executed as f64;
            gc.remaining_modeled -= executed;
            (used, executed, gc.remaining_modeled)
        };
        let correction = jas_cpu::reconcile_core(
            cp,
            chip,
            &cost,
            self.machine.mem_mut(),
            &mut self.event_bufs[core],
        );
        let used = used_recorded + correction;
        if in_steady && executed >= 1.0 {
            if let Some(m) = self.sample_method(Component::Gc) {
                self.tprof.record(self.jvm.registry(), m, executed as u64);
            }
        }
        if remaining <= 0.0 {
            let gc = self.gc.take().expect("gc pause active");
            let pause = self.clock + self.cfg.quantum - gc.start;
            if self.trace_active {
                let what = TraceEventKind::GcPauseEnd {
                    pause_nanos: pause.as_nanos(),
                };
                self.tracer.emit(self.clock + self.cfg.quantum, 0, what);
            }
            let mark = SimDuration::from_secs_f64(pause.as_secs_f64() * gc.mark_fraction);
            self.vgc.push(GcLogEntry {
                at: gc.start,
                pause,
                mark,
                sweep: pause - mark,
                compacted: gc.cycle.report.compacted,
                free_after: gc.cycle.report.free_after,
                used_after: gc.cycle.used_after,
                cycle: gc.cycle,
            });
        }
        used
    }

    fn current_component(&self, task_idx: usize) -> Component {
        let t = &self.tasks[task_idx];
        if let Some(&(c, _)) = t.extra.front() {
            return c;
        }
        match t.plan.steps.get(t.step) {
            Some(PlanStep::Compute { component, .. }) => *component,
            _ => Component::AppServer,
        }
    }

    /// Moves past a completed compute step (either an `extra` entry or the
    /// plan's current step).
    fn advance_past_compute(&mut self, task_idx: usize) {
        let t = &mut self.tasks[task_idx];
        if t.extra.pop_front().is_none() {
            t.step += 1;
        }
        // Load the next pending compute if it is an extra entry.
        if let Some(&(_, instr)) = t.extra.front() {
            t.remaining_modeled = instr;
        }
    }

    /// Walks plan steps, applying side effects, until hitting a compute
    /// step (which is loaded into `remaining_modeled`), a blocking
    /// condition, or the end of the plan.
    fn interpret_until_compute(&mut self, task_idx: usize) -> StepOutcome {
        loop {
            if self.faults_active {
                if let Some(deadline) = self.tasks[task_idx].deadline {
                    if self.clock >= deadline {
                        self.injector.note(self.clock, EventKind::DeadlineExceeded);
                        self.fail_task(task_idx);
                        return StepOutcome::Finished;
                    }
                }
            }
            if let Some(&(_, instr)) = self.tasks[task_idx].extra.front() {
                self.tasks[task_idx].remaining_modeled = instr;
                return StepOutcome::Compute;
            }
            let step = {
                let t = &self.tasks[task_idx];
                match t.plan.steps.get(t.step) {
                    Some(s) => *s,
                    None => return StepOutcome::Finished,
                }
            };
            match step {
                PlanStep::Compute { instructions, .. } => {
                    self.tasks[task_idx].remaining_modeled =
                        instructions / self.cfg.instruction_scale();
                    return StepOutcome::Compute;
                }
                PlanStep::Allocate { class, count } => {
                    let tx = self.ensure_jvm_tx(task_idx);
                    let n = count * self.cfg.alloc_multiplier;
                    for _ in 0..n {
                        self.jvm.alloc_in_tx(tx, class, &mut self.rng);
                    }
                    if self.trace_active {
                        let what = TraceEventKind::AllocEpoch {
                            allocated_bytes: self.jvm.allocated_bytes(),
                        };
                        self.tracer.emit(self.clock, task_idx as u64 + 1, what);
                    }
                    self.drain_gc_cycles();
                    self.tasks[task_idx].step += 1;
                    if self.gc.is_some() {
                        // Stop-the-world: the task pauses with everyone else
                        // but stays ready.
                        self.enqueue(task_idx);
                        return StepOutcome::Blocked;
                    }
                }
                PlanStep::SessionTouch => {
                    self.jvm.touch_session(&mut self.rng);
                    self.drain_gc_cycles();
                    self.tasks[task_idx].step += 1;
                    if self.gc.is_some() {
                        self.enqueue(task_idx);
                        return StepOutcome::Blocked;
                    }
                }
                PlanStep::Lock { monitor } => {
                    let outcome = self.jvm.lock(monitor, &mut self.rng);
                    self.tasks[task_idx].step += 1;
                    if let LockOutcome::OsBlock = outcome {
                        // Futex path: kernel work plus a short block.
                        self.tasks[task_idx].extra.push_back((
                            Component::Kernel,
                            12_000.0 / self.cfg.instruction_scale(),
                        ));
                        let until = self.clock + SimDuration::from_micros(500);
                        self.block_until(task_idx, until);
                        return StepOutcome::Blocked;
                    }
                }
                PlanStep::Db { query } => {
                    // Each statement runs in its own short transaction:
                    // holding row locks across a whole multi-quantum plan
                    // under no-wait locking would livelock on hot rows (the
                    // real system holds row latches for microseconds, far
                    // below our scheduling resolution).
                    if self.faults_active {
                        if let Some(outcome) = self.db_step_faulted(task_idx, query) {
                            return outcome;
                        }
                        continue;
                    }
                    let txn = self.db.begin();
                    let result = self.db.execute(txn, query, self.clock);
                    match result {
                        Ok(report) => {
                            self.db.commit(txn);
                            if self.trace_active {
                                self.emit_db_commit(task_idx, &report);
                            }
                            let scale = self.cfg.instruction_scale();
                            let t = &mut self.tasks[task_idx];
                            t.step += 1;
                            t.extra
                                .push_back((Component::Database, report.cpu_instructions / scale));
                            if report.pool_misses > 0 {
                                t.extra.push_back((
                                    Component::Kernel,
                                    f64::from(report.pool_misses) * 8_000.0 / scale,
                                ));
                            }
                            if let Some(done) = report.io_done {
                                // RAM-disk I/O (tens of microseconds)
                                // completes within the slice; spinning-disk
                                // service times block the task, surfacing
                                // as I/O wait exactly as in the paper's
                                // hard-disk runs.
                                if done > self.clock + SimDuration::from_millis(2) {
                                    t.io_blocked = true;
                                    self.outstanding_io += 1;
                                    self.block_until(task_idx, done);
                                    return StepOutcome::Blocked;
                                }
                            }
                        }
                        Err(DbError::Conflict(conflict)) => {
                            // No-wait locking: release and retry shortly.
                            self.db.abort(txn);
                            if self.trace_active {
                                let what = TraceEventKind::DbLockWait {
                                    table: u64::from(conflict.table.0),
                                };
                                self.tracer.emit(self.clock, task_idx as u64 + 1, what);
                            }
                            let until = self.clock + SimDuration::from_millis(1);
                            self.block_until(task_idx, until);
                            return StepOutcome::Blocked;
                        }
                        Err(_) => {
                            // Business-level anomaly (duplicate key on a
                            // retried insert, vanished row): abort the
                            // request.
                            self.db.abort(txn);
                            self.abort_task(task_idx);
                            return StepOutcome::Finished;
                        }
                    }
                }
                PlanStep::MqSend {
                    queue,
                    payload_bytes,
                } => {
                    self.correlation_seq += 1;
                    let correlation = self.correlation_seq;
                    self.appserver
                        .broker_mut()
                        .send(queue, Message::new(correlation, payload_bytes));
                    if self.faults_active && self.injector.roll(FaultKind::JmsDuplicate, self.clock)
                    {
                        // At-least-once delivery: the producer's ack was
                        // lost and it sent the same message again.
                        self.appserver
                            .broker_mut()
                            .send(queue, Message::new(correlation, payload_bytes));
                        self.injector.note(self.clock, EventKind::Duplicated);
                    }
                    if self.trace_active {
                        let what = TraceEventKind::JmsSend { queue: queue.0 };
                        self.tracer.emit(self.clock, task_idx as u64 + 1, what);
                    }
                    self.tasks[task_idx].step += 1;
                    self.maybe_spawn_workorders();
                }
                PlanStep::MqReceive { queue } => {
                    if self.faults_active {
                        if let Some(outcome) = self.mq_receive_faulted(task_idx, queue) {
                            return outcome;
                        }
                        continue;
                    }
                    if let Some(msg) = self.appserver.broker_mut().receive(queue) {
                        if self.trace_active {
                            let what = TraceEventKind::JmsDeliver { queue: queue.0 };
                            self.tracer.emit(self.clock, task_idx as u64 + 1, what);
                        }
                        self.tasks[task_idx].mq_msg = Some((queue, msg));
                    }
                    self.pending_workorders = self.pending_workorders.saturating_sub(1);
                    self.tasks[task_idx].step += 1;
                }
            }
        }
    }

    /// Emits the trace events of one committed database statement (only
    /// called with tracing active).
    fn emit_db_commit(&mut self, task_idx: usize, report: &jas_db::WorkReport) {
        let id = task_idx as u64 + 1;
        let what = TraceEventKind::DbCommit {
            instructions: report.cpu_instructions as u64,
        };
        self.tracer.emit(self.clock, id, what);
        if report.pool_misses > 0 {
            let what = TraceEventKind::DbIo {
                misses: u64::from(report.pool_misses),
            };
            self.tracer.emit(self.clock, id, what);
        }
    }

    /// Interprets one `PlanStep::Db` under an armed fault plan: circuit
    /// breaker at the front, scheduled fault rolls before the statement,
    /// bounded backoff retry after a failure. Returns `None` when the
    /// statement committed and interpretation should continue.
    fn db_step_faulted(&mut self, task_idx: usize, query: Query) -> Option<StepOutcome> {
        let now = self.clock;
        let before = self.breaker.state();
        let admitted = self.breaker.try_acquire(now);
        self.note_breaker_transition(before);
        if !admitted {
            // Fail fast without touching the database at all.
            self.injector.note_fast_fail();
            return Some(self.retry_or_fail(task_idx));
        }
        // Scheduled faults ride on the next statement; the rolls happen
        // here, in the sequential phase, so they are thread-invariant.
        if self.injector.roll(FaultKind::DbLockTimeout, now) {
            self.db.inject(DbFault::LockTimeout);
        } else if self.injector.roll(FaultKind::DbIoStall, now) {
            self.db.inject(DbFault::IoStall);
        }
        let txn = self.db.begin();
        match self.db.execute(txn, query, now) {
            Ok(report) => {
                let before = self.breaker.state();
                self.breaker.on_success();
                self.note_breaker_transition(before);
                self.db.commit(txn);
                if self.trace_active {
                    self.emit_db_commit(task_idx, &report);
                }
                let scale = self.cfg.instruction_scale();
                let t = &mut self.tasks[task_idx];
                t.attempts = 0;
                t.step += 1;
                t.extra
                    .push_back((Component::Database, report.cpu_instructions / scale));
                if report.pool_misses > 0 {
                    t.extra.push_back((
                        Component::Kernel,
                        f64::from(report.pool_misses) * 8_000.0 / scale,
                    ));
                }
                if let Some(done) = report.io_done {
                    if done > now + SimDuration::from_millis(2) {
                        t.io_blocked = true;
                        self.outstanding_io += 1;
                        self.block_until(task_idx, done);
                        return Some(StepOutcome::Blocked);
                    }
                }
                None
            }
            Err(DbError::Conflict(conflict)) => {
                // Organic row contention, not an injected fault: the legacy
                // no-wait backoff, with no breaker penalty.
                self.db.abort(txn);
                if self.trace_active {
                    let what = TraceEventKind::DbLockWait {
                        table: u64::from(conflict.table.0),
                    };
                    self.tracer.emit(now, task_idx as u64 + 1, what);
                }
                self.block_until(task_idx, now + SimDuration::from_millis(1));
                Some(StepOutcome::Blocked)
            }
            Err(DbError::Timeout(_)) => {
                self.db.abort(txn);
                let before = self.breaker.state();
                self.breaker.on_failure(now);
                self.note_breaker_transition(before);
                Some(self.retry_or_fail(task_idx))
            }
            Err(_) => {
                // Business-level anomaly: fail the request outright.
                self.db.abort(txn);
                self.fail_task(task_idx);
                Some(StepOutcome::Finished)
            }
        }
    }

    /// Interprets one `PlanStep::MqReceive` under an armed fault plan: a
    /// redelivery roll can bounce the message back (or dead-letter a
    /// poison one). Returns `None` when interpretation should continue.
    fn mq_receive_faulted(&mut self, task_idx: usize, queue: QueueId) -> Option<StepOutcome> {
        let now = self.clock;
        let Some(msg) = self.appserver.broker_mut().receive(queue) else {
            // Empty queue: keep the legacy bookkeeping.
            self.pending_workorders = self.pending_workorders.saturating_sub(1);
            self.tasks[task_idx].step += 1;
            return None;
        };
        if self.injector.roll(FaultKind::JmsRedelivery, now) {
            if msg.deliveries < self.cfg.faults.max_deliveries {
                // The listener session rolls back: the message returns to
                // the front of its queue and this consumer backs off on
                // the delivery count, then tries again.
                let attempt = msg.deliveries;
                self.appserver.broker_mut().redeliver(queue, msg);
                self.injector.note(now, EventKind::Redelivered);
                if self.trace_active {
                    let what = TraceEventKind::JmsRedeliver { attempt };
                    self.tracer.emit(now, task_idx as u64 + 1, what);
                }
                let delay = self
                    .cfg
                    .faults
                    .retry
                    .delay(self.cfg.seed ^ task_idx as u64, attempt);
                self.block_until(task_idx, now + delay);
                return Some(StepOutcome::Blocked);
            }
            // Poison message: park it and fail the work order. The step
            // advances first so the failure path sees the message as
            // consumed.
            self.appserver.broker_mut().dead_letter(msg);
            self.injector.note(now, EventKind::DeadLettered);
            if self.trace_active {
                self.tracer
                    .emit(now, task_idx as u64 + 1, TraceEventKind::JmsDeadLetter);
            }
            self.pending_workorders = self.pending_workorders.saturating_sub(1);
            self.tasks[task_idx].step += 1;
            self.fail_task(task_idx);
            return Some(StepOutcome::Finished);
        }
        self.pending_workorders = self.pending_workorders.saturating_sub(1);
        if self.trace_active {
            let what = TraceEventKind::JmsDeliver { queue: queue.0 };
            self.tracer.emit(now, task_idx as u64 + 1, what);
        }
        let t = &mut self.tasks[task_idx];
        t.mq_msg = Some((queue, msg));
        t.step += 1;
        None
    }

    /// Books one failed attempt of the current statement: schedules a
    /// deterministic backoff retry, or fails the request once the retry
    /// budget is spent.
    fn retry_or_fail(&mut self, task_idx: usize) -> StepOutcome {
        self.tasks[task_idx].attempts += 1;
        let attempt = self.tasks[task_idx].attempts;
        if attempt > self.cfg.faults.retry.max_retries {
            self.fail_task(task_idx);
            return StepOutcome::Finished;
        }
        let delay = self
            .cfg
            .faults
            .retry
            .delay(self.cfg.seed ^ task_idx as u64, attempt);
        self.block_until(task_idx, self.clock + delay);
        self.injector
            .note(self.clock, EventKind::RetryScheduled { attempt });
        if self.trace_active {
            let what = TraceEventKind::Retry { attempt };
            self.tracer.emit(self.clock, task_idx as u64 + 1, what);
        }
        self.metrics.record_retry(self.clock);
        StepOutcome::Blocked
    }

    /// Permanently fails a request: a consumed work-order message goes
    /// back for redelivery (or to the dead-letter queue), in-flight
    /// work-order accounting is settled, and the task finishes
    /// uncommitted.
    fn fail_task(&mut self, task_idx: usize) {
        if let Some((queue, msg)) = self.tasks[task_idx].mq_msg.take() {
            if msg.deliveries < self.cfg.faults.max_deliveries {
                let attempt = msg.deliveries;
                self.appserver.broker_mut().redeliver(queue, msg);
                self.injector.note(self.clock, EventKind::Redelivered);
                if self.trace_active {
                    let what = TraceEventKind::JmsRedeliver { attempt };
                    self.tracer.emit(self.clock, task_idx as u64 + 1, what);
                }
            } else {
                self.appserver.broker_mut().dead_letter(msg);
                self.injector.note(self.clock, EventKind::DeadLettered);
                if self.trace_active {
                    self.tracer.emit(
                        self.clock,
                        task_idx as u64 + 1,
                        TraceEventKind::JmsDeadLetter,
                    );
                }
            }
        } else if self.tasks[task_idx].kind == RequestKind::WorkOrder {
            // Died before consuming its message: it will never reach the
            // `MqReceive` decrement, so settle the in-flight count here.
            let t = &self.tasks[task_idx];
            let unconsumed = t
                .plan
                .steps
                .iter()
                .skip(t.step)
                .any(|s| matches!(s, PlanStep::MqReceive { .. }));
            if unconsumed {
                self.pending_workorders = self.pending_workorders.saturating_sub(1);
            }
        }
        self.injector.note(self.clock, EventKind::RequestFailed);
        self.metrics.record_error(self.clock);
        self.finish_task(task_idx, false);
    }

    /// Logs a breaker state change observed across one breaker call
    /// (`before` is the state captured just before it).
    fn note_breaker_transition(&mut self, before: BreakerState) {
        let after = self.breaker.state();
        if before == after {
            return;
        }
        let what = match after {
            BreakerState::Open => EventKind::BreakerOpened,
            BreakerState::HalfOpen => EventKind::BreakerHalfOpen,
            BreakerState::Closed => EventKind::BreakerClosed,
        };
        self.injector.note(self.clock, what);
        if self.trace_active {
            let ev = match after {
                BreakerState::Open => TraceEventKind::BreakerOpen,
                BreakerState::HalfOpen => TraceEventKind::BreakerHalfOpen,
                BreakerState::Closed => TraceEventKind::BreakerClosed,
            };
            self.tracer.emit(self.clock, 0, ev);
        }
    }

    // jas-lint: allow(D012, reason = "runs during task execution in a non-idle quantum; the tx handle creates no future work beyond the already-tracked task")
    fn ensure_jvm_tx(&mut self, task_idx: usize) -> TxHandle {
        if let Some(tx) = self.tasks[task_idx].jvm_tx {
            tx
        } else {
            let tx = self.jvm.begin_tx();
            self.tasks[task_idx].jvm_tx = Some(tx);
            tx
        }
    }

    // jas-lint: allow(D012, reason = "starting a GC makes the predicate false immediately at the next quantum check")
    fn drain_gc_cycles(&mut self) {
        for cycle in self.jvm.take_gc_cycles() {
            let scale = self.jvm.config().heap_scale as f64;
            let r = &cycle.report;
            let mark = (r.marked_objects as f64 * MARK_INSTR_PER_OBJECT
                + r.edges_traversed as f64 * MARK_INSTR_PER_EDGE
                + r.marked_bytes as f64 * MARK_INSTR_PER_BYTE)
                * scale;
            let sweep = ((r.marked_objects + r.swept_objects) as f64 * SWEEP_INSTR_PER_OBJECT
                + r.freed_bytes as f64 * SWEEP_INSTR_PER_BYTE)
                * scale;
            let compact = r.compact_moved_bytes as f64 * COMPACT_INSTR_PER_BYTE * scale;
            let total_real = mark + sweep + compact;
            let total_modeled = total_real / self.cfg.instruction_scale();
            let used_after = cycle.used_after;
            self.gc = Some(GcPause {
                remaining_modeled: total_modeled,
                mark_fraction: mark / total_real.max(1.0),
                start: self.clock,
                cycle,
            });
            if self.trace_active {
                let what = TraceEventKind::GcPauseStart {
                    used_bytes: used_after,
                };
                self.tracer.emit(self.clock, 0, what);
            }
        }
    }

    fn maybe_spawn_workorders(&mut self) {
        let queue = self.appserver.work_order_queue();
        while (self.appserver.broker().depth(queue) as u64) > self.pending_workorders {
            let idx = self.tasks.len();
            match self.appserver.acquire(PoolKind::JmsListener, idx as u64) {
                Admission::Granted => {
                    let plan = self.scenario.build(RequestKind::WorkOrder, queue);
                    if let Some(log) = self.recorder.as_mut() {
                        log.plans.push((RequestKind::WorkOrder, plan.clone()));
                    }
                    let at = self.clock;
                    let idx = self.spawn_task(
                        RequestKind::WorkOrder,
                        plan,
                        Some(PoolKind::JmsListener),
                        at,
                    );
                    self.pending_workorders += 1;
                    self.enqueue(idx);
                    if self.trace_active {
                        let id = idx as u64 + 1;
                        self.tracer.emit(
                            at,
                            id,
                            TraceEventKind::RequestAdmitted {
                                kind: RequestKind::WorkOrder.index(),
                            },
                        );
                        let what = TraceEventKind::PoolGranted {
                            pool: PoolKind::JmsListener.index(),
                        };
                        self.tracer.emit(at, id, what);
                    }
                }
                Admission::Queued { .. } => {
                    // Pool exhausted: cancel the reservation and try again
                    // when a listener frees up.
                    self.appserver
                        .cancel_wait(PoolKind::JmsListener, idx as u64);
                    break;
                }
            }
        }
    }

    fn complete_task(&mut self, task_idx: usize) {
        self.finish_task(task_idx, true);
    }

    fn abort_task(&mut self, task_idx: usize) {
        self.finish_task(task_idx, false);
    }

    fn finish_task(&mut self, task_idx: usize, committed: bool) {
        if self.tasks[task_idx].state == TaskState::Done {
            // Already finished (aborted inside interpretation before the
            // scheduler saw `Finished`): the first verdict stands.
            return;
        }
        let kind;
        let issued;
        {
            let t = &mut self.tasks[task_idx];
            kind = t.kind;
            issued = t.issued;
            t.state = TaskState::Done;
        }
        if let Some(tx) = self.tasks[task_idx].jvm_tx.take() {
            self.jvm.end_tx(tx);
        }
        if let Some(pool) = self.tasks[task_idx].pool.take() {
            if let Some(token) = self.appserver.release(pool) {
                let waiter = token as usize;
                if self.tasks[waiter].state == TaskState::WaitingPool {
                    self.tasks[waiter].state = TaskState::Ready;
                    self.enqueue(waiter);
                }
            }
            if pool == PoolKind::JmsListener {
                self.maybe_spawn_workorders();
            }
        }
        if self.trace_active {
            let what = if committed {
                TraceEventKind::RequestDone
            } else {
                TraceEventKind::RequestFailed
            };
            self.tracer.emit(self.clock, task_idx as u64 + 1, what);
        }
        if committed {
            self.completed_requests += 1;
            if kind != RequestKind::WorkOrder {
                self.frontend_completed += 1;
            }
            self.metrics.record(kind, issued, self.clock);
        } else {
            self.aborted_requests += 1;
            if kind != RequestKind::WorkOrder {
                self.frontend_aborted += 1;
            }
        }
    }

    // ---- Read-out accessors for the experiment layer. ----

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SutConfig {
        &self.cfg
    }

    /// The run plan in force.
    #[must_use]
    pub fn run_plan(&self) -> &RunPlan {
        &self.run
    }

    /// The machine model.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The JVM.
    #[must_use]
    pub fn jvm(&self) -> &Jvm {
        &self.jvm
    }

    /// The database.
    #[must_use]
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The application server.
    #[must_use]
    pub fn appserver(&self) -> &AppServer {
        &self.appserver
    }

    /// The running scenario's name.
    #[must_use]
    pub fn scenario_name(&self) -> &'static str {
        self.scenario.name()
    }

    /// The scenario's business label for a request slot.
    #[must_use]
    pub fn scenario_label(&self, kind: RequestKind) -> &'static str {
        self.scenario.label(kind)
    }

    /// The omniscient HPM sampler.
    #[must_use]
    pub fn hpm(&self) -> &OmniscientHpm {
        &self.hpm
    }

    /// The tick profiler.
    #[must_use]
    pub fn tprof(&self) -> &Tprof {
        &self.tprof
    }

    /// The utilization monitor.
    #[must_use]
    pub fn vmstat(&self) -> &Vmstat {
        &self.vmstat
    }

    /// The verbose-GC log.
    #[must_use]
    pub fn vgc(&self) -> &VerboseGc {
        &self.vgc
    }

    /// The workload metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Requests completed (committed) so far.
    #[must_use]
    pub fn completed_requests(&self) -> u64 {
        self.completed_requests
    }

    /// Requests aborted so far.
    #[must_use]
    pub fn aborted_requests(&self) -> u64 {
        self.aborted_requests
    }

    /// Completions excluding internally spawned work-order follow-ups:
    /// exactly the requests a front-end handed to this node.
    #[must_use]
    pub fn frontend_completed(&self) -> u64 {
        self.frontend_completed
    }

    /// Permanent failures excluding internally spawned work-order
    /// follow-ups.
    #[must_use]
    pub fn frontend_aborted(&self) -> u64 {
        self.frontend_aborted
    }

    /// Cumulative fault/resilience counters (all zero on a healthy run).
    #[must_use]
    pub fn fault_counters(&self) -> &FaultCounters {
        self.injector.counters()
    }

    /// The fault/resilience event log (empty on a healthy run).
    #[must_use]
    pub fn fault_log(&self) -> &FaultLog {
        self.injector.log()
    }

    /// The periodic fault monitor ([`Engine::run_to_end`] finishes it).
    #[must_use]
    pub fn fault_monitor(&self) -> &FaultMonitor {
        &self.faultmon
    }

    /// The request tracer (empty when tracing is off).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A snapshot of the host self-profile, when `--host-prof` is on.
    #[must_use]
    pub fn host_profile(&self) -> Option<HostProfReport> {
        self.hostprof.as_ref().map(HostProf::report)
    }

    /// Consumes the engine, handing out the owned instruments that the
    /// artifact layer keeps (the rest is summarized before calling this).
    #[must_use]
    pub fn into_instruments(self) -> (OmniscientHpm, Tprof, Tracer) {
        (self.hpm, self.tprof, self.tracer)
    }

    /// Machine-wide counter deltas accumulated during the steady-state
    /// window (machine totals minus the snapshot taken at steady start).
    /// Falls back to run totals before the window opens.
    #[must_use]
    pub fn steady_counters(&self) -> jas_cpu::CounterFile {
        let total = self.machine.total_counters();
        match &self.steady_base {
            Some(base) => total.delta_since(base),
            None => total,
        }
    }

    /// Machine-wide counter totals for the whole run (all cores, ramp-up
    /// included). The bench harness uses these to report simulated cycles
    /// and instructions per host-second.
    #[must_use]
    pub fn total_counters(&self) -> jas_cpu::CounterFile {
        self.machine.total_counters()
    }

    /// Scheduler-occupancy counters ([`SchedStats`]). Under the quantum
    /// scheduler the wake heap stays empty, nothing is ever skipped, and
    /// `quanta_executed` is simply the quantum counter.
    #[must_use]
    pub fn sched_stats(&self) -> SchedStats {
        let mut s = self.sched_stats;
        if !self.sched_event {
            s.quanta_executed = self.quantum_counter;
        }
        s.heap_high_water = s.heap_high_water.max(self.wakes.high_water());
        s
    }

    /// Fraction of a GC pause spent marking, from the most recent pause
    /// composition (`None` before the first completed GC).
    #[must_use]
    pub fn last_gc_mark_fraction(&self) -> Option<f64> {
        self.vgc.entries().last().map(|e| {
            e.mark.as_secs_f64() / (e.mark.as_secs_f64() + e.sweep.as_secs_f64()).max(1e-12)
        })
    }
}

enum StepOutcome {
    Compute,
    Blocked,
    Finished,
}
// --- Checkpoint persistence ---
//
// Everything below serializes the engine's *mutable* state for jas-replay
// checkpoints. Config-derived structures (plans, CDFs, pool capacities,
// per-core generators' static tables) are rebuilt by `Engine::new` from the
// same `SutConfig`; a restore overlays only what a run mutates. The same
// visitor doubles as the divergence probe: running it through a
// `WordDigest` fingerprints the complete simulation state at a quantum
// boundary without allocating.

impl Persist for TaskState {
    fn persist(&mut self, io: &mut dyn StateIo) {
        let mut tag: u64 = match self {
            TaskState::Ready => 0,
            TaskState::BlockedUntil(_) => 1,
            TaskState::WaitingPool => 2,
            TaskState::Done => 3,
        };
        io.word(&mut tag);
        if !io.saving() {
            *self = match tag {
                0 => TaskState::Ready,
                1 => TaskState::BlockedUntil(SimTime::ZERO),
                2 => TaskState::WaitingPool,
                _ => TaskState::Done,
            };
        }
        if let TaskState::BlockedUntil(at) = self {
            at.persist(io);
        }
    }
}

impl Default for Task {
    fn default() -> Self {
        Task {
            kind: RequestKind::default(),
            plan: TxPlan::default(),
            step: 0,
            remaining_modeled: 0.0,
            extra: VecDeque::new(),
            issued: SimTime::ZERO,
            jvm_tx: None,
            pool: None,
            state: TaskState::Ready,
            io_blocked: false,
            last_run_quantum: 0,
            attempts: 0,
            deadline: None,
            mq_msg: None,
        }
    }
}

impl Persist for Task {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.kind.persist(io);
        self.plan.persist(io);
        self.step.persist(io);
        self.remaining_modeled.persist(io);
        snap::persist_deque(io, &mut self.extra);
        self.issued.persist(io);
        snap::persist_opt(io, &mut self.jvm_tx);
        snap::persist_opt(io, &mut self.pool);
        self.state.persist(io);
        self.io_blocked.persist(io);
        self.last_run_quantum.persist(io);
        self.attempts.persist(io);
        snap::persist_opt(io, &mut self.deadline);
        snap::persist_opt(io, &mut self.mq_msg);
    }
}

impl Default for GcPause {
    fn default() -> Self {
        GcPause {
            remaining_modeled: 0.0,
            mark_fraction: 0.0,
            start: SimTime::ZERO,
            cycle: GcCycle::default(),
        }
    }
}

impl Persist for GcPause {
    fn persist(&mut self, io: &mut dyn StateIo) {
        self.remaining_modeled.persist(io);
        self.mark_fraction.persist(io);
        self.start.persist(io);
        self.cycle.persist(io);
    }
}

impl Engine {
    /// Saves or restores every piece of mutable simulation state.
    ///
    /// Must be called at a quantum boundary (checkpointing mid-quantum is
    /// meaningless: per-core event buffers are drained and tasks are
    /// reconciled only between quanta). Restore overlays a freshly built
    /// `Engine::new(cfg, run)` with the same configuration — the scenario
    /// type, DB schema, and warm session store come from construction, and
    /// only run-mutated state is replayed from the stream.
    ///
    /// # Panics
    ///
    /// Panics when loading a stream whose scenario tag does not match the
    /// engine's configured scenario (a config/checkpoint mismatch).
    pub fn persist_state(&mut self, io: &mut dyn StateIo) {
        self.rng.persist(io);
        self.clock.persist(io);
        self.next_arrival.0.persist(io);
        self.next_arrival.1.persist(io);
        snap::persist_vec(io, &mut self.tasks);
        snap::persist_slice(io, &mut self.ready);
        self.pending_workorders.persist(io);
        snap::persist_opt(io, &mut self.gc);
        self.jit_backlog_modeled.persist(io);
        for row in &mut self.gens {
            snap::persist_slice(io, row);
        }
        self.correlation_seq.persist(io);
        self.outstanding_io.persist(io);
        self.quantum_counter.persist(io);
        snap::persist_opt_with(io, &mut self.steady_base, jas_cpu::CounterFile::new);
        self.hpm.persist(io);
        self.tprof.persist(io);
        self.vmstat.persist(io);
        self.vgc.persist(io);
        self.metrics.persist(io);
        self.completed_requests.persist(io);
        self.aborted_requests.persist(io);
        self.frontend_completed.persist(io);
        self.frontend_aborted.persist(io);
        self.injector.persist(io);
        self.breaker.persist(io);
        self.faultmon.persist(io);
        self.tracer.persist(io);
        self.machine.persist(io);
        self.jvm.persist(io);
        self.db.persist(io);
        self.appserver.persist(io);
        let mut tag = self.scenario.kind_tag();
        io.word(&mut tag);
        assert_eq!(
            tag,
            self.scenario.kind_tag(),
            "checkpoint scenario does not match the configured scenario"
        );
        self.scenario.persist_state(io);
        snap::persist_opt(io, &mut self.recorder);
        // Version 2 tail: the wake heap (canonical live-registration form)
        // and scheduler-occupancy counters. Written under both schedulers
        // so the payload layout is scheduler-independent (the fingerprint
        // normalizes `sched` out); restoring under the event scheduler
        // re-derives any wake-ups a quantum-mode checkpoint lacks.
        self.wakes.persist(io);
        self.sched_stats.persist(io);
        if !io.saving() && self.sched_event {
            self.rebuild_wakes();
        }
        // Skipped on purpose: cfg/run (identity — must match at restore),
        // method_cdf (config-derived), event_bufs (drained every quantum),
        // faults_active/trace_active/sched_event (cached config flags),
        // hostprof (host wall-clock; never simulation state), external
        // (cluster snapshots are taken only at epoch boundaries, where
        // every dispatched arrival has been admitted and the queue is
        // provably empty — `next_arrival` then persists as the sentinel).
    }

    /// FNV-1a fingerprint of the complete mutable simulation state.
    ///
    /// Two engines with equal probe digests are in bit-identical states
    /// and will evolve identically; the reducer uses this to localize the
    /// first diverging quantum.
    pub fn probe_digest(&mut self) -> u64 {
        let mut d = WordDigest::new();
        self.persist_state(&mut d);
        d.value()
    }

    /// Per-subsystem FNV-1a digests of the mutable state: when two
    /// engines' probe digests differ, this localizes the mismatch to the
    /// subsystem that caused it (the reducer prints the differing
    /// sections alongside the witness window).
    pub fn state_section_digests(&mut self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        let mut dg = WordDigest::new();
        self.rng.persist(&mut dg);
        out.push(("rng", dg.value()));
        let mut dg = WordDigest::new();
        self.clock.persist(&mut dg);
        self.next_arrival.0.persist(&mut dg);
        self.next_arrival.1.persist(&mut dg);
        out.push(("clock", dg.value()));
        let mut dg = WordDigest::new();
        snap::persist_vec(&mut dg, &mut self.tasks);
        snap::persist_slice(&mut dg, &mut self.ready);
        self.pending_workorders.persist(&mut dg);
        snap::persist_opt(&mut dg, &mut self.gc);
        out.push(("tasks", dg.value()));
        let mut dg = WordDigest::new();
        self.jit_backlog_modeled.persist(&mut dg);
        for row in &mut self.gens {
            snap::persist_slice(&mut dg, row);
        }
        out.push(("gens", dg.value()));
        let mut dg = WordDigest::new();
        self.correlation_seq.persist(&mut dg);
        self.outstanding_io.persist(&mut dg);
        self.quantum_counter.persist(&mut dg);
        snap::persist_opt_with(&mut dg, &mut self.steady_base, jas_cpu::CounterFile::new);
        out.push(("bookkeeping", dg.value()));
        let mut dg = WordDigest::new();
        self.hpm.persist(&mut dg);
        out.push(("hpm", dg.value()));
        let mut dg = WordDigest::new();
        self.tprof.persist(&mut dg);
        out.push(("tprof", dg.value()));
        let mut dg = WordDigest::new();
        self.vmstat.persist(&mut dg);
        out.push(("vmstat", dg.value()));
        let mut dg = WordDigest::new();
        self.vgc.persist(&mut dg);
        out.push(("vgc", dg.value()));
        let mut dg = WordDigest::new();
        self.metrics.persist(&mut dg);
        self.completed_requests.persist(&mut dg);
        self.aborted_requests.persist(&mut dg);
        self.frontend_completed.persist(&mut dg);
        self.frontend_aborted.persist(&mut dg);
        out.push(("metrics", dg.value()));
        let mut dg = WordDigest::new();
        self.injector.persist(&mut dg);
        self.breaker.persist(&mut dg);
        self.faultmon.persist(&mut dg);
        out.push(("faults", dg.value()));
        let mut dg = WordDigest::new();
        self.tracer.persist(&mut dg);
        out.push(("tracer", dg.value()));
        let mut dg = WordDigest::new();
        self.machine.persist(&mut dg);
        out.push(("machine", dg.value()));
        let mut dg = WordDigest::new();
        self.jvm.persist(&mut dg);
        out.push(("jvm", dg.value()));
        let mut dg = WordDigest::new();
        self.db.persist(&mut dg);
        out.push(("db", dg.value()));
        let mut dg = WordDigest::new();
        self.appserver.persist(&mut dg);
        out.push(("appserver", dg.value()));
        let mut dg = WordDigest::new();
        self.scenario.persist_state(&mut dg);
        out.push(("scenario", dg.value()));
        let mut dg = WordDigest::new();
        snap::persist_opt(&mut dg, &mut self.recorder);
        out.push(("recorder", dg.value()));
        let mut dg = WordDigest::new();
        self.wakes.persist(&mut dg);
        self.sched_stats.persist(&mut dg);
        out.push(("sched", dg.value()));
        out
    }

    /// FNV-1a fingerprint of the machine-wide HPM counter totals, the
    /// cheap end-of-run identity check used by `replay-smoke`.
    #[must_use]
    pub fn hpm_digest(&self) -> u64 {
        let mut totals = self.machine.total_counters();
        let mut d = WordDigest::new();
        totals.persist(&mut d);
        d.value()
    }

    /// Runs quantum-by-quantum until the clock reaches `until` (clamped to
    /// the plan end). Unlike [`Engine::run_to_end`] this does not close the
    /// instrument windows, so the run can be resumed — or checkpointed.
    pub fn run_to(&mut self, until: SimTime) {
        let until = until.min(self.run.end());
        self.advance_to(until);
    }

    /// The far-future instant standing in for "no external arrival
    /// queued": late enough that neither the idle predicate nor wake
    /// registration ever sees it as due.
    const NO_ARRIVAL: SimTime = SimTime::from_nanos(u64::MAX);

    /// Switches the engine to external-arrival mode (cluster dispatch):
    /// the scenario keeps compiling request plans, but arrivals come
    /// exclusively from [`Engine::push_external_arrival`]. The arrival
    /// drawn at construction is discarded — in a cluster the front-end
    /// load balancer owns the arrival process.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already advanced.
    pub fn enable_external_arrivals(&mut self) {
        assert_eq!(
            self.clock,
            SimTime::ZERO,
            "external-arrival mode must be enabled before the first quantum"
        );
        self.external = Some(VecDeque::new());
        // jas-lint: allow(D012, reason = "the sentinel only moves the arrival later; the standing wake is re-registered at every scheduler decision")
        self.next_arrival = (Engine::NO_ARRIVAL, RequestKind::Browse);
    }

    /// Queues one dispatched request to arrive at `at` (external-arrival
    /// mode only). Insertion keeps the queue time-sorted, so the load
    /// balancer may interleave redispatches behind already-queued work.
    ///
    /// # Panics
    ///
    /// Panics if external-arrival mode is off or `at` is in the past.
    // jas-lint: allow(D012, reason = "called between quanta; the standing arrival wake is re-registered at every scheduler decision")
    pub fn push_external_arrival(&mut self, at: SimTime, kind: RequestKind) {
        assert!(at >= self.clock, "arrival scheduled in the past");
        let queue = self
            .external
            .as_mut()
            .expect("push_external_arrival requires external-arrival mode");
        let pos = queue.partition_point(|&(t, _)| t <= at);
        queue.insert(pos, (at, kind));
        self.next_arrival = *queue.front().expect("just inserted");
    }

    /// External arrivals queued but not yet admitted (external-arrival
    /// mode only; zero otherwise).
    #[must_use]
    pub fn external_arrivals_queued(&self) -> usize {
        self.external.as_ref().map_or(0, VecDeque::len)
    }

    /// Requests currently in flight: admitted tasks that have neither
    /// completed nor aborted. The cluster load balancer uses this for
    /// least-connection dispatch and admission control.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.tasks
            .iter()
            .filter(|t| t.state != TaskState::Done)
            .count() as u64
    }

    /// Starts recording arrivals and compiled plans for later replay.
    ///
    /// Must be called before the first quantum: the arrival drawn during
    /// construction is re-recorded here so the log is complete from tick
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already advanced.
    pub fn start_recording(&mut self) {
        assert_eq!(
            self.clock,
            SimTime::ZERO,
            "recording must start before the first quantum"
        );
        let mut log = ReplayLog::default();
        log.arrivals.push((
            self.next_arrival.0.saturating_since(SimTime::ZERO),
            self.next_arrival.1,
        ));
        self.recorder = Some(log);
    }

    /// Takes the recorded request stream, ending recording.
    pub fn take_recording(&mut self) -> Option<ReplayLog> {
        self.recorder.take()
    }

    /// Replaces the configured workload generator with a recorded stream.
    ///
    /// The engine must be freshly constructed: the real scenario has
    /// already seeded the DB schema and warmed the session store, and the
    /// replay log supplies everything the generator would have produced
    /// from tick zero on.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already advanced.
    pub fn arm_replay(&mut self, log: ReplayLog) {
        assert_eq!(
            self.clock,
            SimTime::ZERO,
            "replay must be armed before the first quantum"
        );
        let mut scenario = ReplayScenario::new(log);
        let (gap, kind) = scenario.next_arrival();
        self.next_arrival = (SimTime::ZERO + gap, kind);
        self.scenario = Box::new(scenario);
    }

    /// The configured run plan (checkpoint tooling needs the end time).
    #[must_use]
    pub fn plan(&self) -> &RunPlan {
        &self.run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_engine() -> Engine {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        // Shrink the heap so GC cycles fit inside the quick run.
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        Engine::new(cfg, RunPlan::quick())
    }

    #[test]
    fn engine_completes_requests() {
        let mut e = quick_engine();
        e.run_to_end();
        assert!(
            e.completed_requests() > 100,
            "completed {}",
            e.completed_requests()
        );
        assert!(e.metrics().jops() > 0.0);
    }

    #[test]
    fn all_request_kinds_complete() {
        let mut e = quick_engine();
        e.run_to_end();
        for kind in RequestKind::ALL {
            assert!(
                e.metrics().completed(kind) > 0,
                "no completions of {kind:?}"
            );
        }
    }

    #[test]
    fn hpm_sees_instructions() {
        let mut e = quick_engine();
        e.run_to_end();
        let total = e.machine().total_counters();
        assert!(total.get(jas_cpu::HpmEvent::InstCompleted) > 100_000);
        assert!(total.cpi().unwrap() > 1.0);
    }

    #[test]
    fn gc_happens_and_is_logged() {
        let mut e = quick_engine();
        e.run_to_end();
        assert!(e.jvm().gc_count() > 0, "no GC in the run");
        assert_eq!(e.vgc().entries().len() as u64, e.jvm().gc_count());
    }

    #[test]
    fn tprof_covers_components() {
        let mut e = quick_engine();
        e.run_to_end();
        assert!(e.tprof().total_ticks() > 0);
        assert!(e.tprof().component_share(Component::Kernel) > 0.0);
        assert!(e.tprof().component_share(Component::Database) > 0.0);
    }

    #[test]
    fn vmstat_accounts_the_steady_window() {
        let mut e = quick_engine();
        e.run_to_end();
        let u = e.vmstat().utilization();
        let total = u.user + u.system + u.iowait + u.idle;
        assert!((total - 1.0).abs() < 0.02, "fractions {total}");
        assert!(u.user > 0.0);
        assert!(u.system > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let mut a = quick_engine();
        let mut b = quick_engine();
        a.run_to_end();
        b.run_to_end();
        assert_eq!(a.completed_requests(), b.completed_requests());
        assert_eq!(
            a.machine().total_counters().get(jas_cpu::HpmEvent::Cycles),
            b.machine().total_counters().get(jas_cpu::HpmEvent::Cycles)
        );
        assert_eq!(a.jvm().gc_count(), b.jvm().gc_count());
    }

    /// Thread count must be invisible in the results: every per-core HPM
    /// counter is bit-identical between serial and parallel execution.
    #[test]
    fn threads_do_not_change_results() {
        let serial = {
            let mut e = quick_engine();
            e.run_to_end();
            e
        };
        for threads in [2usize, 4, 8] {
            let mut cfg = SutConfig::at_ir(10);
            cfg.machine.frequency_hz = 100_000.0;
            cfg.jvm.heap.capacity = 8 << 20;
            cfg.jvm.live_target = 2 << 20;
            cfg.threads = threads;
            let mut e = Engine::new(cfg, RunPlan::quick());
            e.run_to_end();
            assert_eq!(
                serial.completed_requests(),
                e.completed_requests(),
                "completions diverge at --threads {threads}"
            );
            for core in 0..serial.machine().cores() {
                assert_eq!(
                    serial.machine().counters(core),
                    e.machine().counters(core),
                    "core {core} counters diverge at --threads {threads}"
                );
            }
        }
    }

    /// The event scheduler must be an exact drop-in: every state section
    /// except its own heap/counters is bit-identical to the quantum
    /// scheduler's at end of run.
    #[test]
    fn event_scheduler_is_bit_identical_on_a_quick_run() {
        let mut quantum = quick_engine();
        quantum.run_to_end();
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        cfg.sched = SchedMode::Event;
        let mut event = Engine::new(cfg, RunPlan::quick());
        event.run_to_end();
        assert_eq!(event.hpm_digest(), quantum.hpm_digest());
        assert_eq!(event.completed_requests(), quantum.completed_requests());
        for ((name_q, dig_q), (name_e, dig_e)) in quantum
            .state_section_digests()
            .into_iter()
            .zip(event.state_section_digests())
        {
            assert_eq!(name_q, name_e);
            if name_q == "sched" {
                continue; // the wake heap itself differs by construction
            }
            assert_eq!(dig_q, dig_e, "section '{name_q}' diverged");
        }
    }

    /// Under a light load on a fast machine the event scheduler actually
    /// skips quanta — and still lands on identical results.
    #[test]
    fn event_scheduler_skips_idle_quanta() {
        let idle_cfg = || {
            let mut cfg = SutConfig::at_ir(1);
            cfg.machine.frequency_hz = 50_000_000.0;
            cfg
        };
        let mut quantum = Engine::new(idle_cfg(), RunPlan::quick());
        quantum.run_to_end();
        let mut cfg = idle_cfg();
        cfg.sched = SchedMode::Event;
        let mut event = Engine::new(cfg, RunPlan::quick());
        event.run_to_end();
        let stats = event.sched_stats();
        assert!(
            stats.idle_ticks_skipped > 0,
            "a near-idle run must skip quanta: {stats:?}"
        );
        assert_eq!(
            stats.total_ticks(),
            quantum.sched_stats().quanta_executed,
            "skipped + executed must cover the whole run"
        );
        assert!(stats.heap_high_water > 0);
        assert_eq!(event.hpm_digest(), quantum.hpm_digest());
        assert_eq!(event.completed_requests(), quantum.completed_requests());
        assert_eq!(event.steady_counters(), quantum.steady_counters());
    }

    /// A fault plan covering every kind, inside `RunPlan::quick`'s 45 s.
    fn storm_config() -> SutConfig {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        cfg.faults.plan = jas_faults::FaultPlan::parse(
            "db-lock@10-25:0.35,db-io@12-30:0.25,jms-redeliver@8-30:0.5,\
             jms-dup@8-30:0.3,pool-seize@15-30:0.6,gc-storm@10-30:0.08",
        )
        .expect("valid spec");
        cfg
    }

    #[test]
    fn faulted_run_exercises_resilience_and_still_finishes() {
        let mut e = Engine::new(storm_config(), RunPlan::quick());
        e.run_to_end();
        let c = *e.fault_counters();
        assert!(c.total_injected() > 0, "storm fired nothing: {c:?}");
        assert!(c.retries > 0, "no retries under a db-fault storm: {c:?}");
        assert!(
            c.injected[FaultKind::GcStorm.index()] > 0,
            "gc storms never rolled: {c:?}"
        );
        assert!(!e.fault_log().is_empty());
        assert!(
            e.completed_requests() > 50,
            "the stack should keep serving through the storm, completed {}",
            e.completed_requests()
        );
        let v = e.metrics().verdict();
        assert!(v.degraded, "retries/errors must mark the run degraded");
        assert!(
            !e.fault_monitor().active_series().is_empty(),
            "the fault monitor saw nothing move"
        );
    }

    #[test]
    fn faulted_runs_are_thread_invariant() {
        let serial = {
            let mut e = Engine::new(storm_config(), RunPlan::quick());
            e.run_to_end();
            e
        };
        let mut cfg = storm_config();
        cfg.threads = 4;
        let mut parallel = Engine::new(cfg, RunPlan::quick());
        parallel.run_to_end();
        assert_eq!(serial.fault_log().digest(), parallel.fault_log().digest());
        assert_eq!(serial.fault_counters(), parallel.fault_counters());
        assert_eq!(serial.completed_requests(), parallel.completed_requests());
        assert_eq!(serial.aborted_requests(), parallel.aborted_requests());
        assert_eq!(serial.steady_counters(), parallel.steady_counters());
    }

    #[test]
    fn empty_plan_keeps_resilience_machinery_cold() {
        let mut e = quick_engine();
        e.run_to_end();
        assert_eq!(*e.fault_counters(), jas_faults::FaultCounters::default());
        assert!(e.fault_log().is_empty());
        assert!(e.fault_monitor().active_series().is_empty());
    }

    #[test]
    fn deadlines_fail_requests_when_armed() {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        // A zero-rate window arms the plan without firing anything, so the
        // deadline machinery alone is under test.
        cfg.faults.plan = jas_faults::FaultPlan::parse("db-lock@0-1:0").expect("valid spec");
        cfg.faults.deadline = Some(SimDuration::from_millis(40));
        let mut e = Engine::new(cfg, RunPlan::quick());
        e.run_to_end();
        let c = *e.fault_counters();
        assert!(
            c.deadline_exceeded > 0,
            "a 40 ms deadline must fail some multi-quantum requests: {c:?}"
        );
        assert_eq!(c.errors, c.deadline_exceeded, "only deadlines failed");
        assert!(e.aborted_requests() >= c.deadline_exceeded);
    }
}
