//! The execution engine: couples the workload, application server, JVM,
//! database, and CPU model on a shared simulated timeline.
//!
//! Time advances in fixed scheduler quanta. Each quantum, every core runs
//! either the garbage collector (stop-the-world), a request task's current
//! plan step, background JIT compilation, or idles. Compute steps are
//! executed as real micro-op streams on the machine model, so transaction
//! service time feeds back from achieved IPC: more cache misses → higher
//! CPI → longer service → deeper queues → higher response times. This
//! closed loop is what lets one simulation regenerate every figure of the
//! paper at once.

use crate::config::{RunPlan, ScenarioKind, SutConfig};
use crate::profiles::{profile_for, FootprintConfig};
use jas_appserver::{Admission, AppServer, Message, PlanStep, PoolKind, TxPlan};
use jas_cpu::{Machine, StreamGen};
use jas_db::{Database, DbError};
use jas_hpm::{CpuState, GcLogEntry, OmniscientHpm, Tprof, VerboseGc, Vmstat};
use jas_jvm::{Component, GcCycle, Jvm, LockOutcome, MethodId, TxHandle};
use jas_simkernel::{Rng, SimDuration, SimTime};
use jas_workload::{JasScenario, Metrics, RequestKind, Scenario, TradeScenario};
use std::collections::VecDeque;

fn comp_index(c: Component) -> usize {
    Component::ALL
        .iter()
        .position(|&x| x == c)
        .expect("component is in ALL")
}

/// Per-component GC work-cost constants (full-scale instructions), chosen
/// so a ~200 MB live set marks in the paper's 300–400 ms band.
const MARK_INSTR_PER_OBJECT: f64 = 255.0;
const MARK_INSTR_PER_EDGE: f64 = 56.0;
const MARK_INSTR_PER_BYTE: f64 = 0.32;
const SWEEP_INSTR_PER_OBJECT: f64 = 14.0;
const SWEEP_INSTR_PER_BYTE: f64 = 0.06;
const COMPACT_INSTR_PER_BYTE: f64 = 1.0;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    Ready,
    BlockedUntil(SimTime),
    WaitingPool,
    Done,
}

#[derive(Debug)]
struct Task {
    kind: RequestKind,
    plan: TxPlan,
    step: usize,
    remaining_modeled: f64,
    extra: VecDeque<(Component, f64)>,
    issued: SimTime,
    jvm_tx: Option<TxHandle>,
    pool: Option<PoolKind>,
    state: TaskState,
    /// Whether the current `BlockedUntil` wait is a disk I/O (drives the
    /// vmstat I/O-wait classification).
    io_blocked: bool,
    /// Quantum stamp preventing one task from running on two cores within
    /// the same quantum.
    last_run_quantum: u64,
}

struct GcPause {
    remaining_modeled: f64,
    mark_fraction: f64,
    start: SimTime,
    cycle: GcCycle,
}

/// The coupled system-under-test simulation.
pub struct Engine {
    cfg: SutConfig,
    run: RunPlan,
    machine: Machine,
    jvm: Jvm,
    db: Database,
    appserver: AppServer,
    scenario: Box<dyn Scenario>,
    rng: Rng,
    clock: SimTime,
    next_arrival: (SimTime, RequestKind),
    tasks: Vec<Task>,
    /// Per-core ready queues: tasks have core affinity (idx % cores) so
    /// their hot cache state stays on one L1; idle cores steal.
    ready: Vec<VecDeque<usize>>,
    pending_workorders: u64,
    gc: Option<GcPause>,
    jit_backlog_modeled: f64,
    /// One generator per `(component, core)` pair: cores carry distinct
    /// salts so their thread-local data does not falsely share.
    gens: Vec<Vec<StreamGen>>,
    method_cdf: Vec<(Vec<MethodId>, Vec<f64>)>,
    correlation_seq: u64,
    outstanding_io: u32,
    quantum_counter: u64,
    steady_base: Option<jas_cpu::CounterFile>,
    // Instruments.
    hpm: OmniscientHpm,
    tprof: Tprof,
    vmstat: Vmstat,
    vgc: VerboseGc,
    metrics: Metrics,
    completed_requests: u64,
    aborted_requests: u64,
}

impl Engine {
    /// Builds the system under test and its instruments.
    #[must_use]
    pub fn new(cfg: SutConfig, run: RunPlan) -> Self {
        let mut rng = Rng::new(cfg.seed);
        let machine = Machine::new(cfg.machine.clone());
        let jvm = Jvm::new(cfg.jvm);
        let mut db = Database::new(cfg.db);
        let scenario: Box<dyn Scenario> = match cfg.scenario {
            ScenarioKind::JAppServer => Box::new(JasScenario::new(&mut db, cfg.ir, cfg.seed)),
            ScenarioKind::TradeLike => Box::new(TradeScenario::new(&mut db, cfg.ir, cfg.seed)),
        };
        let appserver = AppServer::new(cfg.appserver);
        let fp = FootprintConfig {
            heap_bytes: cfg.jvm.heap.capacity,
            jit_code_bytes: 10 << 20,
            buffer_pool_bytes: cfg.db.pool_pages as u64 * cfg.db.page_bytes,
        };
        let cores = cfg.machine.topology.cores();
        let gens = Component::ALL
            .iter()
            .map(|&c| {
                (0..cores)
                    .map(|core| {
                        StreamGen::new(
                            profile_for(c, &fp),
                            rng.fork(&format!("{}/{core}", c.name())),
                            core as u64 + 1,
                        )
                    })
                    .collect()
            })
            .collect();
        let method_cdf = Component::ALL
            .iter()
            .map(|&c| {
                let ids = jvm.registry().of_component(c);
                let mut acc = 0.0;
                let cdf = ids
                    .iter()
                    .map(|&id| {
                        acc += jvm.registry().get(id).weight;
                        acc
                    })
                    .collect();
                (ids, cdf)
            })
            .collect();
        let steady_start = run.steady_start();
        let end = run.end();
        let hpm = OmniscientHpm::new(run.hpm_period);
        let metrics = Metrics::new(run.throughput_bin, steady_start, end);
        let mut engine = Engine {
            cfg,
            run,
            machine,
            jvm,
            db,
            appserver,
            scenario,
            rng,
            clock: SimTime::ZERO,
            next_arrival: (SimTime::ZERO, RequestKind::Browse),
            tasks: Vec::new(),
            ready: vec![VecDeque::new(); cores],
            pending_workorders: 0,
            gc: None,
            jit_backlog_modeled: 0.0,
            gens,
            method_cdf,
            correlation_seq: 0,
            outstanding_io: 0,
            quantum_counter: 0,
            steady_base: None,
            hpm,
            tprof: Tprof::new(),
            vmstat: Vmstat::new(steady_start),
            vgc: VerboseGc::new(),
            metrics,
            completed_requests: 0,
            aborted_requests: 0,
        };
        // Pre-warm the session store so the live set starts near its
        // steady-state target (the paper measures after a long warm-up; a
        // cold live set would make used-heap growth reflect session ramp
        // rather than dark matter).
        let target = engine.cfg.jvm.live_target * 4 / 5;
        let mut warm_rng = engine.rng.fork("session-warmup");
        while engine.jvm.heap().live_bytes() < target {
            engine.jvm.touch_session(&mut warm_rng);
        }
        let _ = engine.jvm.take_gc_cycles(); // warm-up GCs are not measured
        let (gap, kind) = engine.scenario.next_arrival();
        engine.next_arrival = (SimTime::ZERO + gap, kind);
        engine
    }

    /// The simulation clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Runs the whole configured plan (ramp-up + steady state).
    pub fn run_to_end(&mut self) {
        let end = self.run.end();
        while self.clock < end {
            self.step_quantum();
        }
        self.hpm.finish(end);
    }

    /// Enqueues a task on its affinity core's ready queue.
    fn enqueue(&mut self, task_idx: usize) {
        let core = task_idx % self.ready.len();
        self.ready[core].push_back(task_idx);
    }

    /// Pops the next task for `core`: own queue first, else steal from the
    /// deepest other queue.
    fn dequeue_for(&mut self, core: usize) -> Option<usize> {
        if let Some(t) = self.ready[core].pop_front() {
            return Some(t);
        }
        let victim = (0..self.ready.len())
            .filter(|&q| q != core)
            .max_by_key(|&q| self.ready[q].len())?;
        self.ready[victim].pop_front()
    }

    fn sample_method(&mut self, component: Component) -> Option<MethodId> {
        let (ids, cdf) = &self.method_cdf[comp_index(component)];
        let total = *cdf.last()?;
        if total <= 0.0 {
            return None;
        }
        let x = self.rng.next_f64() * total;
        let i = cdf.partition_point(|&c| c < x).min(ids.len() - 1);
        Some(ids[i])
    }

    /// Advances exactly one scheduler quantum.
    pub fn step_quantum(&mut self) {
        let quantum = self.cfg.quantum;
        let quantum_end = self.clock + quantum;

        // 1. Admit arrivals due in this quantum.
        while self.next_arrival.0 < quantum_end {
            let (at, kind) = self.next_arrival;
            self.admit(kind, at.max(self.clock));
            let (gap, next_kind) = self.scenario.next_arrival();
            self.next_arrival = (self.next_arrival.0 + gap, next_kind);
        }

        // 2. Unblock tasks whose waits expired.
        for i in 0..self.tasks.len() {
            if let TaskState::BlockedUntil(t) = self.tasks[i].state {
                if t <= self.clock {
                    self.tasks[i].state = TaskState::Ready;
                    if self.tasks[i].io_blocked {
                        self.tasks[i].io_blocked = false;
                        self.outstanding_io = self.outstanding_io.saturating_sub(1);
                    }
                    self.enqueue(i);
                }
            }
        }

        // 3. Run each core for the quantum.
        let cores = self.machine.cores();
        let budget = self.cfg.machine.frequency_hz * quantum.as_secs_f64();
        let freq = self.cfg.machine.frequency_hz;
        let in_steady = self.clock >= self.run.steady_start();
        for core in 0..cores {
            let mut cycles_left = budget;
            let mut user_cycles = 0.0;
            let mut sys_cycles = 0.0;
            if self.gc.is_some() {
                let used = self.run_gc_slice(core, cycles_left, in_steady);
                user_cycles += used;
                cycles_left -= used;
            }
            // Task execution (only when no stop-the-world pause is active).
            while self.gc.is_none() && cycles_left > budget * 0.02 {
                let Some(task_idx) = self.dequeue_for(core) else { break };
                if self.tasks[task_idx].last_run_quantum == self.quantum_counter {
                    // Already ran this quantum on another core; keep it for
                    // the next quantum rather than spreading one request
                    // over several cores.
                    let q = core % self.ready.len();
                    self.ready[q].push_front(task_idx);
                    break;
                }
                self.tasks[task_idx].last_run_quantum = self.quantum_counter;
                let (used_user, used_sys) =
                    self.run_task_slice(task_idx, core, cycles_left, in_steady);
                user_cycles += used_user;
                sys_cycles += used_sys;
                cycles_left -= used_user + used_sys;
                // A GC may have been triggered mid-task.
                if self.gc.is_some() {
                    let used = self.run_gc_slice(core, cycles_left, in_steady);
                    user_cycles += used;
                    cycles_left -= used;
                    break;
                }
            }
            // Idle capacity goes to background JIT compilation.
            if self.gc.is_none() && cycles_left > budget * 0.05 && self.jit_backlog_modeled > 1.0 {
                let used = self.run_jit_slice(core, cycles_left, in_steady);
                user_cycles += used;
            }
            if in_steady {
                let user_t = SimDuration::from_secs_f64(user_cycles / freq);
                let sys_t = SimDuration::from_secs_f64(sys_cycles / freq);
                self.vmstat.account(CpuState::User, user_t);
                self.vmstat.account(CpuState::System, sys_t);
                let busy = user_t + sys_t;
                let idle = if busy >= quantum { SimDuration::ZERO } else { quantum - busy };
                if self.outstanding_io > 0 {
                    self.vmstat.account(CpuState::IoWait, idle);
                } else {
                    self.vmstat.account(CpuState::Idle, idle);
                }
            }
        }

        // 4. Advance the clock and feed the samplers.
        self.clock = quantum_end;
        self.quantum_counter += 1;
        self.hpm.observe(self.clock, &self.machine.total_counters());
        if self.steady_base.is_none() && self.clock >= self.run.steady_start() {
            self.steady_base = Some(self.machine.total_counters());
        }
    }

    fn admit(&mut self, kind: RequestKind, at: SimTime) {
        let plan = self
            .scenario
            .build(kind, self.appserver.work_order_queue());
        let pool = if kind.is_web() {
            PoolKind::WebContainer
        } else {
            PoolKind::Orb
        };
        let idx = self.spawn_task(kind, plan, Some(pool), at);
        match self.appserver.acquire(pool, idx as u64) {
            Admission::Granted => {
                self.tasks[idx].state = TaskState::Ready;
                self.enqueue(idx);
            }
            Admission::Queued { .. } => {
                self.tasks[idx].state = TaskState::WaitingPool;
            }
        }
    }

    fn spawn_task(
        &mut self,
        kind: RequestKind,
        plan: TxPlan,
        pool: Option<PoolKind>,
        at: SimTime,
    ) -> usize {
        // Kernel-mode wrapper: network receive before, response send after.
        let total = plan.compute_instructions();
        let kernel_each = total * self.cfg.kernel_overhead / 2.0;
        let mut wrapped = TxPlan::new();
        wrapped.push(PlanStep::Compute {
            component: Component::Kernel,
            instructions: kernel_each,
        });
        wrapped.extend(plan.steps);
        wrapped.push(PlanStep::Compute {
            component: Component::Kernel,
            instructions: kernel_each,
        });
        self.tasks.push(Task {
            kind,
            plan: wrapped,
            step: 0,
            remaining_modeled: 0.0,
            extra: VecDeque::new(),
            issued: at,
            jvm_tx: None,
            pool,
            state: TaskState::Ready,
            io_blocked: false,
            last_run_quantum: u64::MAX,
        });
        self.tasks.len() - 1
    }

    /// Executes GC work on `core`; returns cycles used.
    fn run_gc_slice(&mut self, core: usize, cycles_budget: f64, in_steady: bool) -> f64 {
        let (used, executed, remaining) = {
            let Some(gc) = self.gc.as_mut() else { return 0.0 };
            let mut used = 0.0;
            let mut executed = 0.0;
            let gen = &mut self.gens[comp_index(Component::Gc)][core];
            while used < cycles_budget && gc.remaining_modeled > executed {
                let (ia, op) = gen.next_op();
                used += self.machine.exec(core, ia, op);
                executed += 1.0;
            }
            gc.remaining_modeled -= executed;
            (used, executed, gc.remaining_modeled)
        };
        if in_steady && executed >= 1.0 {
            if let Some(m) = self.sample_method(Component::Gc) {
                self.tprof.record(self.jvm.registry(), m, executed as u64);
            }
        }
        if remaining <= 0.0 {
            let gc = self.gc.take().expect("gc pause active");
            let pause = self.clock + self.cfg.quantum - gc.start;
            let mark = SimDuration::from_secs_f64(pause.as_secs_f64() * gc.mark_fraction);
            self.vgc.push(GcLogEntry {
                at: gc.start,
                pause,
                mark,
                sweep: pause - mark,
                compacted: gc.cycle.report.compacted,
                free_after: gc.cycle.report.free_after,
                used_after: gc.cycle.used_after,
                cycle: gc.cycle,
            });
        }
        used
    }

    /// Executes background JIT compilation on `core`; returns cycles used.
    fn run_jit_slice(&mut self, core: usize, cycles_budget: f64, in_steady: bool) -> f64 {
        let mut used = 0.0;
        let mut executed = 0.0;
        let gen = &mut self.gens[comp_index(Component::JitCompiler)][core];
        while used < cycles_budget && self.jit_backlog_modeled > executed {
            let (ia, op) = gen.next_op();
            used += self.machine.exec(core, ia, op);
            executed += 1.0;
        }
        self.jit_backlog_modeled -= executed;
        if in_steady && executed >= 1.0 {
            if let Some(m) = self.sample_method(Component::JitCompiler) {
                self.tprof.record(self.jvm.registry(), m, executed as u64);
            }
        }
        used
    }

    /// Runs one task on `core` within `cycles_budget`; returns
    /// `(user_cycles, system_cycles)` consumed.
    fn run_task_slice(
        &mut self,
        task_idx: usize,
        core: usize,
        cycles_budget: f64,
        in_steady: bool,
    ) -> (f64, f64) {
        let mut user = 0.0;
        let mut sys = 0.0;
        loop {
            let budget_left = cycles_budget - user - sys;
            if budget_left <= cycles_budget * 0.02 {
                // Quantum exhausted; task stays ready.
                self.enqueue(task_idx);
                return (user, sys);
            }
            // Run pending compute (from the current step or extra work).
            if self.tasks[task_idx].remaining_modeled > 0.0 {
                let component = self.current_component(task_idx);
                let (used, executed) = self.exec_stream(core, component, budget_left, {
                    self.tasks[task_idx].remaining_modeled
                });
                self.tasks[task_idx].remaining_modeled -= executed;
                if in_steady {
                    if let Some(m) = self.sample_method(component) {
                        self.tprof.record(self.jvm.registry(), m, executed as u64);
                        let work = self.jvm.record_invocations(m, 10);
                        self.jit_backlog_modeled += work / self.cfg.instruction_scale();
                    }
                }
                if component == Component::Kernel {
                    sys += used;
                } else {
                    user += used;
                }
                if self.tasks[task_idx].remaining_modeled > 0.0 {
                    continue; // budget ran out mid-step
                }
                self.advance_past_compute(task_idx);
            }
            // Interpret steps until the next compute (or completion/block).
            match self.interpret_until_compute(task_idx) {
                StepOutcome::Compute => {}
                StepOutcome::Blocked => return (user, sys),
                StepOutcome::Finished => {
                    self.complete_task(task_idx);
                    return (user, sys);
                }
            }
        }
    }

    fn current_component(&self, task_idx: usize) -> Component {
        let t = &self.tasks[task_idx];
        if let Some(&(c, _)) = t.extra.front() {
            return c;
        }
        match t.plan.steps.get(t.step) {
            Some(PlanStep::Compute { component, .. }) => *component,
            _ => Component::AppServer,
        }
    }

    /// Executes up to `max_instr` modeled instructions of `component`'s
    /// stream, bounded by `cycles_budget`. Returns `(cycles, instructions)`.
    fn exec_stream(
        &mut self,
        core: usize,
        component: Component,
        cycles_budget: f64,
        max_instr: f64,
    ) -> (f64, f64) {
        let gen = &mut self.gens[comp_index(component)][core];
        let mut used = 0.0;
        let mut executed = 0.0;
        while used < cycles_budget && executed < max_instr {
            let (ia, op) = gen.next_op();
            used += self.machine.exec(core, ia, op);
            executed += 1.0;
        }
        (used, executed)
    }

    /// Moves past a completed compute step (either an `extra` entry or the
    /// plan's current step).
    fn advance_past_compute(&mut self, task_idx: usize) {
        let t = &mut self.tasks[task_idx];
        if t.extra.pop_front().is_none() {
            t.step += 1;
        }
        // Load the next pending compute if it is an extra entry.
        if let Some(&(_, instr)) = t.extra.front() {
            t.remaining_modeled = instr;
        }
    }

    /// Walks plan steps, applying side effects, until hitting a compute
    /// step (which is loaded into `remaining_modeled`), a blocking
    /// condition, or the end of the plan.
    fn interpret_until_compute(&mut self, task_idx: usize) -> StepOutcome {
        loop {
            if let Some(&(_, instr)) = self.tasks[task_idx].extra.front() {
                self.tasks[task_idx].remaining_modeled = instr;
                return StepOutcome::Compute;
            }
            let step = {
                let t = &self.tasks[task_idx];
                match t.plan.steps.get(t.step) {
                    Some(s) => s.clone(),
                    None => return StepOutcome::Finished,
                }
            };
            match step {
                PlanStep::Compute { instructions, .. } => {
                    self.tasks[task_idx].remaining_modeled =
                        instructions / self.cfg.instruction_scale();
                    return StepOutcome::Compute;
                }
                PlanStep::Allocate { class, count } => {
                    let tx = self.ensure_jvm_tx(task_idx);
                    let n = count * self.cfg.alloc_multiplier;
                    for _ in 0..n {
                        self.jvm.alloc_in_tx(tx, class, &mut self.rng);
                    }
                    self.drain_gc_cycles();
                    self.tasks[task_idx].step += 1;
                    if self.gc.is_some() {
                        // Stop-the-world: the task pauses with everyone else
                        // but stays ready.
                        self.enqueue(task_idx);
                        return StepOutcome::Blocked;
                    }
                }
                PlanStep::SessionTouch => {
                    self.jvm.touch_session(&mut self.rng);
                    self.drain_gc_cycles();
                    self.tasks[task_idx].step += 1;
                    if self.gc.is_some() {
                        self.enqueue(task_idx);
                        return StepOutcome::Blocked;
                    }
                }
                PlanStep::Lock { monitor } => {
                    let outcome = self.jvm.lock(monitor, &mut self.rng);
                    self.tasks[task_idx].step += 1;
                    if let LockOutcome::OsBlock = outcome {
                        // Futex path: kernel work plus a short block.
                        self.tasks[task_idx].extra.push_back((
                            Component::Kernel,
                            12_000.0 / self.cfg.instruction_scale(),
                        ));
                        let until = self.clock + SimDuration::from_micros(500);
                        self.tasks[task_idx].state = TaskState::BlockedUntil(until);
                        return StepOutcome::Blocked;
                    }
                }
                PlanStep::Db { query } => {
                    // Each statement runs in its own short transaction:
                    // holding row locks across a whole multi-quantum plan
                    // under no-wait locking would livelock on hot rows (the
                    // real system holds row latches for microseconds, far
                    // below our scheduling resolution).
                    let txn = self.db.begin();
                    let result = self.db.execute(txn, query, self.clock);
                    match result {
                        Ok(report) => {
                            self.db.commit(txn);
                            let scale = self.cfg.instruction_scale();
                            let t = &mut self.tasks[task_idx];
                            t.step += 1;
                            t.extra.push_back((
                                Component::Database,
                                report.cpu_instructions / scale,
                            ));
                            if report.pool_misses > 0 {
                                t.extra.push_back((
                                    Component::Kernel,
                                    f64::from(report.pool_misses) * 8_000.0 / scale,
                                ));
                            }
                            if let Some(done) = report.io_done {
                                // RAM-disk I/O (tens of microseconds)
                                // completes within the slice; spinning-disk
                                // service times block the task, surfacing
                                // as I/O wait exactly as in the paper's
                                // hard-disk runs.
                                if done > self.clock + SimDuration::from_millis(2) {
                                    t.state = TaskState::BlockedUntil(done);
                                    t.io_blocked = true;
                                    self.outstanding_io += 1;
                                    return StepOutcome::Blocked;
                                }
                            }
                        }
                        Err(DbError::Conflict(_)) => {
                            // No-wait locking: release and retry shortly.
                            self.db.abort(txn);
                            let until = self.clock + SimDuration::from_millis(1);
                            self.tasks[task_idx].state = TaskState::BlockedUntil(until);
                            return StepOutcome::Blocked;
                        }
                        Err(_) => {
                            // Business-level anomaly (duplicate key on a
                            // retried insert, vanished row): abort the
                            // request.
                            self.db.abort(txn);
                            self.abort_task(task_idx);
                            return StepOutcome::Finished;
                        }
                    }
                }
                PlanStep::MqSend { queue, payload_bytes } => {
                    self.correlation_seq += 1;
                    let correlation = self.correlation_seq;
                    self.appserver.broker_mut().send(
                        queue,
                        Message {
                            correlation,
                            payload_bytes,
                        },
                    );
                    self.tasks[task_idx].step += 1;
                    self.maybe_spawn_workorders();
                }
                PlanStep::MqReceive { queue } => {
                    let _ = self.appserver.broker_mut().receive(queue);
                    self.pending_workorders = self.pending_workorders.saturating_sub(1);
                    self.tasks[task_idx].step += 1;
                }
            }
        }
    }

    fn ensure_jvm_tx(&mut self, task_idx: usize) -> TxHandle {
        if let Some(tx) = self.tasks[task_idx].jvm_tx {
            tx
        } else {
            let tx = self.jvm.begin_tx();
            self.tasks[task_idx].jvm_tx = Some(tx);
            tx
        }
    }

    fn drain_gc_cycles(&mut self) {
        for cycle in self.jvm.take_gc_cycles() {
            let scale = self.jvm.config().heap_scale as f64;
            let r = &cycle.report;
            let mark = (r.marked_objects as f64 * MARK_INSTR_PER_OBJECT
                + r.edges_traversed as f64 * MARK_INSTR_PER_EDGE
                + r.marked_bytes as f64 * MARK_INSTR_PER_BYTE)
                * scale;
            let sweep = ((r.marked_objects + r.swept_objects) as f64 * SWEEP_INSTR_PER_OBJECT
                + r.freed_bytes as f64 * SWEEP_INSTR_PER_BYTE)
                * scale;
            let compact = r.compact_moved_bytes as f64 * COMPACT_INSTR_PER_BYTE * scale;
            let total_real = mark + sweep + compact;
            let total_modeled = total_real / self.cfg.instruction_scale();
            self.gc = Some(GcPause {
                remaining_modeled: total_modeled,
                mark_fraction: mark / total_real.max(1.0),
                start: self.clock,
                cycle,
            });
        }
    }

    fn maybe_spawn_workorders(&mut self) {
        let queue = self.appserver.work_order_queue();
        while (self.appserver.broker().depth(queue) as u64) > self.pending_workorders {
            let idx = self.tasks.len();
            match self.appserver.acquire(PoolKind::JmsListener, idx as u64) {
                Admission::Granted => {
                    let plan = self.scenario.build(RequestKind::WorkOrder, queue);
                    let at = self.clock;
                    let idx = self.spawn_task(RequestKind::WorkOrder, plan, Some(PoolKind::JmsListener), at);
                    self.pending_workorders += 1;
                    self.enqueue(idx);
                }
                Admission::Queued { .. } => {
                    // Pool exhausted: cancel the reservation and try again
                    // when a listener frees up.
                    self.appserver.cancel_wait(PoolKind::JmsListener, idx as u64);
                    break;
                }
            }
        }
    }

    fn complete_task(&mut self, task_idx: usize) {
        self.finish_task(task_idx, true);
    }

    fn abort_task(&mut self, task_idx: usize) {
        self.finish_task(task_idx, false);
    }

    fn finish_task(&mut self, task_idx: usize, committed: bool) {
        let kind;
        let issued;
        {
            let t = &mut self.tasks[task_idx];
            kind = t.kind;
            issued = t.issued;
            t.state = TaskState::Done;
        }
        if let Some(tx) = self.tasks[task_idx].jvm_tx.take() {
            self.jvm.end_tx(tx);
        }
        if let Some(pool) = self.tasks[task_idx].pool.take() {
            if let Some(token) = self.appserver.release(pool) {
                let waiter = token as usize;
                if self.tasks[waiter].state == TaskState::WaitingPool {
                    self.tasks[waiter].state = TaskState::Ready;
                    self.enqueue(waiter);
                }
            }
            if pool == PoolKind::JmsListener {
                self.maybe_spawn_workorders();
            }
        }
        if committed {
            self.completed_requests += 1;
            self.metrics.record(kind, issued, self.clock);
        } else {
            self.aborted_requests += 1;
        }
    }

    // ---- Read-out accessors for the experiment layer. ----

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SutConfig {
        &self.cfg
    }

    /// The run plan in force.
    #[must_use]
    pub fn run_plan(&self) -> &RunPlan {
        &self.run
    }

    /// The machine model.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The JVM.
    #[must_use]
    pub fn jvm(&self) -> &Jvm {
        &self.jvm
    }

    /// The database.
    #[must_use]
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The application server.
    #[must_use]
    pub fn appserver(&self) -> &AppServer {
        &self.appserver
    }

    /// The running scenario's name.
    #[must_use]
    pub fn scenario_name(&self) -> &'static str {
        self.scenario.name()
    }

    /// The scenario's business label for a request slot.
    #[must_use]
    pub fn scenario_label(&self, kind: RequestKind) -> &'static str {
        self.scenario.label(kind)
    }

    /// The omniscient HPM sampler.
    #[must_use]
    pub fn hpm(&self) -> &OmniscientHpm {
        &self.hpm
    }

    /// The tick profiler.
    #[must_use]
    pub fn tprof(&self) -> &Tprof {
        &self.tprof
    }

    /// The utilization monitor.
    #[must_use]
    pub fn vmstat(&self) -> &Vmstat {
        &self.vmstat
    }

    /// The verbose-GC log.
    #[must_use]
    pub fn vgc(&self) -> &VerboseGc {
        &self.vgc
    }

    /// The workload metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Requests completed (committed) so far.
    #[must_use]
    pub fn completed_requests(&self) -> u64 {
        self.completed_requests
    }

    /// Requests aborted so far.
    #[must_use]
    pub fn aborted_requests(&self) -> u64 {
        self.aborted_requests
    }

    /// Consumes the engine, handing out the owned instruments that the
    /// artifact layer keeps (the rest is summarized before calling this).
    #[must_use]
    pub fn into_instruments(self) -> (OmniscientHpm, Tprof) {
        (self.hpm, self.tprof)
    }

    /// Machine-wide counter deltas accumulated during the steady-state
    /// window (machine totals minus the snapshot taken at steady start).
    /// Falls back to run totals before the window opens.
    #[must_use]
    pub fn steady_counters(&self) -> jas_cpu::CounterFile {
        let total = self.machine.total_counters();
        match &self.steady_base {
            Some(base) => total.delta_since(base),
            None => total,
        }
    }

    /// Fraction of a GC pause spent marking, from the most recent pause
    /// composition (`None` before the first completed GC).
    #[must_use]
    pub fn last_gc_mark_fraction(&self) -> Option<f64> {
        self.vgc.entries().last().map(|e| {
            e.mark.as_secs_f64() / (e.mark.as_secs_f64() + e.sweep.as_secs_f64()).max(1e-12)
        })
    }
}

enum StepOutcome {
    Compute,
    Blocked,
    Finished,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_engine() -> Engine {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        // Shrink the heap so GC cycles fit inside the quick run.
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        Engine::new(cfg, RunPlan::quick())
    }

    #[test]
    fn engine_completes_requests() {
        let mut e = quick_engine();
        e.run_to_end();
        assert!(e.completed_requests() > 100, "completed {}", e.completed_requests());
        assert!(e.metrics().jops() > 0.0);
    }

    #[test]
    fn all_request_kinds_complete() {
        let mut e = quick_engine();
        e.run_to_end();
        for kind in RequestKind::ALL {
            assert!(
                e.metrics().completed(kind) > 0,
                "no completions of {kind:?}"
            );
        }
    }

    #[test]
    fn hpm_sees_instructions() {
        let mut e = quick_engine();
        e.run_to_end();
        let total = e.machine().total_counters();
        assert!(total.get(jas_cpu::HpmEvent::InstCompleted) > 100_000);
        assert!(total.cpi().unwrap() > 1.0);
    }

    #[test]
    fn gc_happens_and_is_logged() {
        let mut e = quick_engine();
        e.run_to_end();
        assert!(e.jvm().gc_count() > 0, "no GC in the run");
        assert_eq!(e.vgc().entries().len() as u64, e.jvm().gc_count());
    }

    #[test]
    fn tprof_covers_components() {
        let mut e = quick_engine();
        e.run_to_end();
        assert!(e.tprof().total_ticks() > 0);
        assert!(e.tprof().component_share(Component::Kernel) > 0.0);
        assert!(e.tprof().component_share(Component::Database) > 0.0);
    }

    #[test]
    fn vmstat_accounts_the_steady_window() {
        let mut e = quick_engine();
        e.run_to_end();
        let u = e.vmstat().utilization();
        let total = u.user + u.system + u.iowait + u.idle;
        assert!((total - 1.0).abs() < 0.02, "fractions {total}");
        assert!(u.user > 0.0);
        assert!(u.system > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let mut a = quick_engine();
        let mut b = quick_engine();
        a.run_to_end();
        b.run_to_end();
        assert_eq!(a.completed_requests(), b.completed_requests());
        assert_eq!(
            a.machine().total_counters().get(jas_cpu::HpmEvent::Cycles),
            b.machine().total_counters().get(jas_cpu::HpmEvent::Cycles)
        );
        assert_eq!(a.jvm().gc_count(), b.jvm().gc_count());
    }
}
