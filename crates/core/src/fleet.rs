//! The production cluster node: an [`Engine`] in external-arrival mode
//! behind the `jas-cluster` load balancer (DESIGN.md §13).
//!
//! `--nodes 1` never reaches this module — the CLI runs the legacy
//! single-engine path, byte-identical to a build without the cluster
//! layer. For `--nodes N > 1`, [`run_cluster`] builds N independent
//! engine stacks (distinct seeds, same configuration shape), hands the
//! workload's arrival process to the LB, and returns fleet artifacts.

use crate::config::{RunPlan, SutConfig};
use crate::engine::Engine;
use jas_cluster::{
    AutoscaleConfig, Cluster, ClusterConfig, ClusterNode, ClusterVerdict, DispatchPolicy,
    FleetStats,
};
use jas_cpu::CounterFile;
use jas_hpm::{FleetHpm, PhaseHpm};
use jas_simkernel::{Loader, Saver, SimDuration, SimTime};
use jas_workload::{Driver, DriverConfig, Metrics, RequestKind};

/// Per-node seed salt ("NODESEED"): node 0 keeps the configured seed,
/// node `i` folds `i * SALT` in, so each stack draws independent streams
/// while staying a pure function of the run seed.
const NODE_SEED_SALT: u64 = 0x4E4F_4445_5345_4544;

/// Quanta per LB epoch. The epoch must be a whole number of quanta so
/// node clocks land exactly on epoch boundaries under both schedulers.
const EPOCH_QUANTA: u64 = 8;

/// An [`Engine`] wrapped as a cluster node: arrivals come exclusively
/// from the LB, snapshots go through the engine's `Persist` visitor.
pub struct EngineNode {
    cfg: SutConfig,
    run: RunPlan,
    engine: Engine,
}

impl EngineNode {
    /// Builds one node stack. The node's fault plan must already be
    /// reduced to local windows (`FaultPlan::local_only`) — fleet
    /// windows are the LB's business.
    #[must_use]
    pub fn new(cfg: SutConfig, run: RunPlan) -> EngineNode {
        let mut engine = Engine::new(cfg.clone(), run);
        engine.enable_external_arrivals();
        EngineNode { cfg, run, engine }
    }

    /// The wrapped engine (read-only).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl ClusterNode for EngineNode {
    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn run_to(&mut self, until: SimTime) {
        self.engine.run_to(until);
    }

    fn push_arrival(&mut self, at: SimTime, kind: RequestKind) {
        self.engine.push_external_arrival(at, kind);
    }

    fn completed(&self) -> u64 {
        self.engine.frontend_completed()
    }

    fn errored(&self) -> u64 {
        self.engine.frontend_aborted()
    }

    fn in_flight(&self) -> u64 {
        self.engine.in_flight() + self.engine.external_arrivals_queued() as u64
    }

    fn snapshot(&mut self) -> Vec<u8> {
        let mut saver = Saver::new();
        self.engine.persist_state(&mut saver);
        saver.into_bytes()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut engine = Engine::new(self.cfg.clone(), self.run);
        engine.enable_external_arrivals();
        let mut loader = Loader::new(bytes);
        engine.persist_state(&mut loader);
        loader
            .finish()
            .expect("in-memory node snapshot always matches this build");
        self.engine = engine;
    }

    fn finish(&mut self) {
        self.engine.run_to_end();
    }

    fn hpm_digest(&self) -> u64 {
        self.engine.hpm_digest()
    }

    fn trace_digest(&self) -> u64 {
        self.engine.tracer().digest()
    }

    fn fault_digest(&self) -> u64 {
        self.engine.fault_log().digest()
    }

    fn counters(&self) -> CounterFile {
        self.engine.total_counters()
    }

    fn metrics(&self) -> Metrics {
        self.engine.metrics().clone()
    }
}

/// Everything a cluster run produces, for the report/figure layer.
pub struct ClusterArtifacts {
    /// Node count.
    pub nodes: usize,
    /// Dispatch policy used.
    pub dispatch: DispatchPolicy,
    /// Cumulative fleet outcome counters.
    pub stats: FleetStats,
    /// Merged SLO verdict plus the failover conservation check.
    pub verdict: ClusterVerdict,
    /// Fleet HPM digest (fold of per-node digests in node order).
    pub hpm_digest: u64,
    /// Fleet trace digest.
    pub trace_digest: u64,
    /// Fleet fault digest (per-node logs plus the LB's own).
    pub fault_digest: u64,
    /// Per-node HPM digests (node 0 first).
    pub node_hpm_digests: Vec<u64>,
    /// Per-node counter files plus fleet aggregates (`--figure cluster`).
    pub fleet_hpm: FleetHpm,
    /// The merged fleet workload metrics.
    pub metrics: Metrics,
    /// Mean simulated crash-to-warm-restart latency in milliseconds
    /// (0 when nothing crashed).
    pub failover_ms: f64,
    /// Nodes in rotation when the run ended (equals `nodes` unless the
    /// autoscaler drained some back to standby).
    pub active_nodes: usize,
}

/// Mean crash→restart latency over the LB's event log: each
/// `NodeRestarted` is matched to that node's most recent `NodeCrashed`.
fn mean_failover_ms(log: &jas_faults::FaultLog) -> f64 {
    let mut crashed_at: std::collections::BTreeMap<u32, SimTime> =
        std::collections::BTreeMap::new();
    let mut total_ms = 0.0;
    let mut restarts = 0u64;
    for ev in log.events() {
        match ev.what {
            jas_faults::EventKind::NodeCrashed { node } => {
                crashed_at.insert(node, ev.at);
            }
            jas_faults::EventKind::NodeRestarted { node } => {
                if let Some(at) = crashed_at.remove(&node) {
                    total_ms += ev.at.saturating_since(at).as_secs_f64() * 1e3;
                    restarts += 1;
                }
            }
            _ => {}
        }
    }
    if restarts == 0 {
        0.0
    } else {
        total_ms / restarts as f64
    }
}

/// Runs an `N > 1` fleet of engine nodes under the LB for the whole
/// configured plan and collects the fleet artifacts.
///
/// Fleet fault windows in `cfg.faults.plan` are executed by the LB; each
/// node engine sees only the local windows, so a fleet-only plan leaves
/// every node on the byte-identical healthy path.
///
/// # Panics
///
/// Panics if `nodes < 2` (the single-node path is the legacy engine run,
/// not a one-node fleet).
#[must_use]
pub fn run_cluster(
    cfg: &SutConfig,
    run: RunPlan,
    nodes: usize,
    dispatch: DispatchPolicy,
) -> ClusterArtifacts {
    run_cluster_with(cfg, run, nodes, dispatch, None, None, None)
}

/// [`run_cluster`] with the scenario-layer extensions: an optional
/// reactive autoscaler, an explicit admission cap, and optional
/// per-phase HPM attribution (the fleet is chunked at each workload
/// curve phase boundary — chunked runs are digest-equivalent to
/// straight runs, so this costs nothing in determinism).
///
/// # Panics
///
/// Panics if `nodes < 2` (the single-node path is the legacy engine run,
/// not a one-node fleet).
#[must_use]
pub fn run_cluster_with(
    cfg: &SutConfig,
    run: RunPlan,
    nodes: usize,
    dispatch: DispatchPolicy,
    autoscale: Option<AutoscaleConfig>,
    max_in_flight: Option<u64>,
    mut phases: Option<&mut PhaseHpm>,
) -> ClusterArtifacts {
    assert!(
        nodes >= 2,
        "run_cluster needs a fleet; --nodes 1 is the legacy path"
    );
    let fleet_nodes: Vec<EngineNode> = (0..nodes)
        .map(|i| {
            let mut node_cfg = cfg.clone();
            node_cfg.seed = cfg.seed ^ (i as u64).wrapping_mul(NODE_SEED_SALT);
            node_cfg.faults.plan = cfg.faults.plan.local_only();
            EngineNode::new(node_cfg, run)
        })
        .collect();
    let lb_metrics = Metrics::new(run.throughput_bin, run.steady_start(), run.end());
    let defaults = ClusterConfig::default();
    let cluster_cfg = ClusterConfig {
        nodes,
        dispatch,
        epoch: cfg.quantum * EPOCH_QUANTA,
        seed: cfg.seed,
        plan: cfg.faults.plan.clone(),
        retry: cfg.faults.retry,
        autoscale,
        max_in_flight: max_in_flight.unwrap_or(defaults.max_in_flight),
        ..defaults
    };
    let mut cluster = Cluster::new(cluster_cfg, fleet_nodes, lb_metrics);
    let mut arrivals = Driver::with_curve(DriverConfig::at_ir(cfg.ir), cfg.curve.clone());
    if phases.is_some() {
        for boundary_s in cfg.curve.phase_boundaries(run.end().as_secs_f64()) {
            let until = SimTime::ZERO + SimDuration::from_secs_f64(boundary_s);
            cluster.run(&mut arrivals, until);
            if let Some(acc) = phases.as_deref_mut() {
                acc.observe(boundary_s, &fleet_counters(&cluster));
            }
        }
    }
    cluster.run(&mut arrivals, run.end());
    cluster.finish();
    if let Some(acc) = phases {
        acc.observe(run.end().as_secs_f64(), &fleet_counters(&cluster));
    }
    let active_nodes = cluster.active_nodes();
    ClusterArtifacts {
        nodes,
        dispatch,
        stats: *cluster.stats(),
        verdict: cluster.verdict(),
        hpm_digest: cluster.hpm_digest(),
        trace_digest: cluster.trace_digest(),
        fault_digest: cluster.fault_digest(),
        node_hpm_digests: cluster
            .nodes()
            .iter()
            .map(ClusterNode::hpm_digest)
            .collect(),
        fleet_hpm: cluster.fleet_hpm(),
        metrics: cluster.merged_metrics(),
        failover_ms: mean_failover_ms(cluster.log()),
        active_nodes,
    }
}

/// Counter-wise sum of every node's cumulative counters, for per-phase
/// fleet attribution.
fn fleet_counters(cluster: &Cluster<EngineNode>) -> CounterFile {
    let mut total = CounterFile::new();
    for node in cluster.nodes() {
        total.merge(&node.counters());
    }
    total
}
