//! Plain-text rendering of figure data, used by the benches and examples.

use crate::figures::{
    ClusterTable, Fig10Correlation, Fig2Throughput, Fig3Gc, Fig4Profile, Fig5Cpi, Fig6Branch,
    Fig7Tlb, Fig8L1d, Fig9DataFrom, LockingTable, ResilienceTable, ScenarioTable, SchedTable,
    TprofTable, UtilizationTable, VmstatTable,
};
use std::fmt::Write as _;

fn bar(r: f64, width: usize) -> String {
    let n = ((r.abs().min(1.0)) * width as f64).round() as usize;
    let mut s = String::new();
    if r < 0.0 {
        s.push('-');
    }
    s.extend(std::iter::repeat_n('#', n));
    s
}

/// Renders Figure 2.
#[must_use]
pub fn render_fig2(f: &Fig2Throughput) -> String {
    let mut out = String::from("Figure 2: Benchmark Throughput (completions/s per bin)\n");
    for (kind, series) in &f.series {
        let preview: Vec<String> = series.iter().take(12).map(|v| format!("{v:5.1}")).collect();
        let _ = writeln!(out, "  {:<14} {}", kind.name(), preview.join(" "));
    }
    for (kind, cv) in &f.stability_cv {
        let _ = writeln!(out, "  stability cv {:<12} {:.3}", kind.name(), cv);
    }
    let _ = writeln!(out, "  JOPS = {:.1} ({:.2} per IR)", f.jops, f.jops_per_ir);
    out
}

/// Renders Figure 3.
#[must_use]
pub fn render_fig3(f: &Fig3Gc) -> String {
    let mut out = String::from("Figure 3: Garbage Collection Statistics\n");
    match &f.summary {
        Some(s) => {
            let _ = writeln!(out, "  collections        {}", s.collections);
            let _ = writeln!(out, "  time between GC    {:.1} s", s.mean_interval_s);
            let _ = writeln!(out, "  GC pause           {:.0} ms", s.mean_pause_ms);
            let _ = writeln!(
                out,
                "  % of runtime       {:.2}%",
                s.runtime_fraction * 100.0
            );
            let _ = writeln!(out, "  mark share of GC   {:.0}%", s.mark_fraction * 100.0);
            let _ = writeln!(out, "  compactions        {}", s.compactions);
            let _ = writeln!(
                out,
                "  used-heap growth   {:.2} MB/min (full-scale {:.2})",
                s.used_growth_bytes_per_min / 1e6,
                s.used_growth_bytes_per_min * f.heap_scale as f64 / 1e6
            );
        }
        None => {
            let _ = writeln!(out, "  (fewer than two GCs in the window)");
        }
    }
    out
}

/// Renders Figure 4.
#[must_use]
pub fn render_fig4(f: &Fig4Profile) -> String {
    let mut out = String::from("Figure 4: Profile Breakdown (% of runtime)\n");
    for (component, share) in &f.breakdown {
        if *share > 0.0005 {
            let _ = writeln!(out, "  {:<28} {:5.1}%", component.name(), share * 100.0);
        }
    }
    let _ = writeln!(
        out,
        "  JIT-compiled code share       {:5.1}%",
        f.jitted_share * 100.0
    );
    let _ = writeln!(
        out,
        "  benchmark application share   {:5.1}%",
        f.application_share * 100.0
    );
    let _ = writeln!(
        out,
        "  hottest method {:.2}% of JITed time; {} methods for 50% (of {})",
        f.flatness.hottest_share * 100.0,
        f.flatness.methods_for_half,
        f.flatness.methods_profiled
    );
    out
}

/// Renders Figure 5.
#[must_use]
pub fn render_fig5(f: &Fig5Cpi) -> String {
    let mut out = String::from("Figure 5: CPI, Speculation Rate, L1 Miss Rate\n");
    let _ = writeln!(out, "  CPI                      {:.2}", f.cpi);
    let _ = writeln!(out, "  dispatched / completed   {:.2}", f.speculation);
    let _ = writeln!(
        out,
        "  L1D miss rate            {:.1}%",
        f.l1d_miss_rate * 100.0
    );
    if let Some(r) = f.cpi_vs_speculation {
        let _ = writeln!(out, "  corr(CPI, speculation)   {r:.2}");
    }
    out
}

/// Renders Figure 6.
#[must_use]
pub fn render_fig6(f: &Fig6Branch) -> String {
    let mut out = String::from("Figure 6: Branch Prediction\n");
    let _ = writeln!(
        out,
        "  conditional mispredict rate   {:.1}%",
        f.cond_mispredict_rate * 100.0
    );
    let _ = writeln!(
        out,
        "  indirect target mispredict    {:.1}%",
        f.target_mispredict_rate * 100.0
    );
    out
}

/// Renders Figure 7.
#[must_use]
pub fn render_fig7(f: &Fig7Tlb) -> String {
    let mut out = String::from("Figure 7: Translation Miss Frequency (per instruction)\n");
    let _ = writeln!(
        out,
        "  DERAT {:.2e}   IERAT {:.2e}",
        f.derat_per_instr, f.ierat_per_instr
    );
    let _ = writeln!(
        out,
        "  DTLB  {:.2e}   ITLB  {:.2e}",
        f.dtlb_per_instr, f.itlb_per_instr
    );
    let _ = writeln!(
        out,
        "  instructions between DERAT misses: {:.0}",
        f.instr_between_derat
    );
    let _ = writeln!(
        out,
        "  TLB satisfies {:.0}% of DERAT misses",
        f.tlb_satisfaction * 100.0
    );
    out
}

/// Renders Figure 8.
#[must_use]
pub fn render_fig8(f: &Fig8L1d) -> String {
    let mut out = String::from("Figure 8: L1 Data Cache Performance\n");
    let _ = writeln!(
        out,
        "  load miss rate  {:.1}% (1 per {:.1} loads)",
        f.load_miss_rate * 100.0,
        1.0 / f.load_miss_rate.max(1e-12)
    );
    let _ = writeln!(
        out,
        "  store miss rate {:.1}% (1 per {:.1} stores)",
        f.store_miss_rate * 100.0,
        1.0 / f.store_miss_rate.max(1e-12)
    );
    let _ = writeln!(out, "  overall miss    {:.1}%", f.overall_miss_rate * 100.0);
    let _ = writeln!(
        out,
        "  instr/load {:.2}  instr/store {:.2}  instr/L1-ref {:.2}",
        f.instr_per_load, f.instr_per_store, f.instr_per_ref
    );
    out
}

/// Renders Figure 9.
#[must_use]
pub fn render_fig9(f: &Fig9DataFrom) -> String {
    let mut out = String::from("Figure 9: Data Loaded From (after an L1 miss)\n");
    for (name, frac) in &f.fractions {
        let _ = writeln!(
            out,
            "  {:<16} {:5.1}%  {}",
            name,
            frac * 100.0,
            bar(*frac, 40)
        );
    }
    let _ = writeln!(
        out,
        "  modified cache-to-cache transfers: {:.2}%",
        f.modified_fraction * 100.0
    );
    out
}

/// Renders Figure 10.
#[must_use]
pub fn render_fig10(f: &Fig10Correlation) -> String {
    let mut out = String::from("Figure 10: CPI Statistical Correlation (r)\n");
    for (name, r) in &f.correlations {
        let _ = writeln!(out, "  {name:<26} {r:+.2} {}", bar(*r, 25));
    }
    if let Some(r) = f.speculation_vs_l1 {
        let _ = writeln!(out, "  speculation vs L1D miss    {r:+.2}");
    }
    if let Some(r) = f.branches_vs_target_mispred {
        let _ = writeln!(out, "  branches vs TA mispred     {r:+.2}");
    }
    if let Some(r) = f.cond_misses_vs_branches {
        let _ = writeln!(out, "  cond misses vs branches    {r:+.2}");
    }
    out
}

/// Renders the locking table.
#[must_use]
pub fn render_locking(t: &LockingTable) -> String {
    let mut out = String::from("Locking and SYNC (Section 4.2.4)\n");
    let _ = writeln!(
        out,
        "  instructions per LARX        {:.0}",
        t.instr_per_larx
    );
    let _ = writeln!(
        out,
        "  lock acquisition instr share {:.1}%",
        t.lock_acquisition_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  SYNC-in-SRQ cycle fraction   {:.2}%",
        t.sync_srq_cycle_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  STCX failure rate            {:.2}%",
        t.stcx_fail_rate * 100.0
    );
    let _ = writeln!(
        out,
        "  monitor contention           {:.2}%",
        t.monitor_contention * 100.0
    );
    out
}

/// Renders the utilization table.
#[must_use]
pub fn render_utilization(t: &UtilizationTable) -> String {
    let mut out = String::from("Utilization and Run Rules\n");
    let _ = writeln!(
        out,
        "  user {:.0}%  system {:.0}%  iowait {:.0}%  idle {:.0}%",
        t.user * 100.0,
        t.system * 100.0,
        t.iowait * 100.0,
        t.idle * 100.0
    );
    let _ = writeln!(out, "  JOPS {:.1} ({:.2} per IR)", t.jops, t.jops_per_ir);
    let _ = writeln!(
        out,
        "  web p90 {:.2}s (limit 2s)   rmi p90 {:.2}s (limit 5s)   {}",
        t.web_p90,
        t.rmi_p90,
        if t.passed { "PASSED" } else { "FAILED" }
    );
    out
}

/// Renders the fault/resilience table.
#[must_use]
pub fn render_resilience(t: &ResilienceTable) -> String {
    let mut out = String::from("Fault Injection and Resilience\n");
    if t.injected.is_empty() {
        let _ = writeln!(out, "  no faults fired");
    }
    for (name, n) in &t.injected {
        let _ = writeln!(out, "  injected {name:<14} {n}");
    }
    let _ = writeln!(
        out,
        "  retries {}   errors {} ({:.2}% of outcomes)",
        t.retries,
        t.errors,
        t.error_rate * 100.0
    );
    let _ = writeln!(
        out,
        "  breaker opens {}   fast-fails {}",
        t.breaker_opens, t.breaker_fast_fails
    );
    let _ = writeln!(
        out,
        "  redeliveries {}   dead letters {}   deadline blown {}",
        t.redeliveries, t.dead_letters, t.deadline_exceeded
    );
    let _ = writeln!(
        out,
        "  events {}   digest {:#018x}   {}",
        t.events,
        t.digest,
        if t.degraded { "DEGRADED" } else { "healthy" }
    );
    out
}

/// Renders the tick-profile report.
#[must_use]
pub fn render_tprof(t: &TprofTable) -> String {
    let mut out = String::from("Tick Profile (tprof)\n");
    let _ = writeln!(
        out,
        "  total ticks {}   hottest method {:.1}%   {} methods cover half",
        t.total_ticks,
        t.hottest_share * 100.0,
        t.methods_for_half
    );
    for line in t.text.lines() {
        let _ = writeln!(out, "  {line}");
    }
    out
}

/// Renders the scheduler-occupancy report.
#[must_use]
pub fn render_sched(t: &SchedTable) -> String {
    let mut out = String::from("Scheduler Occupancy\n");
    let _ = writeln!(out, "  mode {:?}", t.mode);
    let _ = writeln!(
        out,
        "  quanta executed {}   skipped {}   ({:.1}% of the timeline was free)",
        t.executed,
        t.skipped,
        t.skip_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  wake-ups dispatched {}   heap high-water {}",
        t.events_dispatched, t.heap_high_water
    );
    out
}

/// Renders the periodic vmstat report.
#[must_use]
pub fn render_vmstat(t: &VmstatTable) -> String {
    let mut out = String::from("Periodic Utilization (vmstat)\n");
    let _ = writeln!(
        out,
        "  cumulative: user {:.0}%  system {:.0}%  iowait {:.0}%  idle {:.0}%",
        t.user * 100.0,
        t.system * 100.0,
        t.iowait * 100.0,
        t.idle * 100.0
    );
    let _ = writeln!(
        out,
        "  {:>8} {:>6} {:>6} {:>6} {:>6}",
        "sim s", "us", "sy", "wa", "id"
    );
    for &(at, user, system, iowait, idle) in &t.rows {
        let _ = writeln!(
            out,
            "  {:>8.1} {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}%",
            at,
            user * 100.0,
            system * 100.0,
            iowait * 100.0,
            idle * 100.0
        );
    }
    if t.rows.is_empty() {
        let _ = writeln!(out, "  (no samples: steady window never opened)");
    }
    out
}

/// Renders the fleet report (`--figure cluster`).
#[must_use]
pub fn render_cluster(t: &ClusterTable) -> String {
    let mut out = String::from("Fleet (cluster)\n");
    let _ = writeln!(out, "  {} nodes, dispatch {}", t.nodes, t.dispatch);
    let _ = writeln!(
        out,
        "  {:>6} {:>14} {:>14} {:>6}  {:<18}",
        "node", "cycles", "instructions", "ipc", "hpm digest"
    );
    for row in &t.rows {
        let _ = writeln!(
            out,
            "  {:>6} {:>14} {:>14} {:>6.2}  {:#018x}",
            row.node, row.cycles, row.instructions, row.ipc, row.hpm_digest
        );
    }
    let agg_ipc = if t.agg_cycles == 0 {
        0.0
    } else {
        t.agg_instructions as f64 / t.agg_cycles as f64
    };
    let _ = writeln!(
        out,
        "  {:>6} {:>14} {:>14} {:>6.2}  {:#018x}",
        "fleet", t.agg_cycles, t.agg_instructions, agg_ipc, t.fleet_hpm_digest
    );
    for (label, value) in jas_cluster::FleetStats::LABELS.iter().zip(t.stats.values()) {
        let _ = writeln!(out, "  {label:>14} {value}");
    }
    let v = &t.verdict;
    let _ = writeln!(
        out,
        "  jops {:.1}   web p90 {:.3}s   rmi p90 {:.3}s   mean failover {:.0} ms",
        t.jops, v.verdict.web_p90, v.verdict.rmi_p90, t.failover_ms
    );
    let _ = writeln!(
        out,
        "  lost {}   shed {} ({:.1}% of offered)   {}",
        v.lost,
        v.shed,
        v.shed_fraction * 100.0,
        if v.lost == 0 && v.verdict.passed {
            "PASS"
        } else {
            "FAIL"
        }
    );
    out
}

/// Renders the per-phase scenario table.
#[must_use]
pub fn render_scenario(t: &ScenarioTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Scenario Phases ({})", t.name);
    let _ = writeln!(
        out,
        "  {:>8} {:>8} {:>6} {:>14} {:>14} {:>6}",
        "start s", "end s", "mult", "instructions", "cycles", "cpi"
    );
    for row in &t.rows {
        let _ = writeln!(
            out,
            "  {:>8.1} {:>8.1} {:>6.2} {:>14} {:>14} {:>6.2}",
            row.start_s, row.end_s, row.multiplier, row.instructions, row.cycles, row.cpi
        );
    }
    if t.rows.is_empty() {
        let _ = writeln!(out, "  (no phases recorded)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{Fig6Branch, Fig8L1d, Fig9DataFrom, LockingTable, UtilizationTable};

    #[test]
    fn bar_scales_and_signs() {
        assert_eq!(bar(0.0, 10), "");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####");
        assert_eq!(bar(-0.5, 10), "-#####");
        // Out-of-range r clamps rather than overflowing.
        assert_eq!(bar(2.0, 4), "####");
    }

    #[test]
    fn render_fig6_mentions_both_rates() {
        let text = render_fig6(&Fig6Branch {
            cond_mispredict_rate: 0.06,
            target_mispredict_rate: 0.05,
            cond_series: vec![],
            branch_series: vec![],
        });
        assert!(text.contains("6.0%"));
        assert!(text.contains("5.0%"));
    }

    #[test]
    fn render_fig8_shows_one_in_n() {
        let text = render_fig8(&Fig8L1d {
            load_miss_rate: 1.0 / 12.0,
            store_miss_rate: 1.0 / 5.0,
            overall_miss_rate: 0.14,
            instr_per_load: 3.2,
            instr_per_store: 4.5,
            instr_per_ref: 1.87,
        });
        assert!(text.contains("1 per 12.0 loads"));
        assert!(text.contains("1 per 5.0 stores"));
        assert!(text.contains("instr/load 3.20"));
    }

    #[test]
    fn render_fig9_lists_all_sources() {
        let f = Fig9DataFrom {
            fractions: vec![
                ("L2", 0.75),
                ("L2.5 shared", 0.0),
                ("L2.5 modified", 0.0),
                ("L2.75 shared", 0.01),
                ("L2.75 modified", 0.001),
                ("L3", 0.15),
                ("L3.5", 0.02),
                ("Memory", 0.069),
            ],
            l2_fraction: 0.75,
            modified_fraction: 0.001,
        };
        let text = render_fig9(&f);
        for name in ["L2", "L2.75 shared", "L3.5", "Memory"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.contains("75.0%"));
    }

    #[test]
    fn render_locking_and_utilization() {
        let lock_text = render_locking(&LockingTable {
            instr_per_larx: 600.0,
            lock_acquisition_fraction: 0.03,
            sync_srq_cycle_fraction: 0.008,
            stcx_fail_rate: 0.02,
            monitor_contention: 0.04,
        });
        assert!(lock_text.contains("600"));
        assert!(lock_text.contains("3.0%"));
        let util_text = render_utilization(&UtilizationTable {
            user: 0.8,
            system: 0.2,
            iowait: 0.0,
            idle: 0.0,
            jops: 64.0,
            jops_per_ir: 1.6,
            web_p90: 0.4,
            rmi_p90: 0.3,
            passed: true,
        });
        assert!(util_text.contains("user 80%"));
        assert!(util_text.contains("PASSED"));
        let failed = render_utilization(&UtilizationTable {
            user: 0.9,
            system: 0.1,
            iowait: 0.0,
            idle: 0.0,
            jops: 10.0,
            jops_per_ir: 0.2,
            web_p90: 12.0,
            rmi_p90: 9.0,
            passed: false,
        });
        assert!(failed.contains("FAILED"));
    }

    #[test]
    fn render_resilience_lists_fired_faults() {
        let text = render_resilience(&ResilienceTable {
            injected: vec![("db-lock", 12), ("gc-storm", 3)],
            retries: 9,
            errors: 2,
            error_rate: 0.015,
            breaker_opens: 1,
            breaker_fast_fails: 4,
            redeliveries: 5,
            dead_letters: 1,
            deadline_exceeded: 2,
            events: 37,
            digest: 0xdead_beef,
            degraded: true,
        });
        assert!(text.contains("injected db-lock"));
        assert!(text.contains("injected gc-storm"));
        assert!(text.contains("retries 9"));
        assert!(text.contains("1.50% of outcomes"));
        assert!(text.contains("breaker opens 1"));
        assert!(text.contains("dead letters 1"));
        assert!(text.contains("DEGRADED"));
        assert!(!text.contains("no faults fired"));
    }

    #[test]
    fn render_resilience_healthy_run_says_so() {
        let text = render_resilience(&ResilienceTable {
            injected: vec![],
            retries: 0,
            errors: 0,
            error_rate: 0.0,
            breaker_opens: 0,
            breaker_fast_fails: 0,
            redeliveries: 0,
            dead_letters: 0,
            deadline_exceeded: 0,
            events: 0,
            digest: 0,
            degraded: false,
        });
        assert!(text.contains("no faults fired"));
        assert!(text.contains("healthy"));
    }

    #[test]
    fn render_tprof_embeds_the_profile_text() {
        let text = render_tprof(&TprofTable {
            total_ticks: 4200,
            text: "Process/Component Ticks    %\n  java  100  50.0\n".to_owned(),
            hottest_share: 0.031,
            methods_for_half: 57,
        });
        assert!(text.starts_with("Tick Profile"));
        assert!(text.contains("total ticks 4200"));
        assert!(text.contains("hottest method 3.1%"));
        assert!(text.contains("57 methods cover half"));
        assert!(text.contains("Process/Component Ticks"));
    }

    #[test]
    fn render_vmstat_prints_interval_rows() {
        let text = render_vmstat(&VmstatTable {
            rows: vec![(30.0, 0.8, 0.2, 0.0, 0.0), (30.5, 0.5, 0.1, 0.3, 0.1)],
            user: 0.65,
            system: 0.15,
            iowait: 0.15,
            idle: 0.05,
        });
        assert!(text.starts_with("Periodic Utilization"));
        assert!(text.contains("cumulative: user 65%"));
        assert!(text.contains("30.0"));
        assert!(text.contains("30.5"));
        let empty = render_vmstat(&VmstatTable {
            rows: vec![],
            user: 0.0,
            system: 0.0,
            iowait: 0.0,
            idle: 0.0,
        });
        assert!(empty.contains("no samples"));
    }

    #[test]
    fn render_sched_reports_occupancy() {
        let text = render_sched(&SchedTable {
            mode: crate::config::SchedMode::Event,
            executed: 250,
            skipped: 750,
            events_dispatched: 412,
            heap_high_water: 9,
            skip_fraction: 0.75,
        });
        assert!(text.starts_with("Scheduler Occupancy"));
        assert!(text.contains("mode Event"));
        assert!(text.contains("executed 250"));
        assert!(text.contains("skipped 750"));
        assert!(text.contains("75.0% of the timeline was free"));
        assert!(text.contains("dispatched 412"));
        assert!(text.contains("high-water 9"));
    }

    #[test]
    fn render_scenario_lists_phases() {
        let text = render_scenario(&ScenarioTable {
            name: "flash-crowd".to_string(),
            rows: vec![crate::figures::ScenarioPhaseRow {
                start_s: 0.0,
                end_s: 12.0,
                multiplier: 1.0,
                instructions: 1000,
                cycles: 2000,
                cpi: 2.0,
            }],
        });
        assert!(text.starts_with("Scenario Phases (flash-crowd)"));
        assert!(text.contains("12.0"));
        assert!(text.contains("2.00"));
        let empty = render_scenario(&ScenarioTable {
            name: "x".to_string(),
            rows: vec![],
        });
        assert!(empty.contains("no phases recorded"));
    }
}
