//! `jas2004` — a full-system simulation reproducing *"Characterizing a
//! Complex J2EE Workload: A Comprehensive Analysis and Opportunities for
//! Optimizations"* (Shuf & Steiner, ISPASS 2007).
//!
//! The paper is a measurement study of SPECjAppServer2004 on a POWER4
//! server. This crate assembles the whole measured system from the
//! substrate crates — CPU/memory hierarchy (`jas-cpu`), JVM (`jas-jvm`),
//! database (`jas-db`), application server (`jas-appserver`), workload
//! driver (`jas-workload`), measurement tools (`jas-hpm`) — couples them
//! on one simulated timeline ([`Engine`]), runs experiments
//! ([`run_experiment`]), and regenerates every figure and in-text table of
//! the paper's evaluation ([`figures`]).
//!
//! # Quick start
//!
//! ```no_run
//! use jas2004::{figures, report, run_experiment, RunPlan, SutConfig};
//!
//! let artifacts = run_experiment(SutConfig::at_ir(40), RunPlan::default());
//! let fig5 = figures::fig5_cpi(&artifacts);
//! println!("{}", report::render_fig5(&fig5));
//! ```
//!
//! See `DESIGN.md` for the substitution map (what the paper used → what is
//! built here) and `EXPERIMENTS.md` for paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod cli;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod figures;
pub mod fleet;
pub mod profiles;
pub mod reduce;
pub mod report;

pub use checkpoint::{checkpoint_bytes, config_fingerprint, restore_engine, validate_checkpoint};
pub use config::{FaultsConfig, RunPlan, ScenarioKind, SchedMode, SutConfig};
pub use engine::Engine;
pub use experiment::{run_artifacts_from, run_experiment, RunArtifacts};
pub use fleet::{run_cluster, run_cluster_with, ClusterArtifacts, EngineNode};
pub use jas_cluster::{AutoscaleConfig, ClusterVerdict, DispatchPolicy, FleetStats};
pub use jas_cpu::{CounterFile, HpmEvent};
pub use jas_faults::{FaultCounters, FaultKind, FaultPlan, FaultWindow};
pub use jas_trace::{TraceCategory, TraceEvent, TraceEventKind, TraceSpec, Tracer};
pub use reduce::{reduce_divergence, DivergenceWitness};
