//! Command-line options for the `jas2004` binary.
//!
//! A deliberately dependency-free parser: the simulator's public surface is
//! a library, and the binary is a thin convenience wrapper (run a
//! configuration, print selected figures).

use crate::config::{RunPlan, ScenarioKind, SutConfig};
use jas_faults::FaultPlan;
use jas_simkernel::SimDuration;
use jas_trace::TraceSpec;
use std::path::PathBuf;

/// Which outputs to print.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureSelect {
    /// Every figure and table.
    All,
    /// One figure by number (2–10).
    Figure(u8),
    /// The locking table.
    Locking,
    /// The utilization table.
    Utilization,
    /// The fault/resilience table.
    Resilience,
    /// The tick-profile report.
    Tprof,
    /// The periodic vmstat interval rows.
    Vmstat,
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// SUT configuration derived from the flags.
    pub config: SutConfig,
    /// Run timing.
    pub plan: RunPlan,
    /// Output selection.
    pub select: FigureSelect,
    /// Where to export the trace (chrome://tracing JSON), if anywhere.
    pub trace_out: Option<PathBuf>,
}

/// What the command line asked for.
#[derive(Clone, Debug)]
pub enum Cli {
    /// Run a configuration and print figures. Boxed: the configuration is
    /// two orders of magnitude larger than the `Help` variant.
    Run(Box<CliOptions>),
    /// Print the usage text and exit successfully.
    Help,
}

/// A CLI parsing error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
jas2004 — regenerate the ISPASS 2007 J2EE characterization figures

USAGE:
    jas2004 [OPTIONS]

OPTIONS:
    --ir <N>             injection rate (default 40)
    --steady <SECONDS>   steady-state window (default 180)
    --ramp <SECONDS>     ramp-up excluded from statistics (default 20)
    --seed <N>           RNG seed (default: fixed project seed)
    --threads <N>        host threads for per-core execution (default 1;
                         results are identical for every value)
    --scenario <NAME>    jas | trade (default jas)
    --no-large-pages     back the Java heap with 4 KB pages
    --code-large-pages   put JIT/native code on 16 MB pages
    --generational <MB>  minor collections every <MB> allocated
    --fault-plan <SPEC>  deterministic fault windows, as
                         kind@start-end:rate[,kind@start-end:rate...]
                         with kind in db-lock | db-io | jms-redeliver |
                         jms-dup | pool-seize | gc-storm, start/end in
                         seconds, rate in [0,1]; @FILE reads the spec
                         from FILE
    --figure <SEL>       all | 2..10 | locking | utilization | resilience |
                         tprof | vmstat (default all)
    --trace <SPEC>       record trace events: all | off | a comma list of
                         req,pool,rmi,jms,db,resil,gc,alloc,quantum,hpm;
                         prints TRACE_DIGEST after the run (default off)
    --trace-out <PATH>   export the trace as chrome://tracing JSON
                         (open in chrome://tracing or ui.perfetto.dev)
    --host-prof          print the HOSTPROF host self-profile (host
                         wall-clock; never enters simulation state)
    --help               print this help
";

fn parse_u64(flag: &str, value: Option<&str>) -> Result<u64, CliError> {
    let v = value.ok_or_else(|| CliError(format!("{flag} requires a value")))?;
    v.parse()
        .map_err(|_| CliError(format!("{flag}: '{v}' is not a number")))
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on unknown flags,
/// missing values, out-of-range selections, or an unreadable/invalid
/// `--fault-plan` file or spec. `--help` parses to [`Cli::Help`], which
/// the binary prints and exits successfully on.
pub fn parse_args<I, S>(args: I) -> Result<Cli, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let mut config = SutConfig::at_ir(40);
    let mut plan = RunPlan::default();
    let mut select = FigureSelect::All;
    let mut trace_out = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).map(String::as_str);
        match flag {
            "--help" | "-h" => return Ok(Cli::Help),
            "--ir" => {
                config.ir = parse_u64(flag, value)? as u32;
                if config.ir == 0 {
                    return Err(CliError("--ir must be positive".into()));
                }
                i += 1;
            }
            "--steady" => {
                plan.steady = SimDuration::from_secs(parse_u64(flag, value)?);
                i += 1;
            }
            "--ramp" => {
                plan.ramp_up = SimDuration::from_secs(parse_u64(flag, value)?);
                i += 1;
            }
            "--seed" => {
                config.seed = parse_u64(flag, value)?;
                i += 1;
            }
            "--threads" => {
                config.threads = parse_u64(flag, value)? as usize;
                if config.threads == 0 {
                    return Err(CliError("--threads must be positive".into()));
                }
                i += 1;
            }
            "--scenario" => {
                config.scenario = match value {
                    Some("jas") => ScenarioKind::JAppServer,
                    Some("trade") => ScenarioKind::TradeLike,
                    Some(other) => {
                        return Err(CliError(format!("unknown scenario '{other}' (jas|trade)")))
                    }
                    None => return Err(CliError("--scenario requires a value".into())),
                };
                i += 1;
            }
            "--no-large-pages" => config.machine.addr_map.heap_large_pages = false,
            "--code-large-pages" => config.machine.addr_map.code_large_pages = true,
            "--generational" => {
                config.jvm.minor_every_bytes = Some(parse_u64(flag, value)? << 20);
                i += 1;
            }
            "--fault-plan" => {
                let spec = value
                    .ok_or_else(|| CliError("--fault-plan requires a value".into()))?
                    .to_string();
                let spec = match spec.strip_prefix('@') {
                    Some(path) => std::fs::read_to_string(path).map_err(|e| {
                        CliError(format!("--fault-plan: cannot read '{path}': {e}"))
                    })?,
                    None => spec,
                };
                config.faults.plan = FaultPlan::parse(spec.trim())
                    .map_err(|e| CliError(format!("--fault-plan: {e}")))?;
                i += 1;
            }
            "--trace" => {
                let spec = value.ok_or_else(|| CliError("--trace requires a value".into()))?;
                config.trace =
                    TraceSpec::parse(spec).map_err(|e| CliError(format!("--trace: {e}")))?;
                i += 1;
            }
            "--trace-out" => {
                let path = value.ok_or_else(|| CliError("--trace-out requires a value".into()))?;
                trace_out = Some(PathBuf::from(path));
                i += 1;
            }
            "--host-prof" => config.host_prof = true,
            "--figure" => {
                select = match value {
                    Some("all") => FigureSelect::All,
                    Some("locking") => FigureSelect::Locking,
                    Some("utilization") => FigureSelect::Utilization,
                    Some("resilience") => FigureSelect::Resilience,
                    Some("tprof") => FigureSelect::Tprof,
                    Some("vmstat") => FigureSelect::Vmstat,
                    Some(n) => {
                        let n: u8 = n
                            .parse()
                            .map_err(|_| CliError(format!("--figure: bad selector '{n}'")))?;
                        if !(2..=10).contains(&n) {
                            return Err(CliError("--figure: figures are 2..=10".into()));
                        }
                        FigureSelect::Figure(n)
                    }
                    None => return Err(CliError("--figure requires a value".into())),
                };
                i += 1;
            }
            other => return Err(CliError(format!("unknown flag '{other}'\n\n{USAGE}"))),
        }
        i += 1;
    }
    if plan.steady.is_zero() {
        return Err(CliError("--steady must be positive".into()));
    }
    Ok(Cli::Run(Box::new(CliOptions {
        config,
        plan,
        select,
        trace_out,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, CliError> {
        match parse_args(args.iter().copied())? {
            Cli::Run(o) => Ok(*o),
            Cli::Help => panic!("expected a run, got help"),
        }
    }

    #[test]
    fn defaults_with_no_flags() {
        let o = parse(&[]).unwrap();
        assert!(o.config.faults.plan.is_empty());
        assert_eq!(o.config.ir, 40);
        assert_eq!(o.select, FigureSelect::All);
        assert_eq!(o.config.scenario, ScenarioKind::JAppServer);
        assert!(!o.config.trace.enabled());
        assert!(!o.config.host_prof);
        assert!(o.trace_out.is_none());
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse(&[
            "--ir",
            "47",
            "--steady",
            "60",
            "--ramp",
            "5",
            "--seed",
            "7",
            "--threads",
            "8",
            "--scenario",
            "trade",
            "--no-large-pages",
            "--code-large-pages",
            "--generational",
            "4",
            "--figure",
            "7",
        ])
        .unwrap();
        assert_eq!(o.config.ir, 47);
        assert_eq!(o.plan.steady.as_secs_f64(), 60.0);
        assert_eq!(o.plan.ramp_up.as_secs_f64(), 5.0);
        assert_eq!(o.config.seed, 7);
        assert_eq!(o.config.threads, 8);
        assert_eq!(o.config.scenario, ScenarioKind::TradeLike);
        assert!(!o.config.machine.addr_map.heap_large_pages);
        assert!(o.config.machine.addr_map.code_large_pages);
        assert_eq!(o.config.jvm.minor_every_bytes, Some(4 << 20));
        assert_eq!(o.select, FigureSelect::Figure(7));
    }

    #[test]
    fn figure_selectors() {
        assert_eq!(
            parse(&["--figure", "all"]).unwrap().select,
            FigureSelect::All
        );
        assert_eq!(
            parse(&["--figure", "locking"]).unwrap().select,
            FigureSelect::Locking
        );
        assert_eq!(
            parse(&["--figure", "utilization"]).unwrap().select,
            FigureSelect::Utilization
        );
        assert_eq!(
            parse(&["--figure", "resilience"]).unwrap().select,
            FigureSelect::Resilience
        );
        assert_eq!(
            parse(&["--figure", "tprof"]).unwrap().select,
            FigureSelect::Tprof
        );
        assert_eq!(
            parse(&["--figure", "vmstat"]).unwrap().select,
            FigureSelect::Vmstat
        );
        assert!(parse(&["--figure", "1"]).is_err());
        assert!(parse(&["--figure", "11"]).is_err());
        assert!(parse(&["--figure", "xyz"]).is_err());
    }

    #[test]
    fn trace_flags_parse() {
        let o = parse(&["--trace", "all", "--trace-out", "out.json", "--host-prof"]).unwrap();
        assert!(o.config.trace.enabled());
        assert!(o.config.host_prof);
        assert_eq!(o.trace_out, Some(PathBuf::from("out.json")));
        let o = parse(&["--trace", "db,jms,gc"]).unwrap();
        assert!(o.config.trace.wants(jas_trace::TraceCategory::Db));
        assert!(o.config.trace.wants(jas_trace::TraceCategory::Jms));
        assert!(!o.config.trace.wants(jas_trace::TraceCategory::Pool));
        assert!(parse(&["--trace"]).unwrap_err().0.contains("requires"));
        assert!(parse(&["--trace", "bogus"])
            .unwrap_err()
            .0
            .contains("unknown trace category"));
        assert!(parse(&["--trace-out"]).unwrap_err().0.contains("requires"));
    }

    #[test]
    fn fault_plan_inline_spec_parses() {
        let o = parse(&["--fault-plan", "db-lock@10-20:0.5,gc-storm@5-6:1"]).unwrap();
        assert_eq!(o.config.faults.plan.windows().len(), 2);
    }

    #[test]
    fn fault_plan_errors_are_descriptive() {
        assert!(parse(&["--fault-plan"])
            .unwrap_err()
            .0
            .contains("requires a value"));
        assert!(parse(&["--fault-plan", "bogus@1-2:0.5"])
            .unwrap_err()
            .0
            .contains("--fault-plan"));
        assert!(parse(&["--fault-plan", "@/no/such/file"])
            .unwrap_err()
            .0
            .contains("cannot read"));
    }

    #[test]
    fn fault_plan_reads_spec_from_file() {
        let path = std::env::temp_dir().join("jas2004-cli-fault-plan-test.txt");
        std::fs::write(&path, "db-io@1-2:0.25\n").unwrap();
        let o = parse(&["--fault-plan", &format!("@{}", path.display())]).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(o.config.faults.plan.windows().len(), 1);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["--ir"]).unwrap_err().0.contains("requires a value"));
        assert!(parse(&["--ir", "abc"])
            .unwrap_err()
            .0
            .contains("not a number"));
        assert!(parse(&["--ir", "0"]).unwrap_err().0.contains("positive"));
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&["--scenario", "weblogic"])
            .unwrap_err()
            .0
            .contains("unknown scenario"));
        assert!(parse(&["--bogus"]).unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn help_is_not_an_error() {
        assert!(matches!(parse_args(["--help"]).unwrap(), Cli::Help));
        assert!(matches!(parse_args(["-h"]).unwrap(), Cli::Help));
    }
}
