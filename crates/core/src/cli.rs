//! Command-line options for the `jas2004` binary.
//!
//! A deliberately dependency-free parser: the simulator's public surface is
//! a library, and the binary is a thin convenience wrapper (run a
//! configuration, print selected figures).

use crate::config::{RunPlan, ScenarioKind, SutConfig};
use jas_simkernel::SimDuration;

/// Which outputs to print.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureSelect {
    /// Every figure and table.
    All,
    /// One figure by number (2–10).
    Figure(u8),
    /// The locking table.
    Locking,
    /// The utilization table.
    Utilization,
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// SUT configuration derived from the flags.
    pub config: SutConfig,
    /// Run timing.
    pub plan: RunPlan,
    /// Output selection.
    pub select: FigureSelect,
}

/// A CLI parsing error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
jas2004 — regenerate the ISPASS 2007 J2EE characterization figures

USAGE:
    jas2004 [OPTIONS]

OPTIONS:
    --ir <N>             injection rate (default 40)
    --steady <SECONDS>   steady-state window (default 180)
    --ramp <SECONDS>     ramp-up excluded from statistics (default 20)
    --seed <N>           RNG seed (default: fixed project seed)
    --threads <N>        host threads for per-core execution (default 1;
                         results are identical for every value)
    --scenario <NAME>    jas | trade (default jas)
    --no-large-pages     back the Java heap with 4 KB pages
    --code-large-pages   put JIT/native code on 16 MB pages
    --generational <MB>  minor collections every <MB> allocated
    --figure <SEL>       all | 2..10 | locking | utilization (default all)
    --help               print this help
";

fn parse_u64(flag: &str, value: Option<&str>) -> Result<u64, CliError> {
    let v = value.ok_or_else(|| CliError(format!("{flag} requires a value")))?;
    v.parse()
        .map_err(|_| CliError(format!("{flag}: '{v}' is not a number")))
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on unknown flags,
/// missing values, or out-of-range selections. `--help` surfaces as an
/// error whose message is the usage text.
pub fn parse_args<I, S>(args: I) -> Result<CliOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let mut config = SutConfig::at_ir(40);
    let mut plan = RunPlan::default();
    let mut select = FigureSelect::All;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).map(String::as_str);
        match flag {
            "--help" | "-h" => return Err(CliError(USAGE.to_string())),
            "--ir" => {
                config.ir = parse_u64(flag, value)? as u32;
                if config.ir == 0 {
                    return Err(CliError("--ir must be positive".into()));
                }
                i += 1;
            }
            "--steady" => {
                plan.steady = SimDuration::from_secs(parse_u64(flag, value)?);
                i += 1;
            }
            "--ramp" => {
                plan.ramp_up = SimDuration::from_secs(parse_u64(flag, value)?);
                i += 1;
            }
            "--seed" => {
                config.seed = parse_u64(flag, value)?;
                i += 1;
            }
            "--threads" => {
                config.threads = parse_u64(flag, value)? as usize;
                if config.threads == 0 {
                    return Err(CliError("--threads must be positive".into()));
                }
                i += 1;
            }
            "--scenario" => {
                config.scenario = match value {
                    Some("jas") => ScenarioKind::JAppServer,
                    Some("trade") => ScenarioKind::TradeLike,
                    Some(other) => {
                        return Err(CliError(format!("unknown scenario '{other}' (jas|trade)")))
                    }
                    None => return Err(CliError("--scenario requires a value".into())),
                };
                i += 1;
            }
            "--no-large-pages" => config.machine.addr_map.heap_large_pages = false,
            "--code-large-pages" => config.machine.addr_map.code_large_pages = true,
            "--generational" => {
                config.jvm.minor_every_bytes = Some(parse_u64(flag, value)? << 20);
                i += 1;
            }
            "--figure" => {
                select = match value {
                    Some("all") => FigureSelect::All,
                    Some("locking") => FigureSelect::Locking,
                    Some("utilization") => FigureSelect::Utilization,
                    Some(n) => {
                        let n: u8 = n
                            .parse()
                            .map_err(|_| CliError(format!("--figure: bad selector '{n}'")))?;
                        if !(2..=10).contains(&n) {
                            return Err(CliError("--figure: figures are 2..=10".into()));
                        }
                        FigureSelect::Figure(n)
                    }
                    None => return Err(CliError("--figure requires a value".into())),
                };
                i += 1;
            }
            other => return Err(CliError(format!("unknown flag '{other}'\n\n{USAGE}"))),
        }
        i += 1;
    }
    if plan.steady.is_zero() {
        return Err(CliError("--steady must be positive".into()));
    }
    Ok(CliOptions {
        config,
        plan,
        select,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, CliError> {
        parse_args(args.iter().copied())
    }

    #[test]
    fn defaults_with_no_flags() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.config.ir, 40);
        assert_eq!(o.select, FigureSelect::All);
        assert_eq!(o.config.scenario, ScenarioKind::JAppServer);
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse(&[
            "--ir",
            "47",
            "--steady",
            "60",
            "--ramp",
            "5",
            "--seed",
            "7",
            "--threads",
            "8",
            "--scenario",
            "trade",
            "--no-large-pages",
            "--code-large-pages",
            "--generational",
            "4",
            "--figure",
            "7",
        ])
        .unwrap();
        assert_eq!(o.config.ir, 47);
        assert_eq!(o.plan.steady.as_secs_f64(), 60.0);
        assert_eq!(o.plan.ramp_up.as_secs_f64(), 5.0);
        assert_eq!(o.config.seed, 7);
        assert_eq!(o.config.threads, 8);
        assert_eq!(o.config.scenario, ScenarioKind::TradeLike);
        assert!(!o.config.machine.addr_map.heap_large_pages);
        assert!(o.config.machine.addr_map.code_large_pages);
        assert_eq!(o.config.jvm.minor_every_bytes, Some(4 << 20));
        assert_eq!(o.select, FigureSelect::Figure(7));
    }

    #[test]
    fn figure_selectors() {
        assert_eq!(
            parse(&["--figure", "all"]).unwrap().select,
            FigureSelect::All
        );
        assert_eq!(
            parse(&["--figure", "locking"]).unwrap().select,
            FigureSelect::Locking
        );
        assert_eq!(
            parse(&["--figure", "utilization"]).unwrap().select,
            FigureSelect::Utilization
        );
        assert!(parse(&["--figure", "1"]).is_err());
        assert!(parse(&["--figure", "11"]).is_err());
        assert!(parse(&["--figure", "xyz"]).is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["--ir"]).unwrap_err().0.contains("requires a value"));
        assert!(parse(&["--ir", "abc"])
            .unwrap_err()
            .0
            .contains("not a number"));
        assert!(parse(&["--ir", "0"]).unwrap_err().0.contains("positive"));
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&["--scenario", "weblogic"])
            .unwrap_err()
            .0
            .contains("unknown scenario"));
        assert!(parse(&["--bogus"]).unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn help_returns_usage() {
        let err = parse(&["--help"]).unwrap_err();
        assert!(err.0.contains("USAGE"));
    }
}
