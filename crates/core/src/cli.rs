//! Command-line options for the `jas2004` binary.
//!
//! A deliberately dependency-free parser: the simulator's public surface is
//! a library, and the binary is a thin convenience wrapper (run a
//! configuration, print selected figures).

use crate::config::{RunPlan, ScenarioKind, SchedMode, SutConfig};
use jas_cluster::DispatchPolicy;
use jas_faults::FaultPlan;
use jas_scenario::{AppKind, ScenarioSpec};
use jas_simkernel::SimDuration;
use jas_trace::TraceSpec;
use std::path::PathBuf;

/// Which outputs to print.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureSelect {
    /// Every figure and table.
    All,
    /// One figure by number (2–10).
    Figure(u8),
    /// The locking table.
    Locking,
    /// The utilization table.
    Utilization,
    /// The fault/resilience table.
    Resilience,
    /// The tick-profile report.
    Tprof,
    /// The periodic vmstat interval rows.
    Vmstat,
    /// The scheduler-occupancy report.
    Sched,
    /// The fleet table: per-node counter files plus aggregates
    /// (`--nodes N > 1` only).
    Cluster,
    /// Per-phase HPM rows for a scenario run (`--scenario <file>` only).
    Scenario,
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// SUT configuration derived from the flags.
    pub config: SutConfig,
    /// Run timing.
    pub plan: RunPlan,
    /// Output selection.
    pub select: FigureSelect,
    /// Where to export the trace (chrome://tracing JSON), if anywhere.
    pub trace_out: Option<PathBuf>,
    /// Simulated time at which to write a `.jckpt` checkpoint.
    pub checkpoint_at: Option<SimDuration>,
    /// Where the checkpoint goes (required alongside `checkpoint_at`).
    pub checkpoint_out: Option<PathBuf>,
    /// Resume from this `.jckpt` instead of starting at tick zero.
    pub restore_from: Option<PathBuf>,
    /// Record the request stream to this `.jrpl` replay log.
    pub record_out: Option<PathBuf>,
    /// Re-execute this `.jrpl` in place of the workload generator.
    pub replay_from: Option<PathBuf>,
    /// Reduce the configured fault plan's divergence to a witness window.
    pub reduce: bool,
    /// Where the `.jwit` witness goes (only with `reduce`).
    pub witness_out: Option<PathBuf>,
    /// App-server nodes behind the load balancer. `1` (the default) runs
    /// the legacy single-engine path with no LB in the loop.
    pub nodes: usize,
    /// Front-end dispatch policy (`--nodes N > 1` only).
    pub dispatch: DispatchPolicy,
    /// The scenario spec, when the run came from `--scenario <file>`:
    /// carries the admission cap, autoscaler tuning, SLO, and the
    /// `SCENARIO_DIGEST`/`SCENARIO_VERDICT` lines the binary prints.
    pub scenario_spec: Option<Box<ScenarioSpec>>,
}

/// What the command line asked for.
#[derive(Clone, Debug)]
pub enum Cli {
    /// Run a configuration and print figures. Boxed: the configuration is
    /// two orders of magnitude larger than the `Help` variant.
    Run(Box<CliOptions>),
    /// Print the usage text and exit successfully.
    Help,
}

/// A CLI parsing error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
jas2004 — regenerate the ISPASS 2007 J2EE characterization figures

USAGE:
    jas2004 [OPTIONS]

OPTIONS:
    --ir <N>             injection rate (default 40)
    --steady <SECONDS>   steady-state window (default 180)
    --ramp <SECONDS>     ramp-up excluded from statistics (default 20)
    --seed <N>           RNG seed (default: fixed project seed)
    --threads <N>        host threads for per-core execution (default 1;
                         results are identical for every value)
    --sched <MODE>       quantum | event (default quantum); `event` runs
                         the discrete-event scheduler, which skips
                         provably idle quanta and produces bit-identical
                         digests to `quantum`
    --scenario <SEL>     jas | trade (default jas), or a path to a
                         scenarios/<name>.toml spec bundling workload
                         curve, fault plan, trace, topology, and SLO;
                         a spec run prints SCENARIO_DIGEST and
                         SCENARIO_VERDICT lines, and later flags
                         override spec values
    --no-large-pages     back the Java heap with 4 KB pages
    --code-large-pages   put JIT/native code on 16 MB pages
    --generational <MB>  minor collections every <MB> allocated
    --fault-plan <SPEC>  deterministic fault windows, as
                         kind@start-end:rate[,kind@start-end:rate...]
                         with kind in db-lock | db-io | jms-redeliver |
                         jms-dup | pool-seize | gc-storm (per-node) or
                         node-crash | node-slow | partition (fleet-level,
                         acted on by the LB), start/end in seconds, rate
                         in [0,1]; @FILE reads the spec from FILE
    --nodes <N>          app-server nodes behind the load balancer
                         (default 1 = the legacy single-engine path;
                         fleet digests/verdict print for N > 1)
    --dispatch <POLICY>  round-robin | least-conn | ps-clone front-end
                         dispatch (default round-robin; N > 1 only)
    --figure <SEL>       all | 2..10 | locking | utilization | resilience |
                         tprof | vmstat | sched | cluster | scenario
                         (default all; cluster needs --nodes N > 1,
                         scenario needs --scenario <file>)
    --trace <SPEC>       record trace events: all | off | a comma list of
                         req,pool,rmi,jms,db,resil,gc,alloc,quantum,hpm;
                         prints TRACE_DIGEST after the run (default off)
    --trace-out <PATH>   export the trace as chrome://tracing JSON
                         (open in chrome://tracing or ui.perfetto.dev)
    --host-prof          print the HOSTPROF host self-profile (host
                         wall-clock; never enters simulation state)

CHECKPOINT / REPLAY (docs/jckpt-format.md):
    --checkpoint-at <SECONDS>
                         write a .jckpt of the full engine state at the
                         given simulated time, then keep running
    --checkpoint-out <PATH>
                         where the .jckpt goes (required with
                         --checkpoint-at)
    --restore-from <PATH>
                         resume a .jckpt instead of starting at tick zero;
                         any --threads value restores bit-identically, but
                         every other knob must fingerprint-match
    --record <PATH>      record the request stream to a .jrpl replay log
    --replay <PATH>      re-execute a .jrpl request stream in place of the
                         workload generator (same verdicts and digests)
    --reduce             bisect the configured --fault-plan's divergence
                         (vs the same windows at rate 0) to a minimal
                         witness window; prints a REDUCE_WINDOW= line
    --witness-out <PATH> write the self-contained .jwit witness
                         (only with --reduce)
    --help               print this help
";

fn parse_u64(flag: &str, value: Option<&str>) -> Result<u64, CliError> {
    let v = value.ok_or_else(|| CliError(format!("{flag} requires a value")))?;
    v.parse()
        .map_err(|_| CliError(format!("{flag}: '{v}' is not a number")))
}

fn parse_secs(flag: &str, value: Option<&str>) -> Result<SimDuration, CliError> {
    let v = value.ok_or_else(|| CliError(format!("{flag} requires a value")))?;
    let secs: f64 = v
        .parse()
        .map_err(|_| CliError(format!("{flag}: '{v}' is not a number")))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(CliError(format!("{flag}: '{v}' is not a duration")));
    }
    Ok(SimDuration::from_secs_f64(secs))
}

fn parse_path(flag: &str, value: Option<&str>) -> Result<PathBuf, CliError> {
    let v = value.ok_or_else(|| CliError(format!("{flag} requires a value")))?;
    Ok(PathBuf::from(v))
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on unknown flags,
/// missing values, out-of-range selections, or an unreadable/invalid
/// `--fault-plan` file or spec. `--help` parses to [`Cli::Help`], which
/// the binary prints and exits successfully on.
pub fn parse_args<I, S>(args: I) -> Result<Cli, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let mut config = SutConfig::at_ir(40);
    let mut plan = RunPlan::default();
    let mut select = FigureSelect::All;
    let mut trace_out = None;
    let mut checkpoint_at = None;
    let mut checkpoint_out = None;
    let mut restore_from = None;
    let mut record_out = None;
    let mut replay_from = None;
    let mut reduce = false;
    let mut witness_out = None;
    let mut nodes = 1usize;
    let mut dispatch = DispatchPolicy::default();
    let mut scenario_spec: Option<Box<ScenarioSpec>> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).map(String::as_str);
        match flag {
            "--help" | "-h" => return Ok(Cli::Help),
            "--ir" => {
                config.ir = parse_u64(flag, value)? as u32;
                if config.ir == 0 {
                    return Err(CliError("--ir must be positive".into()));
                }
                i += 1;
            }
            "--steady" => {
                plan.steady = SimDuration::from_secs(parse_u64(flag, value)?);
                i += 1;
            }
            "--ramp" => {
                plan.ramp_up = SimDuration::from_secs(parse_u64(flag, value)?);
                i += 1;
            }
            "--seed" => {
                config.seed = parse_u64(flag, value)?;
                i += 1;
            }
            "--threads" => {
                config.threads = parse_u64(flag, value)? as usize;
                if config.threads == 0 {
                    return Err(CliError("--threads must be positive".into()));
                }
                i += 1;
            }
            "--sched" => {
                config.sched = match value {
                    Some("quantum") => SchedMode::Quantum,
                    Some("event") => SchedMode::Event,
                    Some(other) => {
                        return Err(CliError(format!("unknown sched '{other}' (quantum|event)")))
                    }
                    None => return Err(CliError("--sched requires a value".into())),
                };
                i += 1;
            }
            "--scenario" => {
                let v = value.ok_or_else(|| CliError("--scenario requires a value".into()))?;
                match v {
                    "jas" => config.scenario = ScenarioKind::JAppServer,
                    "trade" => config.scenario = ScenarioKind::TradeLike,
                    path if path.ends_with(".toml") || path.contains('/') => {
                        let text = std::fs::read_to_string(path).map_err(|e| {
                            CliError(format!("--scenario: cannot read '{path}': {e}"))
                        })?;
                        let spec = ScenarioSpec::parse(&text)
                            .map_err(|e| CliError(format!("--scenario: {path}: {e}")))?;
                        config.ir = spec.ir;
                        config.scenario = match spec.app {
                            AppKind::Jas => ScenarioKind::JAppServer,
                            AppKind::Trade => ScenarioKind::TradeLike,
                        };
                        config.curve = spec.compile_curve();
                        config.faults.plan = spec.plan();
                        config.trace = spec.trace_spec();
                        plan.ramp_up = SimDuration::from_secs(spec.ramp_s);
                        plan.steady = SimDuration::from_secs(spec.steady_s);
                        nodes = spec.nodes;
                        dispatch = spec.dispatch;
                        scenario_spec = Some(Box::new(spec));
                    }
                    other => {
                        return Err(CliError(format!(
                            "unknown scenario '{other}' (jas|trade, or a path to a .toml spec)"
                        )))
                    }
                }
                i += 1;
            }
            "--no-large-pages" => config.machine.addr_map.heap_large_pages = false,
            "--code-large-pages" => config.machine.addr_map.code_large_pages = true,
            "--generational" => {
                config.jvm.minor_every_bytes = Some(parse_u64(flag, value)? << 20);
                i += 1;
            }
            "--fault-plan" => {
                let spec = value
                    .ok_or_else(|| CliError("--fault-plan requires a value".into()))?
                    .to_string();
                // File-sourced plans keep the path in parse errors, so
                // `plan[i]` positions point somewhere actionable.
                let (spec, src) = match spec.strip_prefix('@') {
                    Some(path) => {
                        let text = std::fs::read_to_string(path).map_err(|e| {
                            CliError(format!("--fault-plan: cannot read '{path}': {e}"))
                        })?;
                        (text, Some(path.to_string()))
                    }
                    None => (spec.clone(), None),
                };
                config.faults.plan = FaultPlan::parse(spec.trim()).map_err(|e| match &src {
                    Some(path) => CliError(format!("--fault-plan: {path}: {e}")),
                    None => CliError(format!("--fault-plan: {e}")),
                })?;
                i += 1;
            }
            "--trace" => {
                let spec = value.ok_or_else(|| CliError("--trace requires a value".into()))?;
                config.trace =
                    TraceSpec::parse(spec).map_err(|e| CliError(format!("--trace: {e}")))?;
                i += 1;
            }
            "--trace-out" => {
                let path = value.ok_or_else(|| CliError("--trace-out requires a value".into()))?;
                trace_out = Some(PathBuf::from(path));
                i += 1;
            }
            "--host-prof" => config.host_prof = true,
            "--checkpoint-at" => {
                checkpoint_at = Some(parse_secs(flag, value)?);
                i += 1;
            }
            "--checkpoint-out" => {
                checkpoint_out = Some(parse_path(flag, value)?);
                i += 1;
            }
            "--restore-from" => {
                restore_from = Some(parse_path(flag, value)?);
                i += 1;
            }
            "--record" => {
                record_out = Some(parse_path(flag, value)?);
                i += 1;
            }
            "--replay" => {
                replay_from = Some(parse_path(flag, value)?);
                i += 1;
            }
            "--nodes" => {
                nodes = parse_u64(flag, value)? as usize;
                if nodes == 0 {
                    return Err(CliError("--nodes must be positive".into()));
                }
                i += 1;
            }
            "--dispatch" => {
                let v = value.ok_or_else(|| CliError("--dispatch requires a value".into()))?;
                dispatch =
                    DispatchPolicy::parse(v).map_err(|e| CliError(format!("--dispatch: {e}")))?;
                i += 1;
            }
            "--reduce" => reduce = true,
            "--witness-out" => {
                witness_out = Some(parse_path(flag, value)?);
                i += 1;
            }
            "--figure" => {
                select = match value {
                    Some("all") => FigureSelect::All,
                    Some("locking") => FigureSelect::Locking,
                    Some("utilization") => FigureSelect::Utilization,
                    Some("resilience") => FigureSelect::Resilience,
                    Some("tprof") => FigureSelect::Tprof,
                    Some("vmstat") => FigureSelect::Vmstat,
                    Some("sched") => FigureSelect::Sched,
                    Some("cluster") => FigureSelect::Cluster,
                    Some("scenario") => FigureSelect::Scenario,
                    Some(n) => {
                        let n: u8 = n
                            .parse()
                            .map_err(|_| CliError(format!("--figure: bad selector '{n}'")))?;
                        if !(2..=10).contains(&n) {
                            return Err(CliError("--figure: figures are 2..=10".into()));
                        }
                        FigureSelect::Figure(n)
                    }
                    None => return Err(CliError("--figure requires a value".into())),
                };
                i += 1;
            }
            other => return Err(CliError(format!("unknown flag '{other}'\n\n{USAGE}"))),
        }
        i += 1;
    }
    if plan.steady.is_zero() {
        return Err(CliError("--steady must be positive".into()));
    }
    if checkpoint_at.is_some() && checkpoint_out.is_none() {
        return Err(CliError("--checkpoint-at requires --checkpoint-out".into()));
    }
    if checkpoint_out.is_some() && checkpoint_at.is_none() {
        return Err(CliError("--checkpoint-out requires --checkpoint-at".into()));
    }
    if record_out.is_some() && replay_from.is_some() {
        return Err(CliError(
            "--record and --replay are mutually exclusive".into(),
        ));
    }
    if restore_from.is_some() && (record_out.is_some() || replay_from.is_some()) {
        // Recording and replay both anchor at tick zero; a restored engine
        // resumes mid-run.
        return Err(CliError(
            "--restore-from cannot be combined with --record/--replay".into(),
        ));
    }
    if witness_out.is_some() && !reduce {
        return Err(CliError("--witness-out requires --reduce".into()));
    }
    if scenario_spec.is_some()
        && (checkpoint_at.is_some()
            || restore_from.is_some()
            || record_out.is_some()
            || replay_from.is_some()
            || reduce)
    {
        // A scenario is a self-contained pinned artifact; the
        // checkpoint/replay/reduce tooling runs against explicit flag
        // configurations only.
        return Err(CliError(
            "--scenario <file> cannot be combined with checkpoint/record/replay/reduce flags"
                .into(),
        ));
    }
    if nodes > 1
        && (checkpoint_at.is_some()
            || restore_from.is_some()
            || record_out.is_some()
            || replay_from.is_some()
            || trace_out.is_some()
            || reduce)
    {
        // Per-node snapshots are the LB's business (warm restarts); the
        // single-engine checkpoint/replay/reduce tooling has no fleet
        // equivalent yet.
        return Err(CliError(
            "--nodes > 1 cannot be combined with checkpoint/record/replay/trace-export/reduce flags"
                .into(),
        ));
    }
    if select == FigureSelect::Cluster && nodes < 2 {
        return Err(CliError("--figure cluster requires --nodes > 1".into()));
    }
    if select == FigureSelect::Scenario && scenario_spec.is_none() {
        return Err(CliError(
            "--figure scenario requires --scenario <file>".into(),
        ));
    }
    if reduce {
        if config.faults.plan.is_empty() {
            return Err(CliError(
                "--reduce needs a --fault-plan to diverge from".into(),
            ));
        }
        if checkpoint_at.is_some()
            || restore_from.is_some()
            || record_out.is_some()
            || replay_from.is_some()
        {
            return Err(CliError(
                "--reduce runs its own engines; drop the checkpoint/replay flags".into(),
            ));
        }
    }
    Ok(Cli::Run(Box::new(CliOptions {
        config,
        plan,
        select,
        trace_out,
        checkpoint_at,
        checkpoint_out,
        restore_from,
        record_out,
        replay_from,
        reduce,
        witness_out,
        nodes,
        dispatch,
        scenario_spec,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, CliError> {
        match parse_args(args.iter().copied())? {
            Cli::Run(o) => Ok(*o),
            Cli::Help => panic!("expected a run, got help"),
        }
    }

    #[test]
    fn defaults_with_no_flags() {
        let o = parse(&[]).unwrap();
        assert!(o.config.faults.plan.is_empty());
        assert_eq!(o.config.ir, 40);
        assert_eq!(o.select, FigureSelect::All);
        assert_eq!(o.config.scenario, ScenarioKind::JAppServer);
        assert!(!o.config.trace.enabled());
        assert!(!o.config.host_prof);
        assert!(o.trace_out.is_none());
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse(&[
            "--ir",
            "47",
            "--steady",
            "60",
            "--ramp",
            "5",
            "--seed",
            "7",
            "--threads",
            "8",
            "--scenario",
            "trade",
            "--no-large-pages",
            "--code-large-pages",
            "--generational",
            "4",
            "--figure",
            "7",
        ])
        .unwrap();
        assert_eq!(o.config.ir, 47);
        assert_eq!(o.plan.steady.as_secs_f64(), 60.0);
        assert_eq!(o.plan.ramp_up.as_secs_f64(), 5.0);
        assert_eq!(o.config.seed, 7);
        assert_eq!(o.config.threads, 8);
        assert_eq!(o.config.scenario, ScenarioKind::TradeLike);
        assert!(!o.config.machine.addr_map.heap_large_pages);
        assert!(o.config.machine.addr_map.code_large_pages);
        assert_eq!(o.config.jvm.minor_every_bytes, Some(4 << 20));
        assert_eq!(o.select, FigureSelect::Figure(7));
    }

    #[test]
    fn figure_selectors() {
        assert_eq!(
            parse(&["--figure", "all"]).unwrap().select,
            FigureSelect::All
        );
        assert_eq!(
            parse(&["--figure", "locking"]).unwrap().select,
            FigureSelect::Locking
        );
        assert_eq!(
            parse(&["--figure", "utilization"]).unwrap().select,
            FigureSelect::Utilization
        );
        assert_eq!(
            parse(&["--figure", "resilience"]).unwrap().select,
            FigureSelect::Resilience
        );
        assert_eq!(
            parse(&["--figure", "tprof"]).unwrap().select,
            FigureSelect::Tprof
        );
        assert_eq!(
            parse(&["--figure", "vmstat"]).unwrap().select,
            FigureSelect::Vmstat
        );
        assert_eq!(
            parse(&["--figure", "sched"]).unwrap().select,
            FigureSelect::Sched
        );
        assert!(parse(&["--figure", "1"]).is_err());
        assert!(parse(&["--figure", "11"]).is_err());
        assert!(parse(&["--figure", "xyz"]).is_err());
    }

    #[test]
    fn sched_flag_parses() {
        assert_eq!(parse(&[]).unwrap().config.sched, SchedMode::Quantum);
        assert_eq!(
            parse(&["--sched", "quantum"]).unwrap().config.sched,
            SchedMode::Quantum
        );
        assert_eq!(
            parse(&["--sched", "event"]).unwrap().config.sched,
            SchedMode::Event
        );
        assert!(parse(&["--sched"]).unwrap_err().0.contains("requires"));
        assert!(parse(&["--sched", "cfs"])
            .unwrap_err()
            .0
            .contains("unknown sched"));
    }

    #[test]
    fn trace_flags_parse() {
        let o = parse(&["--trace", "all", "--trace-out", "out.json", "--host-prof"]).unwrap();
        assert!(o.config.trace.enabled());
        assert!(o.config.host_prof);
        assert_eq!(o.trace_out, Some(PathBuf::from("out.json")));
        let o = parse(&["--trace", "db,jms,gc"]).unwrap();
        assert!(o.config.trace.wants(jas_trace::TraceCategory::Db));
        assert!(o.config.trace.wants(jas_trace::TraceCategory::Jms));
        assert!(!o.config.trace.wants(jas_trace::TraceCategory::Pool));
        assert!(parse(&["--trace"]).unwrap_err().0.contains("requires"));
        assert!(parse(&["--trace", "bogus"])
            .unwrap_err()
            .0
            .contains("unknown trace category"));
        assert!(parse(&["--trace-out"]).unwrap_err().0.contains("requires"));
    }

    #[test]
    fn fault_plan_inline_spec_parses() {
        let o = parse(&["--fault-plan", "db-lock@10-20:0.5,gc-storm@5-6:1"]).unwrap();
        assert_eq!(o.config.faults.plan.windows().len(), 2);
    }

    #[test]
    fn fault_plan_errors_are_descriptive() {
        assert!(parse(&["--fault-plan"])
            .unwrap_err()
            .0
            .contains("requires a value"));
        assert!(parse(&["--fault-plan", "bogus@1-2:0.5"])
            .unwrap_err()
            .0
            .contains("--fault-plan"));
        assert!(parse(&["--fault-plan", "@/no/such/file"])
            .unwrap_err()
            .0
            .contains("cannot read"));
    }

    #[test]
    fn fault_plan_reads_spec_from_file() {
        let path = std::env::temp_dir().join("jas2004-cli-fault-plan-test.txt");
        std::fs::write(&path, "db-io@1-2:0.25\n").unwrap();
        let o = parse(&["--fault-plan", &format!("@{}", path.display())]).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(o.config.faults.plan.windows().len(), 1);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["--ir"]).unwrap_err().0.contains("requires a value"));
        assert!(parse(&["--ir", "abc"])
            .unwrap_err()
            .0
            .contains("not a number"));
        assert!(parse(&["--ir", "0"]).unwrap_err().0.contains("positive"));
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&["--scenario", "weblogic"])
            .unwrap_err()
            .0
            .contains("unknown scenario"));
        assert!(parse(&["--bogus"]).unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn checkpoint_and_replay_flags_parse() {
        let o = parse(&["--checkpoint-at", "7.5", "--checkpoint-out", "x.jckpt"]).unwrap();
        assert_eq!(
            o.checkpoint_at,
            Some(SimDuration::from_secs_f64(7.5)),
            "fractional seconds survive parsing"
        );
        assert_eq!(o.checkpoint_out, Some(PathBuf::from("x.jckpt")));
        let o = parse(&["--restore-from", "x.jckpt"]).unwrap();
        assert_eq!(o.restore_from, Some(PathBuf::from("x.jckpt")));
        let o = parse(&["--record", "run.jrpl"]).unwrap();
        assert_eq!(o.record_out, Some(PathBuf::from("run.jrpl")));
        let o = parse(&["--replay", "run.jrpl"]).unwrap();
        assert_eq!(o.replay_from, Some(PathBuf::from("run.jrpl")));
        let o = parse(&[
            "--fault-plan",
            "db-lock@10-20:0.5",
            "--reduce",
            "--witness-out",
            "w.jwit",
        ])
        .unwrap();
        assert!(o.reduce);
        assert_eq!(o.witness_out, Some(PathBuf::from("w.jwit")));
    }

    #[test]
    fn checkpoint_and_replay_flag_combinations_are_validated() {
        let err = |args: &[&str]| parse(args).unwrap_err().0;
        assert!(err(&["--checkpoint-at", "5"]).contains("--checkpoint-out"));
        assert!(err(&["--checkpoint-out", "x.jckpt"]).contains("--checkpoint-at"));
        assert!(err(&["--checkpoint-at", "-1", "--checkpoint-out", "x"]).contains("duration"));
        assert!(err(&["--checkpoint-at", "abc", "--checkpoint-out", "x"]).contains("number"));
        assert!(err(&["--record", "a", "--replay", "b"]).contains("mutually exclusive"));
        assert!(err(&["--restore-from", "a", "--record", "b"]).contains("--restore-from"));
        assert!(err(&["--restore-from", "a", "--replay", "b"]).contains("--restore-from"));
        assert!(err(&["--witness-out", "w"]).contains("--reduce"));
        assert!(err(&["--reduce"]).contains("--fault-plan"));
        assert!(
            err(&["--fault-plan", "db-lock@1-2:1", "--reduce", "--record", "a"])
                .contains("--reduce")
        );
    }

    #[test]
    fn cluster_flags_parse_and_validate() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.nodes, 1);
        assert_eq!(o.dispatch, DispatchPolicy::RoundRobin);
        let o = parse(&["--nodes", "3", "--dispatch", "least-conn"]).unwrap();
        assert_eq!(o.nodes, 3);
        assert_eq!(o.dispatch, DispatchPolicy::LeastConn);
        let o = parse(&[
            "--nodes",
            "2",
            "--dispatch",
            "ps-clone",
            "--figure",
            "cluster",
        ])
        .unwrap();
        assert_eq!(o.select, FigureSelect::Cluster);

        let err = |args: &[&str]| parse(args).unwrap_err().0;
        assert!(err(&["--nodes", "0"]).contains("positive"));
        assert!(err(&["--nodes"]).contains("requires a value"));
        assert!(err(&["--dispatch", "random"]).contains("unknown dispatch policy"));
        assert!(err(&["--figure", "cluster"]).contains("--nodes"));
        assert!(err(&["--nodes", "2", "--record", "a"]).contains("--nodes"));
        assert!(err(&["--nodes", "2", "--replay", "a"]).contains("--nodes"));
        assert!(err(&["--nodes", "2", "--restore-from", "a"]).contains("--nodes"));
        assert!(err(&[
            "--nodes",
            "2",
            "--checkpoint-at",
            "5",
            "--checkpoint-out",
            "x"
        ])
        .contains("--nodes"));
        assert!(err(&[
            "--nodes",
            "2",
            "--fault-plan",
            "node-crash@1-2:0.5",
            "--reduce"
        ])
        .contains("--nodes"));
    }

    #[test]
    fn fleet_fault_kinds_parse_from_the_cli() {
        let o = parse(&[
            "--nodes",
            "2",
            "--fault-plan",
            "node-crash@10-20:0.1,node-slow@5-15:0.3,partition@8-9:1",
        ])
        .unwrap();
        assert_eq!(o.config.faults.plan.windows().len(), 3);
        assert!(o.config.faults.plan.has_fleet());
        assert!(!o.config.faults.plan.has_local());
    }

    #[test]
    fn fault_plan_file_errors_carry_the_path_and_position() {
        let path = std::env::temp_dir().join("jas2004-cli-bad-fault-plan-test.txt");
        std::fs::write(&path, "db-io@1-2:0.25\nnode-crash@9-3:0.5\n").unwrap();
        let err = parse(&["--fault-plan", &format!("@{}", path.display())]).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            err.0.contains(&path.display().to_string()),
            "file plan errors name the file: {err}"
        );
        assert!(err.0.contains("plan[1]"), "position survives: {err}");
    }

    fn write_scenario(name: &str, body: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("{name}.toml"));
        std::fs::write(&path, body).unwrap();
        path
    }

    const SCENARIO_BODY: &str = "\
[scenario]
name = \"cli-spec\"
version = 1
[run]
ramp_s = 5
steady_s = 30
[workload]
ir = 12
curve = \"flash-crowd\"
[workload.flash]
start_s = 10
ramp_s = 2
hold_s = 4
peak = 3
[faults]
plan = \"gc-storm@6-7:1\"
[cluster]
nodes = 3
dispatch = \"least-conn\"
max_in_flight = 40
";

    #[test]
    fn scenario_file_populates_config_plan_and_topology() {
        let path = write_scenario("jas2004-cli-spec", SCENARIO_BODY);
        let o = parse(&["--scenario", &path.display().to_string()]).unwrap();
        std::fs::remove_file(&path).ok();
        let spec = o.scenario_spec.expect("spec retained");
        assert_eq!(spec.name, "cli-spec");
        assert_eq!(o.config.ir, 12);
        assert!(!o.config.curve.is_flat());
        assert_eq!(o.config.faults.plan.windows().len(), 1);
        assert_eq!(o.plan.ramp_up.as_secs_f64(), 5.0);
        assert_eq!(o.plan.steady.as_secs_f64(), 30.0);
        assert_eq!(o.nodes, 3);
        assert_eq!(o.dispatch, DispatchPolicy::LeastConn);
        assert_eq!(spec.max_in_flight, 40);
    }

    #[test]
    fn flags_after_a_scenario_file_override_spec_values() {
        let path = write_scenario("jas2004-cli-spec-override", SCENARIO_BODY);
        let o = parse(&[
            "--scenario",
            &path.display().to_string(),
            "--ir",
            "20",
            "--nodes",
            "1",
        ])
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(o.config.ir, 20);
        assert_eq!(o.nodes, 1);
        assert!(o.scenario_spec.is_some());
    }

    #[test]
    fn scenario_file_errors_and_combinations_are_validated() {
        let err = |args: &[&str]| parse(args).unwrap_err().0;
        assert!(err(&["--scenario", "/no/such/scenario.toml"]).contains("cannot read"));
        assert!(err(&["--scenario", "weblogic"]).contains("unknown scenario"));
        assert!(err(&["--figure", "scenario"]).contains("--scenario"));
        let bad = write_scenario("jas2004-cli-bad-spec", "[scenario]\nname = \"x!\"\n");
        let msg = err(&["--scenario", &bad.display().to_string()]);
        std::fs::remove_file(&bad).ok();
        assert!(msg.contains(&bad.display().to_string()), "{msg}");
        let good = write_scenario("jas2004-cli-spec-combo", SCENARIO_BODY);
        let msg = err(&["--scenario", &good.display().to_string(), "--record", "a"]);
        std::fs::remove_file(&good).ok();
        assert!(msg.contains("--scenario"), "{msg}");
    }

    #[test]
    fn help_is_not_an_error() {
        assert!(matches!(parse_args(["--help"]).unwrap(), Cli::Help));
        assert!(matches!(parse_args(["-h"]).unwrap(), Cli::Help));
    }
}
