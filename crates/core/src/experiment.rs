//! Experiment runner: executes a configured run and packages every
//! instrument's output into [`RunArtifacts`] for the figure layer.

use crate::config::{RunPlan, SutConfig};
use crate::engine::Engine;
use jas_appserver::PoolKind;
use jas_cpu::CounterFile;
use jas_db::{DeviceStats, PoolStats, TxnStats};
use jas_faults::FaultCounters;
use jas_hpm::{
    Flatness, GcLogEntry, GcLogSummary, OmniscientHpm, SchedStats, Tprof, Utilization, VmstatSample,
};
use jas_jvm::LockStats;
use jas_trace::Tracer;
use jas_workload::{RequestKind, Verdict};

/// Everything one run produced.
#[derive(Debug)]
pub struct RunArtifacts {
    /// The configuration that ran.
    pub config: SutConfig,
    /// The timing plan that ran.
    pub plan: RunPlan,
    /// Steady-state machine counter deltas.
    pub counters: CounterFile,
    /// Full sampled counter series (all events, aligned).
    pub hpm: OmniscientHpm,
    /// Tick profile.
    pub tprof: Tprof,
    /// Profile flatness over JIT'd methods.
    pub flatness: Flatness,
    /// CPU utilization breakdown.
    pub utilization: Utilization,
    /// Verbose-GC entries.
    pub gc_entries: Vec<GcLogEntry>,
    /// Figure 3 summary (when at least two GCs happened in the window).
    pub gc_summary: Option<GcLogSummary>,
    /// Rendered verbose-GC log text.
    pub gc_log_text: String,
    /// Per-kind throughput series (Figure 2), completions/s per bin.
    pub throughput: Vec<(RequestKind, Vec<f64>)>,
    /// Completed operations per second over the steady window.
    pub jops: f64,
    /// Response-time verdict.
    pub verdict: Verdict,
    /// Completed requests (whole run).
    pub completed: u64,
    /// Aborted requests (whole run).
    pub aborted: u64,
    /// Java monitor statistics.
    pub locks: LockStats,
    /// DB buffer-pool statistics.
    pub db_pool: PoolStats,
    /// Storage-device statistics.
    pub device: DeviceStats,
    /// DB transaction statistics.
    pub db_txns: TxnStats,
    /// JIT'd code bytes at end of run.
    pub jit_code_bytes: u64,
    /// JIT compilations performed.
    pub jit_compilations: u64,
    /// Web-container pool usage.
    pub web_pool: jas_appserver::PoolUsage,
    /// Cumulative fault/resilience counters (all zero on a healthy run).
    pub fault_counters: FaultCounters,
    /// Fault/resilience events recorded over the run.
    pub fault_events: usize,
    /// Thread-count-invariant digest of the fault-event series.
    pub fault_digest: u64,
    /// FNV-1a digest of the machine-wide HPM counter totals: the cheap
    /// end-of-run identity check used by the replay-smoke CI gate.
    pub hpm_digest: u64,
    /// Rendered tick-profile report (top methods by sampled ticks).
    pub tprof_text: String,
    /// Periodic vmstat interval rows over the steady window.
    pub vmstat_samples: Vec<VmstatSample>,
    /// The request trace (empty when tracing was off).
    pub trace: Tracer,
    /// Thread-count-invariant digest of the trace-event series.
    pub trace_digest: u64,
    /// Rendered `HOSTPROF` section, when host profiling was on.
    pub hostprof_text: Option<String>,
    /// Scheduler-occupancy counters (quanta executed/skipped, wake-ups
    /// dispatched, heap high-water mark).
    pub sched: SchedStats,
}

/// Runs `cfg` under `plan` to completion and collects the artifacts.
#[must_use]
pub fn run_experiment(cfg: SutConfig, plan: RunPlan) -> RunArtifacts {
    let mut engine = Engine::new(cfg.clone(), plan);
    engine.run_to_end();
    run_artifacts_from(cfg, plan, engine)
}

/// Packages a finished engine's instruments into [`RunArtifacts`] (for
/// callers that drove the engine themselves).
#[must_use]
pub fn run_artifacts_from(config: SutConfig, plan: RunPlan, engine: Engine) -> RunArtifacts {
    let counters = engine.steady_counters();
    let flatness = engine.tprof().flatness(engine.jvm().registry());
    let utilization = engine.vmstat().utilization();
    let gc_entries = engine.vgc().entries().to_vec();
    let gc_summary = engine.vgc().summarize(plan.steady_start(), plan.end());
    let gc_log_text = engine.vgc().render();
    let throughput = RequestKind::ALL
        .iter()
        .map(|&k| (k, engine.metrics().throughput_series(k)))
        .collect();
    let jops = engine.metrics().jops();
    let verdict = engine.metrics().verdict();
    let completed = engine.completed_requests();
    let aborted = engine.aborted_requests();
    let locks = engine.jvm().monitors_stats();
    let db_pool = engine.db().pool_stats();
    let device = engine.db().device_stats();
    let db_txns = engine.db().txn_stats();
    let jit_code_bytes = engine.jvm().jit().compiled_bytes();
    let jit_compilations = engine.jvm().jit().compilations();
    let web_pool = engine.appserver().usage(PoolKind::WebContainer);
    let fault_counters = *engine.fault_counters();
    let fault_events = engine.fault_log().len();
    let fault_digest = engine.fault_log().digest();
    let hpm_digest = engine.hpm_digest();
    let tprof_text = engine.tprof().render(engine.jvm().registry(), 20);
    let vmstat_samples = engine.vmstat().samples().to_vec();
    let hostprof_text = engine.host_profile().map(|r| r.render());
    let sched = engine.sched_stats();
    let (hpm, tprof, trace) = engine.into_instruments();
    let trace_digest = trace.digest();
    RunArtifacts {
        config,
        plan,
        counters,
        hpm,
        tprof,
        flatness,
        utilization,
        gc_entries,
        gc_summary,
        gc_log_text,
        throughput,
        jops,
        verdict,
        completed,
        aborted,
        locks,
        db_pool,
        device,
        db_txns,
        jit_code_bytes,
        jit_compilations,
        web_pool,
        fault_counters,
        fault_events,
        fault_digest,
        hpm_digest,
        tprof_text,
        vmstat_samples,
        trace,
        trace_digest,
        hostprof_text,
        sched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_produces_coherent_artifacts() {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        let art = run_experiment(cfg, RunPlan::quick());
        assert!(art.completed > 100);
        assert!(art.jops > 0.0);
        assert!(art.counters.cpi().unwrap() > 1.0);
        assert!(!art.gc_entries.is_empty());
        assert!(art.tprof.total_ticks() > 0);
        assert!(art.jit_code_bytes > 0, "hot methods must have compiled");
        assert_eq!(art.throughput.len(), RequestKind::ALL.len());
        assert!(art.locks.acquisitions > 0);
        assert!(art.db_pool.accesses > 0);
        assert!(!art.gc_log_text.is_empty());
        assert_eq!(art.fault_counters, FaultCounters::default());
        assert_eq!(art.fault_events, 0, "healthy runs record no fault events");
        assert!(art.trace.is_empty(), "tracing defaults to off");
        assert!(
            !art.vmstat_samples.is_empty(),
            "steady window produces rows"
        );
        assert!(art.tprof_text.contains("Process/Component Ticks"));
        assert!(
            art.hostprof_text.is_none(),
            "host profiling defaults to off"
        );
        assert!(art.sched.quanta_executed > 0);
        assert_eq!(
            art.sched.idle_ticks_skipped, 0,
            "the quantum scheduler never skips"
        );
    }

    #[test]
    fn event_sched_experiment_matches_quantum() {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        let quantum = run_experiment(cfg.clone(), RunPlan::quick());
        cfg.sched = crate::config::SchedMode::Event;
        let event = run_experiment(cfg, RunPlan::quick());
        assert_eq!(event.hpm_digest, quantum.hpm_digest);
        assert_eq!(event.completed, quantum.completed);
        assert_eq!(event.jops, quantum.jops);
        assert_eq!(
            event.sched.total_ticks(),
            quantum.sched.quanta_executed,
            "skipped + executed quanta must cover the same timeline"
        );
    }

    #[test]
    fn traced_run_collects_events() {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        cfg.trace = jas_trace::TraceSpec::all();
        cfg.host_prof = true;
        let art = run_experiment(cfg, RunPlan::quick());
        assert!(!art.trace.is_empty());
        assert_ne!(art.trace_digest, 0);
        assert_eq!(art.trace_digest, art.trace.digest());
        let text = art.hostprof_text.expect("host profile requested");
        assert!(text.starts_with("HOSTPROF"));
    }
}
