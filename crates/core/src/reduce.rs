//! Automatic witness reduction: shrink a digest divergence between two
//! runs to the smallest `[checkpoint, window]` that still reproduces it.
//!
//! Given two configurations that *should* agree but don't (a fault plan
//! versus a healthy run, a code change versus a golden baseline), replaying
//! both full runs to debug the divergence wastes almost all of the work:
//! deterministic engines that agree at time *t* agree at every earlier
//! time. The reducer exploits that monotonicity — it marches both engines
//! in lockstep over a coarse grid comparing full-state probe digests,
//! brackets the first disagreeing interval, then bisects inside it by
//! restoring from the last-agreeing checkpoint, yielding a witness whose
//! window is a few quanta wide. The emitted [`DivergenceWitness`] carries
//! both checkpoints and is self-contained: anyone with the two configs can
//! re-run just the window and watch the states split.

use crate::checkpoint::{checkpoint_bytes, restore_engine};
use crate::config::{RunPlan, SutConfig};
use crate::engine::Engine;
use jas_simkernel::snapshot::WordDigest;
use jas_simkernel::{Loader, SimDuration, SimTime, StateIo};

/// Magic word opening a serialized witness (`"JASWTNS1"`).
pub const WITNESS_MAGIC: u64 = 0x4A41_5357_544E_5331;

/// A reduced divergence: the smallest bracketing window the reducer found,
/// plus checkpoints of both runs at the window start.
///
/// At `window_start` the two runs' probe digests still agree; by
/// `window_end` they differ. Restoring both checkpoints and running each
/// engine to `window_end` reproduces the divergence without replaying
/// anything before the window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergenceWitness {
    /// Last quantum boundary where both runs' probe digests agreed.
    pub window_start: SimTime,
    /// First examined boundary where the probe digests differ.
    pub window_end: SimTime,
    /// End of the full run the divergence was reduced from.
    pub run_end: SimTime,
    /// Run A's probe digest at `window_end`.
    pub digest_a: u64,
    /// Run B's probe digest at `window_end`.
    pub digest_b: u64,
    /// `.jckpt` of run A at `window_start`.
    pub ckpt_a: Vec<u8>,
    /// `.jckpt` of run B at `window_start`.
    pub ckpt_b: Vec<u8>,
}

impl DivergenceWitness {
    /// The reduced window length.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window_end.saturating_since(self.window_start)
    }

    /// The window length as a fraction of the full run.
    #[must_use]
    pub fn window_fraction(&self) -> f64 {
        self.window().as_secs_f64() / self.run_end.as_secs_f64().max(1e-12)
    }

    /// Serializes the witness (layout: `docs/jckpt-format.md`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = jas_simkernel::Saver::new();
        let mut words = vec![
            WITNESS_MAGIC,
            self.window_start.as_nanos(),
            self.window_end.as_nanos(),
            self.run_end.as_nanos(),
            self.digest_a,
            self.digest_b,
            self.ckpt_a.len() as u64,
            self.ckpt_b.len() as u64,
        ];
        for blob in [&self.ckpt_a, &self.ckpt_b] {
            debug_assert_eq!(blob.len() % 8, 0, "checkpoints are whole words");
            for chunk in blob.chunks_exact(8) {
                words.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            }
        }
        let mut digest = WordDigest::new();
        for &word in &words {
            digest.mix(word);
        }
        words.push(digest.value());
        for mut word in words {
            out.word(&mut word);
        }
        out.into_bytes()
    }

    /// Deserializes a witness produced by [`DivergenceWitness::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on a bad magic word, a truncated stream, or a trailer digest
    /// mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut loader = Loader::new(bytes);
        let mut read = || {
            let mut w = 0u64;
            loader.word(&mut w);
            w
        };
        let magic = read();
        if magic != WITNESS_MAGIC {
            return Err(format!(
                "not a witness: magic {magic:#018x} != {WITNESS_MAGIC:#018x}"
            ));
        }
        let window_start = SimTime::from_nanos(read());
        let window_end = SimTime::from_nanos(read());
        let run_end = SimTime::from_nanos(read());
        let digest_a = read();
        let digest_b = read();
        let len_a = read() as usize;
        let len_b = read() as usize;
        if !len_a.is_multiple_of(8)
            || !len_b.is_multiple_of(8)
            || bytes.len() < 9 * 8 + len_a + len_b
        {
            return Err("witness is truncated".into());
        }
        let mut blob = |len: usize| {
            let mut out = Vec::with_capacity(len);
            for _ in 0..len / 8 {
                let mut w = 0u64;
                loader.word(&mut w);
                out.extend_from_slice(&w.to_le_bytes());
            }
            out
        };
        let ckpt_a = blob(len_a);
        let ckpt_b = blob(len_b);
        let trailer = {
            let mut w = 0u64;
            loader.word(&mut w);
            w
        };
        loader.finish()?;
        let witness = DivergenceWitness {
            window_start,
            window_end,
            run_end,
            digest_a,
            digest_b,
            ckpt_a,
            ckpt_b,
        };
        // Recompute the trailer over the re-serialized body: the body
        // round-trips exactly, so the digests match iff the stream was
        // intact.
        let reserialized = witness.to_bytes();
        let body_words = reserialized.len() / 8 - 1;
        let mut check = WordDigest::new();
        for chunk in reserialized[..body_words * 8].chunks_exact(8) {
            check.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        if check.value() != trailer {
            return Err(format!(
                "witness is corrupt: trailer digest {trailer:#018x} != \
                 computed {:#018x}",
                check.value()
            ));
        }
        Ok(witness)
    }

    /// Re-runs just the reduced window from both checkpoints and checks
    /// that the divergence still reproduces: the probe digests agree at
    /// `window_start` and split into (`digest_a`, `digest_b`) by
    /// `window_end`.
    ///
    /// # Errors
    ///
    /// Fails when either checkpoint does not restore under its config, or
    /// when the window no longer reproduces the recorded digests (a stale
    /// witness from a different build).
    pub fn verify(
        &self,
        cfg_a: &SutConfig,
        cfg_b: &SutConfig,
        plan: RunPlan,
    ) -> Result<(), String> {
        let mut a = restore_engine(cfg_a, plan, &self.ckpt_a)?;
        let mut b = restore_engine(cfg_b, plan, &self.ckpt_b)?;
        if a.probe_digest() != b.probe_digest() {
            return Err("witness checkpoints already diverge at window start".into());
        }
        a.run_to(self.window_end);
        b.run_to(self.window_end);
        let (da, db) = (a.probe_digest(), b.probe_digest());
        if (da, db) != (self.digest_a, self.digest_b) {
            return Err(format!(
                "witness does not reproduce: got ({da:#018x}, {db:#018x}), \
                 recorded ({:#018x}, {:#018x})",
                self.digest_a, self.digest_b
            ));
        }
        Ok(())
    }
}

/// Reduces the divergence between the runs of `cfg_a` and `cfg_b` (same
/// plan) to a minimal witness window.
///
/// `grid` is the number of coarse probe intervals for the initial lockstep
/// march (32 is a good default: the march costs one full run per engine
/// regardless, and the follow-up bisection converges in `log2` restores).
/// The returned window is bracketed to a single coarse interval and then
/// bisected down to the quantum, so it ends up a tiny fraction of the run.
///
/// # Errors
///
/// Fails when the two runs never diverge (their probe digests agree at
/// every examined boundary including the run end), or when `grid` is zero.
pub fn reduce_divergence(
    cfg_a: &SutConfig,
    cfg_b: &SutConfig,
    plan: RunPlan,
    grid: usize,
) -> Result<DivergenceWitness, String> {
    if grid == 0 {
        return Err("reduction grid must be positive".into());
    }
    let end = plan.end();
    let step = SimDuration::from_nanos((end.as_nanos() / grid as u64).max(1));
    let quantum = cfg_a.quantum.max(cfg_b.quantum);

    let mut a = Engine::new(cfg_a.clone(), plan);
    let mut b = Engine::new(cfg_b.clone(), plan);
    if a.probe_digest() != b.probe_digest() {
        return Err(
            "the two configurations already diverge at tick zero; nothing to reduce \
             (construction-time state differs, e.g. a different seed or scenario)"
                .into(),
        );
    }

    // Coarse lockstep march: find the first grid boundary where the full
    // states disagree, keeping checkpoints at the last agreeing boundary.
    let mut lo = SimTime::ZERO;
    let mut ck_a = checkpoint_bytes(&mut a);
    let mut ck_b = checkpoint_bytes(&mut b);
    let mut diverged = None;
    while a.now() < end {
        let target = (a.now() + step).min(end);
        a.run_to(target);
        b.run_to(target);
        debug_assert_eq!(a.now(), b.now(), "same quantum, same boundaries");
        let (da, db) = (a.probe_digest(), b.probe_digest());
        if da != db {
            diverged = Some((a.now(), da, db));
            break;
        }
        lo = a.now();
        ck_a = checkpoint_bytes(&mut a);
        ck_b = checkpoint_bytes(&mut b);
    }
    let Some((mut hi, mut digest_a, mut digest_b)) = diverged else {
        return Err(format!(
            "no divergence: both runs have probe digest {:#018x} at run end",
            a.probe_digest()
        ));
    };

    // Bisect (lo, hi]: each probe restores both sides from the
    // last-agreeing checkpoints and runs only to the midpoint.
    while hi.saturating_since(lo) > quantum {
        let mid = SimTime::from_nanos(lo.as_nanos() + hi.saturating_since(lo).as_nanos() / 2);
        let mut a2 = restore_engine(cfg_a, plan, &ck_a)?;
        let mut b2 = restore_engine(cfg_b, plan, &ck_b)?;
        a2.run_to(mid);
        b2.run_to(mid);
        let reached = a2.now();
        if reached >= hi {
            break; // a quantum straddles the remaining gap
        }
        let (da, db) = (a2.probe_digest(), b2.probe_digest());
        if da != db {
            hi = reached;
            digest_a = da;
            digest_b = db;
        } else {
            if reached <= lo {
                break;
            }
            lo = reached;
            ck_a = checkpoint_bytes(&mut a2);
            ck_b = checkpoint_bytes(&mut b2);
        }
    }

    Ok(DivergenceWitness {
        window_start: lo,
        window_end: hi,
        run_end: end,
        digest_a,
        digest_b,
        ckpt_a: ck_a,
        ckpt_b: ck_b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jas_faults::{FaultKind, FaultPlan, FaultWindow};

    fn quick_cfg() -> SutConfig {
        let mut cfg = SutConfig::at_ir(10);
        cfg.machine.frequency_hz = 100_000.0;
        cfg.jvm.heap.capacity = 8 << 20;
        cfg.jvm.live_target = 2 << 20;
        cfg
    }

    /// Same fault window on both sides so the fault monitor runs (and the
    /// injector draws) identically; only the rate differs, so the first
    /// state difference is the first actual injection.
    fn rate_pair(start_s: f64, end_s: f64) -> (SutConfig, SutConfig) {
        let mut never = quick_cfg();
        never.faults.plan = FaultPlan::from_windows(vec![FaultWindow::new(
            FaultKind::DbLockTimeout,
            start_s,
            end_s,
            0.0,
        )]);
        let mut always = quick_cfg();
        always.faults.plan = FaultPlan::from_windows(vec![FaultWindow::new(
            FaultKind::DbLockTimeout,
            start_s,
            end_s,
            1.0,
        )]);
        (never, always)
    }

    #[test]
    fn reducer_brackets_a_seeded_fault() {
        let plan = RunPlan::quick();
        // The divergence is seeded at 60% of the quick run; the reduced
        // witness window must land on it and span ≤ 10% of the run.
        let end_s = plan.end().as_secs_f64();
        let (healthy, faulty) = rate_pair(end_s * 0.6, end_s);
        let witness = reduce_divergence(&healthy, &faulty, plan, 16).unwrap();
        assert!(
            witness.window_fraction() <= 0.10,
            "window {} of run {} is {:.1}% (> 10%)",
            witness.window().as_secs_f64(),
            end_s,
            witness.window_fraction() * 100.0
        );
        assert!(witness.window_start.as_secs_f64() >= end_s * 0.5);
        assert_ne!(witness.digest_a, witness.digest_b);
        witness.verify(&healthy, &faulty, plan).unwrap();
    }

    #[test]
    fn identical_runs_report_no_divergence() {
        let plan = RunPlan::quick();
        let cfg = quick_cfg();
        let err = reduce_divergence(&cfg, &cfg, plan, 4).unwrap_err();
        assert!(err.contains("no divergence"), "unexpected error: {err}");
    }

    #[test]
    fn witness_round_trips_through_bytes() {
        let plan = RunPlan::quick();
        let end_s = plan.end().as_secs_f64();
        let (healthy, faulty) = rate_pair(end_s * 0.5, end_s);
        let witness = reduce_divergence(&healthy, &faulty, plan, 8).unwrap();
        let bytes = witness.to_bytes();
        let back = DivergenceWitness::from_bytes(&bytes).unwrap();
        assert_eq!(back, witness);
        let mut corrupt = bytes.clone();
        corrupt[0] ^= 0xFF;
        assert!(DivergenceWitness::from_bytes(&corrupt).is_err());
    }
}
