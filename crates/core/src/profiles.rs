//! Per-component instruction-stream profiles.
//!
//! Each software component of the stack produces a characteristic stream:
//! JIT'd Java code has the big flat code footprint, virtual-call indirect
//! branches, and heap-heavy data references; the GC is a tight,
//! predictable, heap-sequential marker; the database walks its buffer pool;
//! the kernel has the SYNC-heavy profile of Section 4.2.4. The aggregate
//! instruction mix lands on the paper's memory intensity: a load every
//! ~3.2 instructions, a store every ~4.5 (one L1 reference per ~2
//! instructions), LARX every ~600 user instructions.
//!
//! Data references are tiered the way measured commercial workloads are:
//! a thread-private *hot* tier (stack + allocation-buffer reuse, mostly L1
//! hits), a *warm* transaction working set that overflows the L1 but
//! largely fits the shared L2 (the paper's 75% L2 hit rate for L1 misses),
//! and a shared *cold* tail over the full heap/buffer pool that falls
//! through to L3 and memory.

use jas_cpu::{AccessPattern, DataRegion, Region, StreamProfile, Window};
use jas_jvm::Component;

/// Sizes the data-side working sets (scaled together with the heap).
#[derive(Clone, Copy, Debug)]
pub struct FootprintConfig {
    /// Java heap bytes (scaled).
    pub heap_bytes: u64,
    /// JIT code-cache extent modeled for the I-side.
    pub jit_code_bytes: u64,
    /// DB buffer-pool bytes (scaled).
    pub buffer_pool_bytes: u64,
}

impl Default for FootprintConfig {
    fn default() -> Self {
        FootprintConfig {
            heap_bytes: 64 << 20,
            jit_code_bytes: 10 << 20,
            buffer_pool_bytes: 64 << 20,
        }
    }
}

fn stack_region(per_thread: u64) -> DataRegion {
    DataRegion {
        window: Window::new(Region::Stacks.base(), 8 << 20),
        weight: 0.40,
        pattern: AccessPattern::Hot {
            footprint: per_thread,
        },
    }
}

/// Thread-private hot objects (allocation buffer + hottest entities):
/// slightly larger than the L1, producing the L1-spill traffic that the L2
/// absorbs.
fn heap_hot(fp: &FootprintConfig, weight: f64) -> DataRegion {
    DataRegion {
        window: Window::new(Region::JavaHeap.base(), fp.heap_bytes),
        weight,
        pattern: AccessPattern::Hot { footprint: 8 << 10 },
    }
}

/// Warm transaction working set: overflows L1, mostly fits L2.
fn heap_warm(fp: &FootprintConfig, weight: f64) -> DataRegion {
    DataRegion {
        window: Window::new(Region::JavaHeap.base(), fp.heap_bytes),
        weight,
        pattern: AccessPattern::Skewed {
            hot_bytes: 512 << 10,
            granule: 512,
            hot_fraction: 0.90,
            burst: 20,
        },
    }
}

/// Cold tail over the whole heap: L2 misses satisfied by L3/memory.
fn heap_cold(fp: &FootprintConfig, weight: f64) -> DataRegion {
    DataRegion {
        window: Window::new(Region::JavaHeap.base(), fp.heap_bytes),
        weight,
        pattern: AccessPattern::Uniform { burst: 12 },
    }
}

/// Builds the stream profile for `component`.
#[must_use]
pub fn profile_for(component: Component, fp: &FootprintConfig) -> StreamProfile {
    match component {
        // JIT-compiled Java: app, app server, EJS, library. The paper's
        // signature stream: flat multi-MB code, virtual calls, heap data.
        Component::Application
        | Component::AppServer
        | Component::EnterpriseServices
        | Component::JavaLibrary => StreamProfile {
            code: Window::new(Region::JitCode.base(), fp.jit_code_bytes),
            code_jump_rate: 0.055,
            code_local: 0.90,
            code_active: 1536 << 10,
            code_zipf: 0.55, // flat
            loads_per_instr: 0.3125,
            stores_per_instr: 0.2222,
            cond_branch_per_instr: 0.16,
            ind_branch_per_instr: 0.022,
            cond_bias_strength: 0.945,
            cond_sites: 2600,
            ind_sites: 700,
            ind_targets_max: 8,
            larx_per_instr: 1.0 / 600.0,
            stcx_fail_prob: 0.02,
            sync_per_instr: 0.0008,
            call_per_instr: 0.014,
            store_fresh_fraction: 0.16,
            data: vec![
                stack_region(4 << 10),
                heap_hot(fp, 0.425),
                heap_warm(fp, 0.155),
                heap_cold(fp, 0.02),
            ],
        },
        // JVM runtime: interpreter loop and runtime helpers — smaller,
        // hotter native code, still heap-facing.
        Component::JvmRuntime | Component::JitCompiler => StreamProfile {
            code: Window::new(Region::NativeCode.base(), 6 << 20),
            code_jump_rate: 0.04,
            code_local: 0.88,
            code_active: 768 << 10,
            code_zipf: 0.9,
            loads_per_instr: 0.31,
            stores_per_instr: 0.21,
            cond_branch_per_instr: 0.17,
            ind_branch_per_instr: 0.018, // bytecode dispatch is indirect
            cond_bias_strength: 0.94,
            cond_sites: 1600,
            ind_sites: 300,
            ind_targets_max: 16,
            larx_per_instr: 1.0 / 900.0,
            stcx_fail_prob: 0.02,
            sync_per_instr: 0.001,
            call_per_instr: 0.018,
            store_fresh_fraction: 0.14,
            data: vec![
                stack_region(4 << 10),
                heap_hot(fp, 0.43),
                heap_warm(fp, 0.15),
                heap_cold(fp, 0.02),
            ],
        },
        // The collector: tight loops, very predictable branches, pointer
        // chasing across the whole heap in large pages, almost no locking.
        Component::Gc => StreamProfile {
            code: Window::new(Region::NativeCode.base() + (64 << 20), 192 << 10),
            code_jump_rate: 0.02,
            code_local: 0.92,
            code_active: 96 << 10,
            code_zipf: 1.2,
            loads_per_instr: 0.36,
            stores_per_instr: 0.14, // mark bits; fewer stores than mutators
            cond_branch_per_instr: 0.19,
            ind_branch_per_instr: 0.002,
            cond_bias_strength: 0.985,
            cond_sites: 256,
            ind_sites: 16,
            ind_targets_max: 2,
            larx_per_instr: 1.0 / 20_000.0,
            stcx_fail_prob: 0.001,
            sync_per_instr: 0.0001,
            call_per_instr: 0.008,
            store_fresh_fraction: 0.02,
            data: vec![
                // Address-ordered marking is partly sequential (the sweep
                // direction) and partly pointer chasing (reference fan-out)
                // — the blend keeps GC CPI near the mutators' (the paper
                // sees no strong CPI/GC correlation).
                DataRegion {
                    window: Window::new(Region::JavaHeap.base(), fp.heap_bytes),
                    weight: 0.48,
                    pattern: AccessPattern::Sequential { stride: 64 },
                },
                DataRegion {
                    window: Window::new(Region::JavaHeap.base(), fp.heap_bytes),
                    weight: 0.10,
                    pattern: AccessPattern::Uniform { burst: 4 },
                },
                stack_region(4 << 10),
                heap_warm(fp, 0.18),
            ],
        },
        // Native web server: request parsing over small buffers.
        Component::WebServer => StreamProfile {
            code: Window::new(Region::NativeCode.base() + (128 << 20), 2 << 20),
            code_jump_rate: 0.045,
            code_local: 0.85,
            code_active: 384 << 10,
            code_zipf: 0.85,
            loads_per_instr: 0.30,
            stores_per_instr: 0.22,
            cond_branch_per_instr: 0.17,
            ind_branch_per_instr: 0.008,
            cond_bias_strength: 0.945,
            cond_sites: 1200,
            ind_sites: 128,
            ind_targets_max: 4,
            larx_per_instr: 1.0 / 1_500.0,
            stcx_fail_prob: 0.01,
            sync_per_instr: 0.0008,
            call_per_instr: 0.014,
            store_fresh_fraction: 0.06,
            data: vec![
                stack_region(4 << 10),
                DataRegion {
                    window: Window::new(Region::MqData.base(), 32 << 20),
                    weight: 0.40,
                    pattern: AccessPattern::Hot { footprint: 8 << 10 },
                },
                DataRegion {
                    window: Window::new(Region::MqData.base(), 32 << 20),
                    weight: 0.17,
                    pattern: AccessPattern::Skewed {
                        hot_bytes: 1 << 20,
                        granule: 2048,
                        hot_fraction: 0.85,
                        burst: 12,
                    },
                },
                DataRegion {
                    window: Window::new(Region::MqData.base(), 32 << 20),
                    weight: 0.03,
                    pattern: AccessPattern::Uniform { burst: 12 },
                },
            ],
        },
        // Database engine: buffer-pool page crunching.
        Component::Database => StreamProfile {
            code: Window::new(Region::NativeCode.base() + (192 << 20), 5 << 20),
            code_jump_rate: 0.05,
            code_local: 0.85,
            code_active: 1 << 20,
            code_zipf: 0.75,
            loads_per_instr: 0.33,
            stores_per_instr: 0.21,
            cond_branch_per_instr: 0.15,
            ind_branch_per_instr: 0.006,
            cond_bias_strength: 0.945,
            cond_sites: 2000,
            ind_sites: 128,
            ind_targets_max: 4,
            larx_per_instr: 1.0 / 700.0,
            stcx_fail_prob: 0.02,
            sync_per_instr: 0.0012,
            call_per_instr: 0.016,
            store_fresh_fraction: 0.05,
            data: vec![
                stack_region(4 << 10),
                DataRegion {
                    window: Window::new(Region::DbBufferPool.base(), fp.buffer_pool_bytes),
                    weight: 0.40,
                    pattern: AccessPattern::Hot { footprint: 8 << 10 },
                },
                DataRegion {
                    window: Window::new(Region::DbBufferPool.base(), fp.buffer_pool_bytes),
                    weight: 0.155,
                    pattern: AccessPattern::Skewed {
                        hot_bytes: 1 << 20,
                        granule: 8192,
                        hot_fraction: 0.88,
                        burst: 14,
                    },
                },
                DataRegion {
                    window: Window::new(Region::DbBufferPool.base(), fp.buffer_pool_bytes),
                    weight: 0.03,
                    pattern: AccessPattern::Uniform { burst: 12 },
                },
            ],
        },
        // MQ library: queue buffers, memcpy-ish.
        Component::MessageQueue => StreamProfile {
            code: Window::new(Region::NativeCode.base() + (256 << 20), 1 << 20),
            code_jump_rate: 0.035,
            code_local: 0.88,
            code_active: 256 << 10,
            code_zipf: 0.9,
            loads_per_instr: 0.34,
            stores_per_instr: 0.26,
            cond_branch_per_instr: 0.13,
            ind_branch_per_instr: 0.004,
            cond_bias_strength: 0.955,
            cond_sites: 600,
            ind_sites: 64,
            ind_targets_max: 3,
            larx_per_instr: 1.0 / 1_000.0,
            stcx_fail_prob: 0.015,
            sync_per_instr: 0.0015,
            call_per_instr: 0.012,
            store_fresh_fraction: 0.08,
            data: vec![
                stack_region(4 << 10),
                DataRegion {
                    window: Window::new(Region::MqData.base() + (64 << 20), 16 << 20),
                    weight: 0.45,
                    pattern: AccessPattern::Sequential { stride: 64 },
                },
                DataRegion {
                    window: Window::new(Region::MqData.base() + (64 << 20), 16 << 20),
                    weight: 0.15,
                    pattern: AccessPattern::Skewed {
                        hot_bytes: 512 << 10,
                        granule: 1024,
                        hot_fraction: 0.85,
                        burst: 10,
                    },
                },
            ],
        },
        // Kernel: the SYNC-heavy profile of the paper's privileged-mode
        // observation (~7% of cycles with a SYNC in the SRQ).
        Component::Kernel => StreamProfile {
            code: Window::new(Region::Kernel.base(), 4 << 20),
            code_jump_rate: 0.05,
            code_local: 0.85,
            code_active: 768 << 10,
            code_zipf: 0.8,
            loads_per_instr: 0.30,
            stores_per_instr: 0.22,
            cond_branch_per_instr: 0.16,
            ind_branch_per_instr: 0.01,
            cond_bias_strength: 0.94,
            cond_sites: 2000,
            ind_sites: 256,
            ind_targets_max: 6,
            larx_per_instr: 1.0 / 400.0,
            stcx_fail_prob: 0.03,
            sync_per_instr: 0.0075,
            call_per_instr: 0.016,
            store_fresh_fraction: 0.05,
            data: vec![
                stack_region(4 << 10),
                DataRegion {
                    window: Window::new(Region::Kernel.base() + (512 << 20), 48 << 20),
                    weight: 0.40,
                    pattern: AccessPattern::Hot { footprint: 8 << 10 },
                },
                DataRegion {
                    window: Window::new(Region::Kernel.base() + (512 << 20), 48 << 20),
                    weight: 0.16,
                    pattern: AccessPattern::Skewed {
                        hot_bytes: 2 << 20,
                        granule: 256,
                        hot_fraction: 0.85,
                        burst: 10,
                    },
                },
                DataRegion {
                    window: Window::new(Region::Kernel.base() + (512 << 20), 48 << 20),
                    weight: 0.03,
                    pattern: AccessPattern::Uniform { burst: 12 },
                },
            ],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_component_has_a_valid_profile() {
        let fp = FootprintConfig::default();
        for c in Component::ALL {
            let p = profile_for(c, &fp);
            p.validate(); // panics on inconsistency
        }
    }

    #[test]
    fn java_profile_matches_paper_memory_mix() {
        let p = profile_for(Component::AppServer, &FootprintConfig::default());
        // 1 load per 3.2 instructions, 1 store per 4.5.
        assert!((1.0 / p.loads_per_instr - 3.2).abs() < 0.05);
        assert!((1.0 / p.stores_per_instr - 4.5).abs() < 0.05);
        // LARX every ~600 instructions.
        assert!((1.0 / p.larx_per_instr - 600.0).abs() < 1.0);
    }

    #[test]
    fn gc_profile_is_more_predictable_than_java() {
        let fp = FootprintConfig::default();
        let gc = profile_for(Component::Gc, &fp);
        let java = profile_for(Component::AppServer, &fp);
        assert!(gc.cond_bias_strength > java.cond_bias_strength);
        assert!(gc.ind_branch_per_instr < java.ind_branch_per_instr / 5.0);
        assert!(gc.sync_per_instr < java.sync_per_instr);
        assert!(gc.code.len < java.code.len / 10, "GC code is tiny");
    }

    #[test]
    fn kernel_profile_is_sync_heavy() {
        let fp = FootprintConfig::default();
        let k = profile_for(Component::Kernel, &fp);
        let j = profile_for(Component::AppServer, &fp);
        assert!(k.sync_per_instr > 5.0 * j.sync_per_instr);
        assert!(k.larx_per_instr > j.larx_per_instr);
    }

    #[test]
    fn code_windows_do_not_collide_across_native_components() {
        let fp = FootprintConfig::default();
        let mut windows: Vec<Window> = [
            Component::JvmRuntime,
            Component::Gc,
            Component::WebServer,
            Component::Database,
            Component::MessageQueue,
        ]
        .iter()
        .map(|&c| profile_for(c, &fp).code)
        .collect();
        windows.sort_by_key(|w| w.base);
        for pair in windows.windows(2) {
            assert!(
                pair[0].base + pair[0].len <= pair[1].base,
                "code windows overlap: {pair:?}"
            );
        }
    }

    #[test]
    fn heap_data_lives_in_heap_region() {
        let p = profile_for(Component::JavaLibrary, &FootprintConfig::default());
        assert!(p
            .data
            .iter()
            .any(|r| Region::of(r.window.base) == Region::JavaHeap));
    }

    #[test]
    fn java_data_is_tiered_hot_warm_cold() {
        let p = profile_for(Component::AppServer, &FootprintConfig::default());
        let hot: f64 = p
            .data
            .iter()
            .filter(|r| matches!(r.pattern, AccessPattern::Hot { .. }))
            .map(|r| r.weight)
            .sum();
        let cold: f64 = p
            .data
            .iter()
            .filter(|r| matches!(r.pattern, AccessPattern::Uniform { .. }))
            .map(|r| r.weight)
            .sum();
        assert!(
            hot > 0.7,
            "most references are thread-private hot, got {hot}"
        );
        assert!(cold < 0.06, "the cold tail is small, got {cold}");
    }
}

#[cfg(test)]
mod probes {
    use super::*;
    use jas_cpu::{HpmEvent, Machine, MachineConfig, StreamGen};
    use jas_simkernel::Rng;

    /// Diagnostic (run with `--ignored --nocapture`): one Java stream, one
    /// core, no task switching — isolates the stream/cache interaction.
    #[test]
    #[ignore = "diagnostic probe, prints stats"]
    fn solo_java_stream_statistics() {
        solo_stream(Component::AppServer);
    }

    /// Diagnostic: the GC stream alone.
    #[test]
    #[ignore = "diagnostic probe, prints stats"]
    fn solo_gc_stream_statistics() {
        solo_stream(Component::Gc);
    }

    fn solo_stream(component: Component) {
        let mut m = Machine::new(MachineConfig::default());
        let mut g = StreamGen::new(
            profile_for(component, &FootprintConfig::default()),
            Rng::new(42),
            1,
        );
        for _ in 0..2_000_000u64 {
            let (ia, op) = g.next_op();
            m.exec(0, ia, op);
        }
        let c = m.counters(0);
        let loads = c.get(HpmEvent::LoadRefs) as f64;
        let stores = c.get(HpmEvent::StoreRefs) as f64;
        println!("cpi                {:.2}", c.cpi().unwrap());
        println!(
            "load miss rate     {:.3}",
            c.get(HpmEvent::LoadMissL1) as f64 / loads
        );
        println!(
            "store miss rate    {:.3}",
            c.get(HpmEvent::StoreMissL1) as f64 / stores
        );
        println!("l1 prefetches      {}", c.get(HpmEvent::L1Prefetch));
        println!("stream allocs      {}", c.get(HpmEvent::StreamAllocs));
        let l1m = c.get(HpmEvent::LoadMissL1) as f64;
        for (n, e) in [
            ("L2  ", HpmEvent::DataFromL2),
            ("L3  ", HpmEvent::DataFromL3),
            ("mem ", HpmEvent::DataFromMem),
        ] {
            println!("from {}        {:.3}", n, c.get(e) as f64 / l1m);
        }
        println!(
            "derat/instr        {:.2e}",
            c.per_instruction(HpmEvent::DeratMiss).unwrap()
        );
        println!(
            "ifetch L2/instr    {:.2e}",
            c.per_instruction(HpmEvent::InstFromL2).unwrap()
        );
    }
}
