//! The `jas2004` command-line front end: run a configuration of the
//! simulated system and print the paper's figures.
//!
//! ```sh
//! cargo run --release --bin jas2004 -- --ir 40 --figure 9
//! jas2004 --scenario trade --figure 3
//! jas2004 --checkpoint-at 60 --checkpoint-out mid.jckpt
//! jas2004 --restore-from mid.jckpt --threads 4
//! jas2004 --fault-plan db-lock@120-180:0.5 --reduce --witness-out w.jwit
//! ```

use jas2004::cli::{parse_args, Cli, CliOptions, FigureSelect, USAGE};
use jas2004::{
    checkpoint_bytes, figures, reduce_divergence, report, restore_engine, run_artifacts_from,
    run_cluster, run_cluster_with, DispatchPolicy, Engine, FaultPlan, FaultWindow, RunPlan,
    SutConfig,
};
use jas_hpm::PhaseHpm;
use jas_scenario::{ScenarioOutcome, ScenarioSpec};
use jas_simkernel::{SimDuration, SimTime};
use jas_workload::ReplayLog;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(Cli::Run(o)) => *o,
        Ok(Cli::Help) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn read_file(path: &Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read '{}': {e}", path.display()))
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("cannot write '{}': {e}", path.display()))
}

fn run(options: CliOptions) -> Result<(), String> {
    let CliOptions {
        config,
        plan,
        select,
        trace_out,
        checkpoint_at,
        checkpoint_out,
        restore_from,
        record_out,
        replay_from,
        reduce,
        witness_out,
        nodes,
        dispatch,
        scenario_spec,
    } = options;
    if reduce {
        return run_reduce(config, plan, witness_out.as_deref());
    }
    if let Some(spec) = scenario_spec {
        return run_scenario(*spec, config, plan, select, nodes, dispatch, trace_out);
    }
    if nodes > 1 {
        return run_fleet(config, plan, nodes, dispatch, select);
    }
    eprintln!(
        "running IR{} ({:?}), {:.0}s steady after {:.0}s ramp-up...",
        config.ir,
        config.scenario,
        plan.steady.as_secs_f64(),
        plan.ramp_up.as_secs_f64()
    );

    let mut engine = match restore_from.as_deref() {
        Some(path) => {
            let engine = restore_engine(&config, plan, &read_file(path)?)?;
            eprintln!(
                "restored {} at t={:.3}s",
                path.display(),
                engine.now().as_secs_f64()
            );
            engine
        }
        None => Engine::new(config.clone(), plan),
    };
    if record_out.is_some() {
        engine.start_recording();
    }
    if let Some(path) = replay_from.as_deref() {
        let log = ReplayLog::from_bytes(&read_file(path)?)?;
        engine.arm_replay(log);
        eprintln!("replaying {}", path.display());
    }
    if let (Some(at), Some(out)) = (checkpoint_at, checkpoint_out.as_deref()) {
        engine.run_to(jas_simkernel::SimTime::ZERO + at);
        let bytes = checkpoint_bytes(&mut engine);
        write_file(out, &bytes)?;
        println!(
            "CKPT={} tick_ns={} bytes={}",
            out.display(),
            engine.now().as_nanos(),
            bytes.len()
        );
    }
    engine.run_to_end();
    if let Some(out) = record_out.as_deref() {
        let log = engine
            .take_recording()
            .expect("recording was started before the run");
        let bytes = log.to_bytes();
        write_file(out, &bytes)?;
        println!(
            "REPLAY_LOG={} arrivals={} bytes={}",
            out.display(),
            log.arrivals.len(),
            bytes.len()
        );
    }
    let art = run_artifacts_from(config, plan, engine);
    print_figures(&art, select);
    println!("HPM_DIGEST={:#018x}", art.hpm_digest);
    if art.config.trace.enabled() {
        println!(
            "TRACE_DIGEST={:#018x} events={}",
            art.trace_digest,
            art.trace.len()
        );
    }
    if !art.config.faults.plan.is_empty() {
        println!(
            "FAULT_DIGEST={:#018x} events={}",
            art.fault_digest, art.fault_events
        );
    }
    if let Some(path) = trace_out {
        let json = jas_trace::export::to_chrome_json(art.trace.events());
        write_file(&path, json.as_bytes())?;
        eprintln!("trace written to {}", path.display());
    }
    if let Some(text) = &art.hostprof_text {
        print!("{text}");
    }
    Ok(())
}

/// `--scenario <file>`: run the pinned scenario and print its digest,
/// the usual run digests, and the `SCENARIO_VERDICT` line. The run is
/// chunked at each workload-curve phase boundary (digest-equivalent to
/// a straight run) so per-phase HPM rows come for free.
fn run_scenario(
    spec: ScenarioSpec,
    config: SutConfig,
    plan: RunPlan,
    select: FigureSelect,
    nodes: usize,
    dispatch: DispatchPolicy,
    trace_out: Option<PathBuf>,
) -> Result<(), String> {
    eprintln!(
        "running scenario '{}' (curve {}, IR{}, {} node(s)), {:.0}s steady after {:.0}s ramp-up...",
        spec.name,
        spec.curve.kind_name(),
        config.ir,
        nodes,
        plan.steady.as_secs_f64(),
        plan.ramp_up.as_secs_f64()
    );
    println!("SCENARIO_DIGEST={:#018x}", spec.digest());
    let end_s = plan.end().as_secs_f64();
    let mut phases = PhaseHpm::new();
    let outcome = if nodes > 1 {
        let art = run_cluster_with(
            &config,
            plan,
            nodes,
            dispatch,
            spec.autoscale,
            Some(spec.max_in_flight),
            Some(&mut phases),
        );
        if matches!(select, FigureSelect::All | FigureSelect::Cluster) {
            print!("{}", report::render_cluster(&figures::cluster_table(&art)));
        }
        if matches!(select, FigureSelect::Scenario) {
            print!(
                "{}",
                report::render_scenario(&figures::scenario_table(
                    &spec.name,
                    &config.curve,
                    &phases
                ))
            );
        }
        println!("HPM_DIGEST={:#018x}", art.hpm_digest);
        if config.trace.enabled() {
            println!("TRACE_DIGEST={:#018x}", art.trace_digest);
        }
        if !config.faults.plan.is_empty() {
            println!("FAULT_DIGEST={:#018x}", art.fault_digest);
        }
        for (i, digest) in art.node_hpm_digests.iter().enumerate() {
            println!("NODE{i}_HPM_DIGEST={digest:#018x}");
        }
        println!(
            "ACTIVE_NODES={} scale_ups={} scale_downs={}",
            art.active_nodes, art.stats.scale_ups, art.stats.scale_downs
        );
        let v = &art.verdict;
        println!(
            "CLUSTER_VERDICT={} lost={} shed={} shed_fraction={:.4}",
            if v.lost == 0 && v.verdict.passed {
                "pass"
            } else {
                "fail"
            },
            v.lost,
            v.shed,
            v.shed_fraction
        );
        ScenarioOutcome {
            web_p90: v.verdict.web_p90,
            rmi_p90: v.verdict.rmi_p90,
            error_rate: v.verdict.error_rate,
            shed_fraction: v.shed_fraction,
            slo_miss: art.metrics.slo_miss_fraction(spec.slo.web_p90_s),
            lost: v.lost,
        }
    } else {
        let mut engine = Engine::new(config.clone(), plan);
        for boundary_s in config.curve.phase_boundaries(end_s) {
            engine.run_to(SimTime::ZERO + SimDuration::from_secs_f64(boundary_s));
            phases.observe(boundary_s, &engine.total_counters());
        }
        engine.run_to_end();
        phases.observe(end_s, &engine.total_counters());
        let slo_miss = engine.metrics().slo_miss_fraction(spec.slo.web_p90_s);
        let art = run_artifacts_from(config, plan, engine);
        print_figures(&art, select);
        if matches!(select, FigureSelect::Scenario) {
            print!(
                "{}",
                report::render_scenario(&figures::scenario_table(
                    &spec.name,
                    &art.config.curve,
                    &phases
                ))
            );
        }
        println!("HPM_DIGEST={:#018x}", art.hpm_digest);
        if art.config.trace.enabled() {
            println!(
                "TRACE_DIGEST={:#018x} events={}",
                art.trace_digest,
                art.trace.len()
            );
        }
        if !art.config.faults.plan.is_empty() {
            println!(
                "FAULT_DIGEST={:#018x} events={}",
                art.fault_digest, art.fault_events
            );
        }
        if let Some(path) = trace_out {
            let json = jas_trace::export::to_chrome_json(art.trace.events());
            write_file(&path, json.as_bytes())?;
            eprintln!("trace written to {}", path.display());
        }
        ScenarioOutcome {
            web_p90: art.verdict.web_p90,
            rmi_p90: art.verdict.rmi_p90,
            error_rate: art.verdict.error_rate,
            shed_fraction: 0.0,
            slo_miss,
            lost: 0,
        }
    };
    println!("{}", spec.verdict_line(&outcome));
    Ok(())
}

/// `--nodes N > 1`: run the load-balanced fleet and print the fleet
/// digests plus the failover verdict (DESIGN.md §13).
fn run_fleet(
    config: SutConfig,
    plan: RunPlan,
    nodes: usize,
    dispatch: DispatchPolicy,
    select: FigureSelect,
) -> Result<(), String> {
    eprintln!(
        "running IR{} ({:?}) on {} nodes ({}), {:.0}s steady after {:.0}s ramp-up...",
        config.ir,
        config.scenario,
        nodes,
        dispatch.name(),
        plan.steady.as_secs_f64(),
        plan.ramp_up.as_secs_f64()
    );
    let art = run_cluster(&config, plan, nodes, dispatch);
    if matches!(select, FigureSelect::All | FigureSelect::Cluster) {
        print!("{}", report::render_cluster(&figures::cluster_table(&art)));
    }
    println!("HPM_DIGEST={:#018x}", art.hpm_digest);
    if config.trace.enabled() {
        println!("TRACE_DIGEST={:#018x}", art.trace_digest);
    }
    if !config.faults.plan.is_empty() {
        println!("FAULT_DIGEST={:#018x}", art.fault_digest);
    }
    for (i, digest) in art.node_hpm_digests.iter().enumerate() {
        println!("NODE{i}_HPM_DIGEST={digest:#018x}");
    }
    let v = &art.verdict;
    println!(
        "CLUSTER_VERDICT={} lost={} shed={} shed_fraction={:.4}",
        if v.lost == 0 && v.verdict.passed {
            "pass"
        } else {
            "fail"
        },
        v.lost,
        v.shed,
        v.shed_fraction
    );
    Ok(())
}

/// `--reduce`: bisect the first divergence between the configured fault
/// plan and the same windows at rate zero (both sides keep identical
/// window bounds so the fault monitor and injector draw RNG identically —
/// the first state difference is the first actual injection).
fn run_reduce(config: SutConfig, plan: RunPlan, witness_out: Option<&Path>) -> Result<(), String> {
    let faulty = config.clone();
    let mut healthy = config;
    healthy.faults.plan = FaultPlan::from_windows(
        faulty
            .faults
            .plan
            .windows()
            .iter()
            .map(|w| FaultWindow { rate_fp: 0, ..*w })
            .collect(),
    );
    eprintln!(
        "reducing: {} fault window(s) vs the same windows at rate 0...",
        faulty.faults.plan.windows().len()
    );
    let witness = reduce_divergence(&healthy, &faulty, plan, 16)?;
    println!(
        "REDUCE_WINDOW={:.3}s-{:.3}s fraction={:.4} digest_a={:#018x} digest_b={:#018x}",
        witness.window_start.as_secs_f64(),
        witness.window_end.as_secs_f64(),
        witness.window_fraction(),
        witness.digest_a,
        witness.digest_b
    );
    if let Some(path) = witness_out {
        let bytes = witness.to_bytes();
        write_file(path, &bytes)?;
        eprintln!(
            "witness written to {} ({} bytes)",
            path.display(),
            bytes.len()
        );
    }
    Ok(())
}

fn print_figures(art: &jas2004::RunArtifacts, select: FigureSelect) {
    let want = |n: u8| match select {
        FigureSelect::All => true,
        FigureSelect::Figure(x) => x == n,
        _ => false,
    };
    if want(2) {
        print!("{}", report::render_fig2(&figures::fig2_throughput(art)));
    }
    if want(3) {
        print!("{}", report::render_fig3(&figures::fig3_gc(art)));
    }
    if want(4) {
        print!("{}", report::render_fig4(&figures::fig4_profile(art)));
    }
    if want(5) {
        print!("{}", report::render_fig5(&figures::fig5_cpi(art)));
    }
    if want(6) {
        print!("{}", report::render_fig6(&figures::fig6_branch(art)));
    }
    if want(7) {
        print!("{}", report::render_fig7(&figures::fig7_tlb(art)));
    }
    if want(8) {
        print!("{}", report::render_fig8(&figures::fig8_l1d(art)));
    }
    if want(9) {
        print!("{}", report::render_fig9(&figures::fig9_data_from(art)));
    }
    if want(10) {
        print!("{}", report::render_fig10(&figures::fig10_correlation(art)));
    }
    if matches!(select, FigureSelect::All | FigureSelect::Locking) {
        print!("{}", report::render_locking(&figures::locking_table(art)));
    }
    if matches!(select, FigureSelect::All | FigureSelect::Utilization) {
        print!(
            "{}",
            report::render_utilization(&figures::utilization_table(art))
        );
    }
    if matches!(select, FigureSelect::Tprof) {
        print!("{}", report::render_tprof(&figures::tprof_table(art)));
    }
    if matches!(select, FigureSelect::Vmstat) {
        print!("{}", report::render_vmstat(&figures::vmstat_table(art)));
    }
    if matches!(select, FigureSelect::Sched) {
        print!("{}", report::render_sched(&figures::sched_table(art)));
    }
    // The resilience table prints on request, or in `all` mode whenever a
    // fault plan actually ran.
    if matches!(select, FigureSelect::Resilience)
        || (matches!(select, FigureSelect::All) && !art.config.faults.plan.is_empty())
    {
        print!(
            "{}",
            report::render_resilience(&figures::resilience_table(art))
        );
    }
}
